#!/usr/bin/env bash
# Comparative benchmark run for the PageRank engine and the mass
# estimation pipeline. Runs the `pagerank` and `mass_pipeline` criterion
# benches in quick mode (CRITERION_SAMPLES, default 5) and assembles the
# machine-readable BENCH_JSON lines into BENCH_pagerank.json at the
# repository root:
#
#   { "schema": "spammass.bench/v1", "host_threads": N,
#     "samples_per_bench": S,
#     "benches": [ {"name": ..., "threads": T, "median_ns": ..., "samples": ...}, ... ] }
#
# Bench names encode kernel, thread count, and graph size
# (e.g. pagerank_engine/fused_4t/120000). `host_threads` is the real
# parallelism of the machine that ran the benches (nproc); the per-bench
# `threads` field is what the bench *requested*, parsed from the `_Nt`
# suffix in its name (1 when unsuffixed). The two disagreeing is
# meaningful, not a bug: a `_4t` bench on a 1-core host collapses to one
# worker (see `pool_threads_4t` in BENCH_layout.json), and
# `spammass bench-diff` readers need both numbers to interpret a delta.
# Usage:
#
#   scripts/bench.sh           # quick mode, 5 samples per benchmark
#   scripts/bench.sh --full    # criterion defaults (10 samples)
set -euo pipefail
cd "$(dirname "$0")/.."

SAMPLES="${CRITERION_SAMPLES:-5}"
if [ "${1:-}" = "--full" ]; then
  SAMPLES=""
fi

LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT

# Injects the per-bench thread count into each BENCH_JSON object: `_Nt`
# in the bench name means the bench requested N workers; everything else
# ran single-threaded.
annotate_threads() {
  sed -E \
    -e 's|^\{"name":"([^"]*_([0-9]+)t(/[^"]*)?)",(.*)\}$|{"name":"\1","threads":\2,\4}|' \
    -e '/"threads":/! s|^\{"name":"([^"]*)",(.*)\}$|{"name":"\1","threads":1,\2}|'
}

run_bench() {
  echo "== cargo bench -p spammass-bench --bench $1 =="
  CRITERION_JSON=1 CRITERION_SAMPLES="$SAMPLES" \
    cargo bench -p spammass-bench --bench "$1" 2>&1 | tee -a "$LOG"
}

run_bench pagerank
run_bench mass_pipeline

OUT="BENCH_pagerank.json"
{
  printf '{\n'
  printf '  "schema": "spammass.bench/v1",\n'
  printf '  "host_threads": %s,\n' "$(nproc)"
  printf '  "samples_per_bench": %s,\n' "${SAMPLES:-10}"
  printf '  "benches": [\n'
  grep '^BENCH_JSON ' "$LOG" | sed 's/^BENCH_JSON //' | annotate_threads | sed '$!s/$/,/' | sed 's/^/    /'
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

COUNT="$(grep -c '^BENCH_JSON ' "$LOG")"
[ "$COUNT" -gt 0 ] || { echo "no BENCH_JSON lines captured"; exit 1; }
# The scaling acceptance group must land in full: scalar baselines at 1
# and 4 threads plus the unrolled kernel and the edge-parallel path.
for key in fused_1t fused_4t simd_1t edge_parallel_4t; do
  grep -q "pagerank_scaling/$key" "$OUT" \
    || { echo "$OUT missing scaling bench $key"; exit 1; }
done
echo "wrote $OUT ($COUNT benchmarks)"

# Incremental re-estimation: warm update vs cold full estimate on an
# evolved ~60k-host scenario (~1% edge delta). The bench prints one
# BENCH_INCR agreement/iteration line plus the usual BENCH_JSON timings;
# both land in BENCH_incremental.json.
INCR_LOG="$(mktemp)"
trap 'rm -f "$LOG" "$INCR_LOG"' EXIT
echo "== cargo bench -p spammass-bench --bench incremental =="
CRITERION_JSON=1 CRITERION_SAMPLES="$SAMPLES" \
  cargo bench -p spammass-bench --bench incremental 2>&1 | tee "$INCR_LOG"

INCR_OUT="BENCH_incremental.json"
{
  printf '{\n'
  printf '  "schema": "spammass.bench.incremental/v1",\n'
  printf '  "host_threads": %s,\n' "$(nproc)"
  printf '  "samples_per_bench": %s,\n' "${SAMPLES:-10}"
  printf '  "agreement": '
  grep '^BENCH_INCR ' "$INCR_LOG" | head -1 | sed 's/^BENCH_INCR //' | sed 's/$/,/'
  printf '  "benches": [\n'
  grep '^BENCH_JSON ' "$INCR_LOG" | sed 's/^BENCH_JSON //' | annotate_threads | sed '$!s/$/,/' | sed 's/^/    /'
  printf '  ]\n'
  printf '}\n'
} > "$INCR_OUT"

grep -q '^BENCH_INCR ' "$INCR_LOG" || { echo "no BENCH_INCR line captured"; exit 1; }
echo "wrote $INCR_OUT"

# Cache-aware layout: fused kernel on natural vs degree vs BFS node order
# at 120k hosts, plus zero-copy mmap load vs owned decode. The bench
# prints one BENCH_LAYOUT verification line (score agreement asserted
# inside) plus BENCH_JSON timings; both land in BENCH_layout.json.
LAYOUT_LOG="$(mktemp)"
trap 'rm -f "$LOG" "$INCR_LOG" "$LAYOUT_LOG"' EXIT
echo "== cargo bench -p spammass-bench --bench layout =="
CRITERION_JSON=1 CRITERION_SAMPLES="$SAMPLES" \
  cargo bench -p spammass-bench --bench layout 2>&1 | tee "$LAYOUT_LOG"

LAYOUT_OUT="BENCH_layout.json"
{
  printf '{\n'
  printf '  "schema": "spammass.bench.layout/v1",\n'
  printf '  "host_threads": %s,\n' "$(nproc)"
  printf '  "samples_per_bench": %s,\n' "${SAMPLES:-10}"
  printf '  "layout": '
  grep '^BENCH_LAYOUT ' "$LAYOUT_LOG" | head -1 | sed 's/^BENCH_LAYOUT //' | sed 's/$/,/'
  printf '  "benches": [\n'
  grep '^BENCH_JSON ' "$LAYOUT_LOG" | sed 's/^BENCH_JSON //' | annotate_threads | sed '$!s/$/,/' | sed 's/^/    /'
  printf '  ]\n'
  printf '}\n'
} > "$LAYOUT_OUT"

grep -q '^BENCH_LAYOUT ' "$LAYOUT_LOG" || { echo "no BENCH_LAYOUT line captured"; exit 1; }
echo "wrote $LAYOUT_OUT"

# Query daemon: client-side QPS and p50/p99 request latency at 1 and N
# client threads against a live in-process `spammass-serve` server, plus
# per-endpoint latency on a persistent keep-alive connection. The bench
# asserts response correctness (schema tags, generation, score/batch
# agreement) before timing anything; the BENCH_SERVE line and the
# BENCH_JSON timings both land in BENCH_serve.json.
SERVE_LOG="$(mktemp)"
trap 'rm -f "$LOG" "$INCR_LOG" "$LAYOUT_LOG" "$SERVE_LOG"' EXIT
echo "== cargo bench -p spammass-bench --bench serve =="
CRITERION_JSON=1 CRITERION_SAMPLES="$SAMPLES" \
  cargo bench -p spammass-bench --bench serve 2>&1 | tee "$SERVE_LOG"

SERVE_OUT="BENCH_serve.json"
{
  printf '{\n'
  printf '  "schema": "spammass.bench.serve/v1",\n'
  printf '  "host_threads": %s,\n' "$(nproc)"
  printf '  "samples_per_bench": %s,\n' "${SAMPLES:-10}"
  printf '  "serve": '
  grep '^BENCH_SERVE ' "$SERVE_LOG" | head -1 | sed 's/^BENCH_SERVE //' | sed 's/$/,/'
  printf '  "benches": [\n'
  grep '^BENCH_JSON ' "$SERVE_LOG" | sed 's/^BENCH_JSON //' | annotate_threads | sed '$!s/$/,/' | sed 's/^/    /'
  printf '  ]\n'
  printf '}\n'
} > "$SERVE_OUT"

grep -q '^BENCH_SERVE ' "$SERVE_LOG" || { echo "no BENCH_SERVE line captured"; exit 1; }
# The daemon throughput record must carry QPS and both latency
# percentiles at one client thread and at N client threads.
for key in '"qps_1t"' '"p50_ns_1t"' '"p99_ns_1t"' \
    '"qps_nt"' '"p50_ns_nt"' '"p99_ns_nt"'; do
  grep -q "$key" "$SERVE_OUT" \
    || { echo "$SERVE_OUT missing serve key $key"; exit 1; }
done
echo "wrote $SERVE_OUT"

# Million-host scale: v4 compressed edge storage vs v3, and the
# out-of-core (streamed) batched solve vs the fully resident solve on a
# degree-ordered 120k-host web. The bench asserts score parity and the
# ≤8 bits/edge encoding gate before timing anything; the BENCH_SCALE
# line and the BENCH_JSON timings both land in BENCH_scale.json.
SCALE_LOG="$(mktemp)"
trap 'rm -f "$LOG" "$INCR_LOG" "$LAYOUT_LOG" "$SERVE_LOG" "$SCALE_LOG"' EXIT
echo "== cargo bench -p spammass-bench --bench scale =="
CRITERION_JSON=1 CRITERION_SAMPLES="$SAMPLES" \
  cargo bench -p spammass-bench --bench scale 2>&1 | tee "$SCALE_LOG"

SCALE_OUT="BENCH_scale.json"
{
  printf '{\n'
  printf '  "schema": "spammass.bench.scale/v1",\n'
  printf '  "host_threads": %s,\n' "$(nproc)"
  printf '  "samples_per_bench": %s,\n' "${SAMPLES:-10}"
  printf '  "scale": '
  grep '^BENCH_SCALE ' "$SCALE_LOG" | head -1 | sed 's/^BENCH_SCALE //' | sed 's/$/,/'
  printf '  "benches": [\n'
  grep '^BENCH_JSON ' "$SCALE_LOG" | sed 's/^BENCH_JSON //' | annotate_threads | sed '$!s/$/,/' | sed 's/^/    /'
  printf '  ]\n'
  printf '}\n'
} > "$SCALE_OUT"

grep -q '^BENCH_SCALE ' "$SCALE_LOG" || { echo "no BENCH_SCALE line captured"; exit 1; }
# The scale record must carry the compression and out-of-core numbers
# the docs quote: encoded size, bits/edge, budget vs CSR, both solve
# timings, and the peak RSS of the run.
for key in '"bits_per_edge"' '"compression_ratio"' '"v3_bytes"' '"v4_bytes"' \
    '"budget_bytes"' '"csr_bytes"' '"resident_solve_ms"' '"streamed_solve_ms"' \
    '"peak_rss_mb"'; do
  grep -q "$key" "$SCALE_OUT" \
    || { echo "$SCALE_OUT missing scale key $key"; exit 1; }
done
echo "wrote $SCALE_OUT"
