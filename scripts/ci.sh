#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== bench smoke: cargo bench -- --test =="
# One iteration per benchmark; catches bench-target bitrot without the
# cost of a timed run (scripts/bench.sh does the real measurements).
cargo bench -p spammass-bench --bench pagerank --bench mass_pipeline -- --test

echo "== telemetry: obs crate tests =="
cargo test -q -p spammass-obs

echo "== telemetry: run-report smoke test =="
# The root facade package has no binary; build the CLI bin explicitly.
cargo build --release -q -p spammass-cli
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/spammass generate --hosts 2000 --seed 7 \
  --out "$SMOKE_DIR/web.graph" --core "$SMOKE_DIR/core.txt" > /dev/null
./target/release/spammass estimate --graph "$SMOKE_DIR/web.graph" \
  --core "$SMOKE_DIR/core.txt" --trace json \
  --metrics-out "$SMOKE_DIR/metrics.json" > "$SMOKE_DIR/estimate.out"
grep -q '"event":"span_end"' "$SMOKE_DIR/estimate.out" \
  || { echo "no span events in --trace json output"; exit 1; }
for key in '"schema":"spammass.run_report/v1"' '"command":"estimate"' \
    '"params"' '"stages"' '"metrics"' '"events"' '"results"' \
    '"graph.ingest.edges"' '"pagerank.residual"' '"estimate.relative_mass"'; do
  grep -q "$key" "$SMOKE_DIR/metrics.json" \
    || { echo "run report missing $key"; exit 1; }
done

echo "CI green."
