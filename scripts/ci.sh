#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== bench smoke: cargo bench -- --test =="
# One iteration per benchmark; catches bench-target bitrot without the
# cost of a timed run (scripts/bench.sh does the real measurements).
cargo bench -p spammass-bench --bench pagerank --bench mass_pipeline -- --test

echo "== bench smoke: incremental warm-vs-cold agreement =="
# The incremental bench asserts warm/cold detection identity and the
# iteration saving before timing anything; a small scenario keeps the
# gate fast while still exercising the full journal -> update path.
INCR_HOSTS=10000 cargo bench -p spammass-bench --bench incremental -- --test

echo "== bench smoke: layout reorder/zero-copy verification =="
# The layout bench asserts permuted-solve score agreement and zero-copy
# mmap loading before timing anything; timing thresholds only apply to
# real `scripts/bench.sh` runs. The BENCH_LAYOUT line must carry every
# key the bench report schema promises.
LAYOUT_SMOKE="$(mktemp)"
LAYOUT_HOSTS=20000 cargo bench -p spammass-bench --bench layout -- --test \
  | tee "$LAYOUT_SMOKE"
for key in '"natural_ms"' '"degree_ms"' '"bfs_ms"' '"best_speedup_pct"' \
    '"fused_1t_ms"' '"fused_4t_ms"' '"pool_threads_4t"' \
    '"mmap_load_ms"' '"owned_load_ms"' '"zero_copy": true'; do
  grep '^BENCH_LAYOUT ' "$LAYOUT_SMOKE" | grep -q "$key" \
    || { echo "BENCH_LAYOUT line missing $key"; rm -f "$LAYOUT_SMOKE"; exit 1; }
done
rm -f "$LAYOUT_SMOKE"

echo "== bench smoke: serve daemon QPS/latency line =="
# The serve bench verifies schema tags, generation, and score/batch
# agreement against a live server before timing; the BENCH_SERVE line
# must carry QPS and p50/p99 at one and N client threads.
SERVE_SMOKE="$(mktemp)"
SERVE_HOSTS=2000 SERVE_REQS=300 \
  cargo bench -p spammass-bench --bench serve -- --test | tee "$SERVE_SMOKE"
for key in '"qps_1t"' '"p50_ns_1t"' '"p99_ns_1t"' \
    '"qps_nt"' '"p50_ns_nt"' '"p99_ns_nt"'; do
  grep '^BENCH_SERVE ' "$SERVE_SMOKE" | grep -q "$key" \
    || { echo "BENCH_SERVE line missing $key"; rm -f "$SERVE_SMOKE"; exit 1; }
done
rm -f "$SERVE_SMOKE"

echo "== bench smoke: scale compression / out-of-core verification =="
# The scale bench asserts streamed-vs-resident score parity before
# timing anything (the ≤8 bits/edge encoding gate applies to timed
# runs); smoke mode checks the BENCH_SCALE record carries every key
# BENCH_scale.json promises.
SCALE_SMOKE="$(mktemp)"
SCALE_HOSTS=20000 cargo bench -p spammass-bench --bench scale -- --test \
  | tee "$SCALE_SMOKE"
for key in '"bits_per_edge"' '"compression_ratio"' '"v3_bytes"' '"v4_bytes"' \
    '"budget_bytes"' '"csr_bytes"' '"resident_solve_ms"' \
    '"streamed_solve_ms"' '"peak_rss_mb"'; do
  grep '^BENCH_SCALE ' "$SCALE_SMOKE" | grep -q "$key" \
    || { echo "BENCH_SCALE line missing $key"; rm -f "$SCALE_SMOKE"; exit 1; }
done
rm -f "$SCALE_SMOKE"

echo "== unsafe hygiene: every unsafe block in mmap/storage carries a SAFETY comment =="
# The zero-copy loader is the only part of the workspace allowed to use
# `unsafe`; each block must justify itself inline.
for f in crates/graph/src/mmap.rs crates/graph/src/storage.rs; do
  [ -f "$f" ] || continue
  unsafe_count="$(grep -c 'unsafe ' "$f" || true)"
  safety_count="$(grep -c '// SAFETY:' "$f" || true)"
  [ "$safety_count" -ge 1 ] || { echo "$f: no SAFETY comments"; exit 1; }
  [ "$unsafe_count" -le "$((safety_count * 2))" ] \
    || { echo "$f: $unsafe_count unsafe sites but only $safety_count SAFETY comments"; exit 1; }
done

echo "== telemetry: obs crate tests =="
cargo test -q -p spammass-obs

echo "== telemetry: run-report smoke test =="
# The root facade package has no binary; build the CLI bin explicitly.
cargo build --release -q -p spammass-cli
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/spammass generate --hosts 2000 --seed 7 \
  --out "$SMOKE_DIR/web.graph" --core "$SMOKE_DIR/core.txt" > /dev/null
./target/release/spammass estimate --graph "$SMOKE_DIR/web.graph" \
  --core "$SMOKE_DIR/core.txt" --trace json \
  --metrics-out "$SMOKE_DIR/metrics.json" > "$SMOKE_DIR/estimate.out"
grep -q '"event":"span_end"' "$SMOKE_DIR/estimate.out" \
  || { echo "no span events in --trace json output"; exit 1; }
for key in '"schema":"spammass.run_report/v1"' '"command":"estimate"' \
    '"params"' '"stages"' '"metrics"' '"events"' '"results"' \
    '"graph.ingest.edges"' '"pagerank.residual"' '"estimate.relative_mass"'; do
  grep -q "$key" "$SMOKE_DIR/metrics.json" \
    || { echo "run report missing $key"; exit 1; }
done

echo "== incremental pipeline smoke: generate --evolve / estimate --state / update =="
./target/release/spammass generate --hosts 5000 --seed 11 \
  --out "$SMOKE_DIR/evo.graph" --core "$SMOKE_DIR/evo-core.txt" \
  --evolve 2 --journal "$SMOKE_DIR/evo.journal" > "$SMOKE_DIR/generate.out"
grep -q 'evolution journal written' "$SMOKE_DIR/generate.out" \
  || { echo "generate --evolve wrote no journal"; exit 1; }
./target/release/spammass estimate --graph "$SMOKE_DIR/evo.graph" \
  --core "$SMOKE_DIR/evo-core.txt" --state "$SMOKE_DIR/state" > /dev/null
./target/release/spammass update --journal "$SMOKE_DIR/evo.journal" \
  --state "$SMOKE_DIR/state" > "$SMOKE_DIR/update.out"
for key in 'delta applied' 'warm solve' 'newly flagged' 'newly cleared' \
    'top mass shifts' 'state saved'; do
  grep -q "$key" "$SMOKE_DIR/update.out" \
    || { echo "update report missing '$key'"; cat "$SMOKE_DIR/update.out"; exit 1; }
done

echo "== out-of-core pipeline smoke: stream 1M hosts -> v4 -> budgeted estimate =="
# Million-host scale end to end through the real binary: stream a
# 1M-host scenario to edge shards (never materializing the graph in
# RAM), convert to a compressed v4 image via the external-memory
# transpose, and estimate under a 64 MiB resident budget — smaller than
# the ~92 MiB raw CSR the in-memory solve carries. The streamed solve
# replicates the single-worker summation order, so the per-node TSV
# (scores, mass, flags) must be byte-identical to the fully in-memory
# run on the same image.
./target/release/spammass generate --stream "$SMOKE_DIR/stream" \
  --hosts 1000000 --seed 17 > "$SMOKE_DIR/stream.out"
grep -q 'streamed 1000000 hosts' "$SMOKE_DIR/stream.out" \
  || { echo "generate --stream failed"; cat "$SMOKE_DIR/stream.out"; exit 1; }
./target/release/spammass convert --in "$SMOKE_DIR/stream" --format v4 \
  --out "$SMOKE_DIR/stream.v4" > "$SMOKE_DIR/convert.out"
grep -q 'bits/edge' "$SMOKE_DIR/convert.out" \
  || { echo "convert reported no bits/edge"; cat "$SMOKE_DIR/convert.out"; exit 1; }
./target/release/spammass estimate --graph "$SMOKE_DIR/stream.v4" \
  --core "$SMOKE_DIR/stream/core.txt" --threads 1 --max-resident-mb 64 \
  --out "$SMOKE_DIR/stream-ooc.tsv" > "$SMOKE_DIR/ooc.out" 2>&1
grep -q 'streamed solve:' "$SMOKE_DIR/ooc.out" \
  || { echo "estimate --max-resident-mb did not stream"; cat "$SMOKE_DIR/ooc.out"; exit 1; }
./target/release/spammass estimate --graph "$SMOKE_DIR/stream.v4" \
  --core "$SMOKE_DIR/stream/core.txt" --threads 1 \
  --out "$SMOKE_DIR/stream-mem.tsv" > /dev/null
diff -q "$SMOKE_DIR/stream-ooc.tsv" "$SMOKE_DIR/stream-mem.tsv" \
  || { echo "out-of-core flagged set/scores diverge from the in-memory run"; exit 1; }
rm -rf "$SMOKE_DIR/stream" "$SMOKE_DIR/stream.v4" \
  "$SMOKE_DIR/stream-ooc.tsv" "$SMOKE_DIR/stream-mem.tsv"

echo "== serve smoke: daemon answers queries and folds a journal reload =="
# End to end through the real binary: estimate publishes generation 1,
# the daemon serves it on an ephemeral port (advertised on stderr), and
# copying the evolution journal into place + GET /reload runs a warm
# in-process update that publishes and swaps in generation 2 — queried
# scores must carry the new generation afterwards. --poll-ms is huge so
# the explicit /reload is the only swap trigger (deterministic).
./target/release/spammass generate --hosts 3000 --seed 13 \
  --out "$SMOKE_DIR/srv.graph" --core "$SMOKE_DIR/srv-core.txt" \
  --evolve 2 --journal "$SMOKE_DIR/srv.journal" > /dev/null
./target/release/spammass estimate --graph "$SMOKE_DIR/srv.graph" \
  --core "$SMOKE_DIR/srv-core.txt" --state "$SMOKE_DIR/srv-state" > /dev/null
./target/release/spammass serve --state "$SMOKE_DIR/srv-state" \
  --journal "$SMOKE_DIR/srv-live.journal" --poll-ms 600000 \
  --max-seconds 120 > "$SMOKE_DIR/serve.out" 2> "$SMOKE_DIR/serve.err" &
SERVE_PID=$!
SPORT=""
for _ in $(seq 1 100); do
  SPORT="$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\)/.*|\1|p' "$SMOKE_DIR/serve.err")"
  [ -n "$SPORT" ] && break
  sleep 0.1
done
[ -n "$SPORT" ] || { echo "serve advertised no port"; cat "$SMOKE_DIR/serve.err"; exit 1; }
squery() {
  exec 4<>"/dev/tcp/127.0.0.1/$SPORT"
  printf 'GET %s HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' "$1" >&4
  cat <&4
  exec 4<&-
}
squery '/score?node=0' > "$SMOKE_DIR/score-gen1.out"
grep -q 'spammass.score_response/v1' "$SMOKE_DIR/score-gen1.out" \
  || { echo "/score missing its schema tag"; cat "$SMOKE_DIR/score-gen1.out"; exit 1; }
squery '/topk?k=5&by=relative' | grep -q 'spammass.topk_response/v1' \
  || { echo "/topk missing its schema tag"; exit 1; }
squery '/explain?node=0' | grep -q 'spammass.explain_response/v1' \
  || { echo "/explain missing its schema tag"; exit 1; }
squery '/stats' | grep -q '"generation":1' \
  || { echo "/stats not serving generation 1"; exit 1; }
# Publish fresh journal records and trigger the warm reload.
cp "$SMOKE_DIR/srv.journal" "$SMOKE_DIR/srv-live.journal"
squery '/reload' > "$SMOKE_DIR/reload.out"
grep -q '"reloaded":true' "$SMOKE_DIR/reload.out" \
  || { echo "/reload did not fold the journal"; cat "$SMOKE_DIR/reload.out"; exit 1; }
squery '/score?node=0' > "$SMOKE_DIR/score-gen2.out"
grep -q '"generation":2' "$SMOKE_DIR/score-gen2.out" \
  || { echo "post-reload /score still on generation 1"; \
       cat "$SMOKE_DIR/score-gen2.out"; exit 1; }
# The swap is visible: same query, different generation tag.
if diff -q "$SMOKE_DIR/score-gen1.out" "$SMOKE_DIR/score-gen2.out" > /dev/null; then
  echo "reload changed nothing in /score output"; exit 1
fi
[ -d "$SMOKE_DIR/srv-state/gen-0002" ] \
  || { echo "warm reload published no gen-0002 snapshot"; exit 1; }
kill "$SERVE_PID" 2> /dev/null || true
wait "$SERVE_PID" 2> /dev/null || true

echo "== live metrics smoke: estimate --serve-metrics scraped while up =="
# Start a solve with the exposition server on an ephemeral port (the
# bound address lands on stderr), scrape /metrics + /snapshot + /flight
# over bash's /dev/tcp, and require the per-worker profiler series. The
# graph must clear the pool's 16384-nodes-per-worker floor or the
# auto-sizer collapses to one worker and the worker-1 series can never
# appear (--edges-per-thread only lifts the *edge* quota); 40k hosts
# admits the two workers we ask for. The linger keeps the server up
# after a fast solve so the scrape loop cannot lose the race; mid-solve
# scraping itself is pinned by crates/cli/tests/live_metrics.rs at
# 120k-host scale.
./target/release/spammass generate --hosts 40000 --seed 7 \
  --out "$SMOKE_DIR/live.graph" --core "$SMOKE_DIR/live-core.txt" > /dev/null
./target/release/spammass estimate --graph "$SMOKE_DIR/live.graph" \
  --core "$SMOKE_DIR/live-core.txt" --threads 2 --edges-per-thread 1 \
  --serve-metrics 127.0.0.1:0 --serve-linger 8000 \
  > "$SMOKE_DIR/live.out" 2> "$SMOKE_DIR/live.err" &
LIVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\)/metrics.*|\1|p' "$SMOKE_DIR/live.err")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "estimate --serve-metrics advertised no port"; exit 1; }
scrape() {
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'GET %s HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' "$1" >&3
  cat <&3
  exec 3<&-
}
METRICS=""
for _ in $(seq 1 100); do
  METRICS="$(scrape /metrics || true)"
  case "$METRICS" in *spammass_pagerank_worker_1_gather_ns*) break ;; esac
  sleep 0.05
done
for key in spammass_pagerank_worker_0_gather_ns \
    spammass_pagerank_worker_1_gather_ns \
    spammass_pagerank_worker_0_barrier_wait_ns \
    spammass_pagerank_merge_ns \
    spammass_pagerank_pool_sweeps spammass_pagerank_partition_imbalance \
    spammass_obs_export_scrapes; do
  printf '%s' "$METRICS" | grep -q "$key" \
    || { echo "/metrics missing $key"; printf '%s\n' "$METRICS"; exit 1; }
done
scrape /snapshot | grep -q 'spammass.metrics_snapshot/v1' \
  || { echo "/snapshot missing its schema tag"; exit 1; }
scrape /flight | grep -q 'spammass.flight/v1' \
  || { echo "/flight missing its schema tag"; exit 1; }
wait "$LIVE_PID" \
  || { echo "estimate --serve-metrics failed"; cat "$SMOKE_DIR/live.err"; exit 1; }

echo "== bench-diff (report-only) against the checked-in baselines =="
# A self-diff exercises parsing of every checked-in BENCH file and the
# zero-regression path; report-only keeps the gate decoupled from the
# noise floor of whatever machine reran the benches last.
for f in BENCH_pagerank.json BENCH_incremental.json BENCH_layout.json \
    BENCH_serve.json; do
  [ -f "$f" ] || { echo "missing checked-in $f"; exit 1; }
done
# The checked-in pagerank baseline must carry the scaling acceptance
# workload so bench-diff can gate future kernel regressions against it.
for key in 'pagerank_scaling/fused_1t' 'pagerank_scaling/simd_1t' \
    'pagerank_scaling/edge_parallel_4t'; do
  grep -q "$key" BENCH_pagerank.json \
    || { echo "BENCH_pagerank.json missing $key"; exit 1; }
done
for f in BENCH_pagerank.json BENCH_incremental.json BENCH_layout.json \
    BENCH_serve.json; do
  ./target/release/spammass bench-diff --old "$f" --new "$f" \
    --report-only true > "$SMOKE_DIR/bench-diff.out" \
    || { echo "bench-diff failed on $f"; cat "$SMOKE_DIR/bench-diff.out"; exit 1; }
  grep -q 'no regressions' "$SMOKE_DIR/bench-diff.out" \
    || { echo "bench-diff self-diff on $f reported regressions"; \
         cat "$SMOKE_DIR/bench-diff.out"; exit 1; }
done

echo "== durability: crash-torture suite =="
# Records every failpoint in the save/append pipelines and replays each
# one as a simulated crash, asserting recovery + fsck repair.
cargo test -q -p spammass-delta --test crash

echo "== durability smoke: torn state + torn journal -> fsck --repair -> update agrees =="
# Crash-consistency end to end through the real binary: the update above
# published a new generation; tear that snapshot and a journal tail,
# verify fsck detects the damage (nonzero exit), repair (falls back one
# generation), and check that replaying the journal reproduces the
# pre-crash detection verdicts.
grep -E 'still flagged|newly flagged|newly cleared' "$SMOKE_DIR/update.out" \
  > "$SMOKE_DIR/precrash.flags"
# Tear the tail off the current generation's score image and the journal.
CURRENT_GEN="$(sed -n 's/^generation //p' "$SMOKE_DIR/state/MANIFEST")"
GEN_DIR="$SMOKE_DIR/state/$(printf 'gen-%04d' "$CURRENT_GEN")"
truncate -s -64 "$GEN_DIR/p.bin"
cp "$SMOKE_DIR/evo.journal" "$SMOKE_DIR/torn.journal"
truncate -s -5 "$SMOKE_DIR/torn.journal"
if ./target/release/spammass fsck --state "$SMOKE_DIR/state" \
    --journal "$SMOKE_DIR/torn.journal" > /dev/null 2>&1; then
  echo "fsck reported a torn directory as healthy"; exit 1
fi
./target/release/spammass fsck --state "$SMOKE_DIR/state" \
  --journal "$SMOKE_DIR/torn.journal" --repair true > "$SMOKE_DIR/fsck.out"
for key in 'quarantined gen-' 're-pointed manifest' 'truncated journal' \
    'verdict: healthy'; do
  grep -q "$key" "$SMOKE_DIR/fsck.out" \
    || { echo "fsck --repair missing '$key'"; cat "$SMOKE_DIR/fsck.out"; exit 1; }
done
[ -d "$SMOKE_DIR/state/quarantine" ] \
  || { echo "fsck --repair left no quarantine directory"; exit 1; }
# The repaired state fell back one generation (pre-update); replaying the
# same journal must land on the same flagged set as before the crash.
./target/release/spammass update --journal "$SMOKE_DIR/evo.journal" \
  --state "$SMOKE_DIR/state" > "$SMOKE_DIR/postcrash.out"
grep -E 'still flagged|newly flagged|newly cleared' "$SMOKE_DIR/postcrash.out" \
  > "$SMOKE_DIR/postcrash.flags"
diff "$SMOKE_DIR/precrash.flags" "$SMOKE_DIR/postcrash.flags" \
  || { echo "post-repair update disagrees with pre-crash flagged set"; exit 1; }

echo "CI green."
