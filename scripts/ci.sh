#!/usr/bin/env bash
# Full local CI gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
