//! Delta records: the unit entries of a `SPAMDLT` journal.

use spammass_graph::NodeId;

/// One mutation of the web graph (or of the good core) observed between
/// two estimation runs.
///
/// Records are **ordered**: a journal replays them first to last, and a
/// later record wins over an earlier one touching the same edge or core
/// node (add-then-remove nets out to a removal, and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeltaRecord {
    /// A new link `from → to` appeared in the crawl.
    AddEdge {
        /// Source host.
        from: NodeId,
        /// Destination host.
        to: NodeId,
    },
    /// The link `from → to` disappeared from the crawl.
    RemoveEdge {
        /// Source host.
        from: NodeId,
        /// Destination host.
        to: NodeId,
    },
    /// A new host appeared. Grows the node range to cover `node` even if
    /// no edge references it yet (isolated hosts still receive the random
    /// jump, so they matter to PageRank).
    AddNode {
        /// The new host's id.
        node: NodeId,
    },
    /// `node` was vetted and joined the good core.
    CoreAdd {
        /// The newly trusted host.
        node: NodeId,
    },
    /// `node` was dropped from the good core (e.g. a hijacked host).
    CoreRemove {
        /// The no-longer-trusted host.
        node: NodeId,
    },
}

impl DeltaRecord {
    /// Wire tag of this record kind in the binary journal.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            DeltaRecord::AddEdge { .. } => 1,
            DeltaRecord::RemoveEdge { .. } => 2,
            DeltaRecord::AddNode { .. } => 3,
            DeltaRecord::CoreAdd { .. } => 4,
            DeltaRecord::CoreRemove { .. } => 5,
        }
    }

    /// Serialized size in bytes (tag byte included).
    pub(crate) fn wire_len(&self) -> usize {
        match self {
            DeltaRecord::AddEdge { .. } | DeltaRecord::RemoveEdge { .. } => 9,
            _ => 5,
        }
    }
}
