//! Zero-dependency fault injection for the persistence paths.
//!
//! Every write, fsync, and rename in the crash-safe state pipeline calls
//! [`hit`] with a stable dotted name before (or, for torn-write points,
//! instead of completing) the real syscall. With nothing armed, a hit is
//! one mutex-free atomic load — cheap enough to leave in release builds.
//! Armed, the Nth pass through a named point returns an injected
//! [`io::Error`], which the caller propagates exactly like a real
//! failure: the write sequence aborts at that syscall boundary, leaving
//! the on-disk state precisely as a crash there would.
//!
//! Arming happens two ways:
//!
//! * **Programmatic** — [`arm`] / [`arm_panic`] / [`disarm_all`] from
//!   tests (see the crash-torture suite in `tests/crash.rs`).
//! * **Environment** — `SPAMMASS_FAILPOINTS="a.b=0;c.d=2"` parsed by
//!   [`arm_from_env`], so a CI script can crash a real CLI process at a
//!   chosen point without recompiling. The value is how many passes
//!   survive before the trigger (0 = fail on first hit); prefix it with
//!   `panic:` (`a.b=panic:0`) for a panic instead of an error.
//!
//! A triggered point normally returns an injected [`io::Error`]; armed
//! in **panic mode** it panics instead, modeling a hard process death
//! rather than a failed syscall. Either way the trip is recorded on the
//! global flight recorder (when enabled) immediately before it fires, so
//! a crash dump's last events name the site that killed the run.
//!
//! The registry also supports **recording**: while enabled, every name
//! passed to [`hit`] is appended (in order, with repeats) to a trace the
//! torture test replays, so "kill the sequence at every failpoint" never
//! goes stale when a new write is added to the pipeline.
//!
//! All state is process-global and the armed points are shared across
//! threads; tests that arm points serialize themselves (the crash
//! torture runs inside one `#[test]`).

use spammass_obs as obs;
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Fast check: is any point armed or recording on? Lets [`hit`] skip the
/// mutex entirely in the (overwhelmingly common) disarmed case.
static ACTIVE: AtomicBool = AtomicBool::new(false);

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// What a triggered failpoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Return an injected [`io::Error`] (a failed syscall).
    Error,
    /// Panic (a hard process death mid-sequence).
    Panic,
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    /// Passes left before the trigger fires.
    passes: u64,
    action: Action,
}

#[derive(Default)]
struct Registry {
    /// Armed points by name.
    armed: BTreeMap<String, Armed>,
    /// Whether hits are being traced.
    recording: bool,
    /// The ordered trace of hit names (with repeats) while recording.
    trace: Vec<String>,
}

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let registry = guard.get_or_insert_with(Registry::default);
    let out = f(registry);
    ACTIVE.store(!registry.armed.is_empty() || registry.recording, Ordering::Release);
    out
}

/// The error kind used for injected faults. Deliberately not a transient
/// kind, so the `io.retry` helper never papers over an injected crash.
pub const INJECTED_KIND: io::ErrorKind = io::ErrorKind::Other;

/// Marker in injected error messages; lets tests and logs distinguish
/// injected faults from real ones.
pub const INJECTED_MARK: &str = "injected fault";

/// Arms `name`: the `after`-th subsequent [`hit`] (0-based) returns an
/// error. Re-arming an armed point resets its countdown.
pub fn arm(name: &str, after: u64) {
    with_registry(|r| {
        r.armed.insert(name.to_string(), Armed { passes: after, action: Action::Error });
    });
}

/// Arms `name` in panic mode: the `after`-th subsequent [`hit`] panics
/// instead of returning an error, modeling a hard crash (and exercising
/// the panic hook / flight-recorder dump path end to end).
pub fn arm_panic(name: &str, after: u64) {
    with_registry(|r| {
        r.armed.insert(name.to_string(), Armed { passes: after, action: Action::Panic });
    });
}

/// Disarms every point and stops recording; the registry returns to its
/// zero-cost state.
pub fn disarm_all() {
    with_registry(|r| {
        r.armed.clear();
        r.recording = false;
        r.trace.clear();
    });
}

/// Starts recording hit names (clearing any previous trace).
pub fn start_recording() {
    with_registry(|r| {
        r.recording = true;
        r.trace.clear();
    });
}

/// Stops recording and returns the ordered trace of hits since
/// [`start_recording`], repeats included.
pub fn stop_recording() -> Vec<String> {
    with_registry(|r| {
        r.recording = false;
        std::mem::take(&mut r.trace)
    })
}

/// Parses `SPAMMASS_FAILPOINTS` (`name=passes` pairs separated by `;` or
/// `,`; a `panic:` prefix on the pass count arms panic mode, e.g.
/// `a.b=panic:0`) and arms each entry. Unset or empty is a no-op;
/// malformed entries are reported as errors so a typo'd CI script fails
/// loudly instead of silently testing nothing.
pub fn arm_from_env() -> Result<usize, String> {
    let Ok(spec) = std::env::var("SPAMMASS_FAILPOINTS") else {
        return Ok(0);
    };
    let mut count = 0;
    for entry in spec.split([';', ',']).map(str::trim).filter(|e| !e.is_empty()) {
        let (name, value) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry {entry:?} is not name=passes"))?;
        let value = value.trim();
        let (panic_mode, passes) = match value.strip_prefix("panic:") {
            Some(rest) => (true, rest.trim()),
            None => (false, value),
        };
        let passes: u64 =
            passes.parse().map_err(|_| format!("failpoint {name:?}: bad pass count {value:?}"))?;
        if panic_mode {
            arm_panic(name.trim(), passes);
        } else {
            arm(name.trim(), passes);
        }
        count += 1;
    }
    Ok(count)
}

/// Passes through (or trips) the failpoint `name`.
///
/// When the point is armed and its countdown has reached zero it trips:
/// error mode returns `Err` with an [`INJECTED_KIND`] error, panic mode
/// panics. The point disarms itself on trigger (one crash per arming),
/// and the trip is noted on the flight recorder — outside the registry
/// lock, so the panic hook can use the registry freely. Records the hit
/// when recording.
pub fn hit(name: &str) -> io::Result<()> {
    if !ACTIVE.load(Ordering::Acquire) {
        return Ok(());
    }
    let tripped = with_registry(|r| {
        if r.recording {
            r.trace.push(name.to_string());
        }
        match r.armed.get_mut(name) {
            None => None,
            Some(armed) if armed.passes > 0 => {
                armed.passes -= 1;
                None
            }
            Some(armed) => {
                let action = armed.action;
                r.armed.remove(name);
                Some(action)
            }
        }
    });
    match tripped {
        None => Ok(()),
        Some(action) => {
            let label = match action {
                Action::Error => "error",
                Action::Panic => "panic",
            };
            obs::flight::note("failpoint", name, &[("action".to_string(), obs::Json::str(label))]);
            match action {
                Action::Error => Err(io::Error::other(format!("{INJECTED_MARK} at {name}"))),
                Action::Panic => panic!("{INJECTED_MARK} panic at {name}"),
            }
        }
    }
}

/// Whether `error` was produced by a triggered failpoint.
pub fn is_injected(error: &io::Error) -> bool {
    error.kind() == INJECTED_KIND && error.to_string().contains(INJECTED_MARK)
}

/// Serializes unit tests (across modules of this crate) that arm or
/// disarm the process-global registry, so parallel test execution
/// cannot interleave one test's `arm` with another's `disarm_all`.
#[cfg(test)]
pub(crate) static TEST_SERIAL: Mutex<()> = Mutex::new(());

/// Locks [`TEST_SERIAL`], recovering from a poisoned lock (a failed
/// test must not cascade into every later failpoint test).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn disarmed_points_pass() {
        let _g = lock();
        disarm_all();
        assert!(hit("fp.test.nothing").is_ok());
    }

    #[test]
    fn armed_point_fires_on_nth_pass_then_disarms() {
        let _g = lock();
        disarm_all();
        arm("fp.test.nth", 2);
        assert!(hit("fp.test.nth").is_ok());
        assert!(hit("fp.test.nth").is_ok());
        let err = hit("fp.test.nth").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(!spammass_graph::retry::is_transient(&err), "injected faults must not be retried");
        // One crash per arming.
        assert!(hit("fp.test.nth").is_ok());
        disarm_all();
    }

    #[test]
    fn recording_captures_ordered_trace() {
        let _g = lock();
        disarm_all();
        start_recording();
        hit("fp.test.a").unwrap();
        hit("fp.test.b").unwrap();
        hit("fp.test.a").unwrap();
        let trace = stop_recording();
        assert_eq!(trace, vec!["fp.test.a", "fp.test.b", "fp.test.a"]);
        // Recording stopped: nothing accumulates.
        hit("fp.test.c").unwrap();
        assert!(stop_recording().is_empty());
        disarm_all();
    }

    #[test]
    fn panic_mode_panics_with_the_mark_then_disarms() {
        let _g = lock();
        disarm_all();
        arm_panic("fp.test.panic", 1);
        assert!(hit("fp.test.panic").is_ok());
        let payload = std::panic::catch_unwind(|| {
            let _ = hit("fp.test.panic");
        })
        .unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("panic carries a String");
        assert!(msg.contains(INJECTED_MARK), "{msg}");
        assert!(msg.contains("fp.test.panic"), "{msg}");
        // One crash per arming, same as error mode.
        assert!(hit("fp.test.panic").is_ok());
        disarm_all();
    }

    #[test]
    fn env_arming_parses_panic_mode() {
        let _g = lock();
        disarm_all();
        std::env::set_var("SPAMMASS_FAILPOINTS", "fp.env.p=panic:1");
        assert_eq!(arm_from_env().unwrap(), 1);
        assert!(hit("fp.env.p").is_ok());
        assert!(std::panic::catch_unwind(|| {
            let _ = hit("fp.env.p");
        })
        .is_err());
        std::env::set_var("SPAMMASS_FAILPOINTS", "fp.env.p=panic:x");
        assert!(arm_from_env().is_err());
        std::env::remove_var("SPAMMASS_FAILPOINTS");
        disarm_all();
    }

    #[test]
    fn env_arming_parses_and_rejects() {
        let _g = lock();
        disarm_all();
        // No env var set in the test environment: a no-op.
        std::env::remove_var("SPAMMASS_FAILPOINTS");
        assert_eq!(arm_from_env().unwrap(), 0);
        std::env::set_var("SPAMMASS_FAILPOINTS", "fp.env.a=0; fp.env.b=3");
        assert_eq!(arm_from_env().unwrap(), 2);
        assert!(hit("fp.env.a").is_err());
        assert!(hit("fp.env.b").is_ok());
        std::env::set_var("SPAMMASS_FAILPOINTS", "garbage");
        assert!(arm_from_env().is_err());
        std::env::set_var("SPAMMASS_FAILPOINTS", "fp=NaN");
        assert!(arm_from_env().is_err());
        std::env::remove_var("SPAMMASS_FAILPOINTS");
        disarm_all();
    }
}
