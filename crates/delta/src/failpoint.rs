//! Zero-dependency fault injection for the persistence paths.
//!
//! Every write, fsync, and rename in the crash-safe state pipeline calls
//! [`hit`] with a stable dotted name before (or, for torn-write points,
//! instead of completing) the real syscall. With nothing armed, a hit is
//! one mutex-free atomic load — cheap enough to leave in release builds.
//! Armed, the Nth pass through a named point returns an injected
//! [`io::Error`], which the caller propagates exactly like a real
//! failure: the write sequence aborts at that syscall boundary, leaving
//! the on-disk state precisely as a crash there would.
//!
//! Arming happens two ways:
//!
//! * **Programmatic** — [`arm`] / [`disarm_all`] from tests (see the
//!   crash-torture suite in `tests/crash.rs`).
//! * **Environment** — `SPAMMASS_FAILPOINTS="a.b=0;c.d=2"` parsed by
//!   [`arm_from_env`], so a CI script can crash a real CLI process at a
//!   chosen point without recompiling. The value is how many passes
//!   survive before the trigger (0 = fail on first hit).
//!
//! The registry also supports **recording**: while enabled, every name
//! passed to [`hit`] is appended (in order, with repeats) to a trace the
//! torture test replays, so "kill the sequence at every failpoint" never
//! goes stale when a new write is added to the pipeline.
//!
//! All state is process-global and the armed points are shared across
//! threads; tests that arm points serialize themselves (the crash
//! torture runs inside one `#[test]`).

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Fast check: is any point armed or recording on? Lets [`hit`] skip the
/// mutex entirely in the (overwhelmingly common) disarmed case.
static ACTIVE: AtomicBool = AtomicBool::new(false);

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

#[derive(Default)]
struct Registry {
    /// Armed points: name → passes left before the trigger fires.
    armed: BTreeMap<String, u64>,
    /// Whether hits are being traced.
    recording: bool,
    /// The ordered trace of hit names (with repeats) while recording.
    trace: Vec<String>,
}

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let registry = guard.get_or_insert_with(Registry::default);
    let out = f(registry);
    ACTIVE.store(!registry.armed.is_empty() || registry.recording, Ordering::Release);
    out
}

/// The error kind used for injected faults. Deliberately not a transient
/// kind, so the `io.retry` helper never papers over an injected crash.
pub const INJECTED_KIND: io::ErrorKind = io::ErrorKind::Other;

/// Marker in injected error messages; lets tests and logs distinguish
/// injected faults from real ones.
pub const INJECTED_MARK: &str = "injected fault";

/// Arms `name`: the `after`-th subsequent [`hit`] (0-based) returns an
/// error. Re-arming an armed point resets its countdown.
pub fn arm(name: &str, after: u64) {
    with_registry(|r| {
        r.armed.insert(name.to_string(), after);
    });
}

/// Disarms every point and stops recording; the registry returns to its
/// zero-cost state.
pub fn disarm_all() {
    with_registry(|r| {
        r.armed.clear();
        r.recording = false;
        r.trace.clear();
    });
}

/// Starts recording hit names (clearing any previous trace).
pub fn start_recording() {
    with_registry(|r| {
        r.recording = true;
        r.trace.clear();
    });
}

/// Stops recording and returns the ordered trace of hits since
/// [`start_recording`], repeats included.
pub fn stop_recording() -> Vec<String> {
    with_registry(|r| {
        r.recording = false;
        std::mem::take(&mut r.trace)
    })
}

/// Parses `SPAMMASS_FAILPOINTS` (`name=passes` pairs separated by `;` or
/// `,`) and arms each entry. Unset or empty is a no-op; malformed
/// entries are reported as errors so a typo'd CI script fails loudly
/// instead of silently testing nothing.
pub fn arm_from_env() -> Result<usize, String> {
    let Ok(spec) = std::env::var("SPAMMASS_FAILPOINTS") else {
        return Ok(0);
    };
    let mut count = 0;
    for entry in spec.split([';', ',']).map(str::trim).filter(|e| !e.is_empty()) {
        let (name, passes) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry {entry:?} is not name=passes"))?;
        let passes: u64 = passes
            .trim()
            .parse()
            .map_err(|_| format!("failpoint {name:?}: bad pass count {passes:?}"))?;
        arm(name.trim(), passes);
        count += 1;
    }
    Ok(count)
}

/// Passes through (or trips) the failpoint `name`.
///
/// Returns `Err` with an [`INJECTED_KIND`] error when the point is armed
/// and its countdown has reached zero; the point disarms itself on
/// trigger (one crash per arming). Records the hit when recording.
pub fn hit(name: &str) -> io::Result<()> {
    if !ACTIVE.load(Ordering::Acquire) {
        return Ok(());
    }
    with_registry(|r| {
        if r.recording {
            r.trace.push(name.to_string());
        }
        match r.armed.get_mut(name) {
            None => Ok(()),
            Some(passes) if *passes > 0 => {
                *passes -= 1;
                Ok(())
            }
            Some(_) => {
                r.armed.remove(name);
                Err(io::Error::other(format!("{INJECTED_MARK} at {name}")))
            }
        }
    })
}

/// Whether `error` was produced by a triggered failpoint.
pub fn is_injected(error: &io::Error) -> bool {
    error.kind() == INJECTED_KIND && error.to_string().contains(INJECTED_MARK)
}

/// Serializes unit tests (across modules of this crate) that arm or
/// disarm the process-global registry, so parallel test execution
/// cannot interleave one test's `arm` with another's `disarm_all`.
#[cfg(test)]
pub(crate) static TEST_SERIAL: Mutex<()> = Mutex::new(());

/// Locks [`TEST_SERIAL`], recovering from a poisoned lock (a failed
/// test must not cascade into every later failpoint test).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn disarmed_points_pass() {
        let _g = lock();
        disarm_all();
        assert!(hit("fp.test.nothing").is_ok());
    }

    #[test]
    fn armed_point_fires_on_nth_pass_then_disarms() {
        let _g = lock();
        disarm_all();
        arm("fp.test.nth", 2);
        assert!(hit("fp.test.nth").is_ok());
        assert!(hit("fp.test.nth").is_ok());
        let err = hit("fp.test.nth").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(!spammass_graph::retry::is_transient(&err), "injected faults must not be retried");
        // One crash per arming.
        assert!(hit("fp.test.nth").is_ok());
        disarm_all();
    }

    #[test]
    fn recording_captures_ordered_trace() {
        let _g = lock();
        disarm_all();
        start_recording();
        hit("fp.test.a").unwrap();
        hit("fp.test.b").unwrap();
        hit("fp.test.a").unwrap();
        let trace = stop_recording();
        assert_eq!(trace, vec!["fp.test.a", "fp.test.b", "fp.test.a"]);
        // Recording stopped: nothing accumulates.
        hit("fp.test.c").unwrap();
        assert!(stop_recording().is_empty());
        disarm_all();
    }

    #[test]
    fn env_arming_parses_and_rejects() {
        let _g = lock();
        disarm_all();
        // No env var set in the test environment: a no-op.
        std::env::remove_var("SPAMMASS_FAILPOINTS");
        assert_eq!(arm_from_env().unwrap(), 0);
        std::env::set_var("SPAMMASS_FAILPOINTS", "fp.env.a=0; fp.env.b=3");
        assert_eq!(arm_from_env().unwrap(), 2);
        assert!(hit("fp.env.a").is_err());
        assert!(hit("fp.env.b").is_ok());
        std::env::set_var("SPAMMASS_FAILPOINTS", "garbage");
        assert!(arm_from_env().is_err());
        std::env::set_var("SPAMMASS_FAILPOINTS", "fp=NaN");
        assert!(arm_from_env().is_err());
        std::env::remove_var("SPAMMASS_FAILPOINTS");
        disarm_all();
    }
}
