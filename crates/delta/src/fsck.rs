//! State-directory fsck: offline consistency checking and repair.
//!
//! [`check_state`] audits every layer a crash (or bit rot) can damage —
//! the `MANIFEST` pointer, each `gen-N/` snapshot's checksummed images
//! and cross-validation invariants, stray publication debris, and
//! optionally a `SPAMDLT` journal — and folds the findings into one
//! [`StateFsck`] report. It never mutates the directory and never
//! panics on damage: damage is what it is *for*.
//!
//! [`repair_state`] re-runs the audit and then applies the
//! truncate-and-continue repairs the formats admit:
//!
//! * stray `MANIFEST.tmp` debris is deleted;
//! * damaged generations are **quarantined** (moved under
//!   `quarantine/`, never deleted — the operator may want the bytes);
//! * a damaged or dangling manifest is re-pointed at the newest valid
//!   generation via the same atomic publication path `save` uses;
//! * a journal with a torn tail is truncated back to its trusted
//!   prefix.
//!
//! What repair **cannot** do is conjure data: a directory with no valid
//! generation and no legacy flat layout stays unhealthy, and the report
//! says so instead of pretending.

use crate::journal;
use crate::state::{StateDir, StateError};
use spammass_graph::retry::retry_io;
use spammass_obs as obs;
use std::fmt;
use std::fs;
use std::path::Path;

/// What the manifest audit found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestStatus {
    /// No manifest file — a fresh directory or the legacy flat layout.
    Absent,
    /// Manifest parses, CRC checks, and points at generation `.0`.
    Ok(u64),
    /// Manifest exists but is malformed or fails its CRC.
    Damaged(String),
}

/// Verdict on one `gen-N/` snapshot directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationCheck {
    /// The generation number (from the directory name).
    pub generation: u64,
    /// `None` when the snapshot loads and cross-validates; otherwise
    /// what failed.
    pub error: Option<String>,
}

impl GenerationCheck {
    /// Whether the snapshot is fully loadable.
    pub fn is_valid(&self) -> bool {
        self.error.is_none()
    }
}

/// The full fsck report for a state directory.
#[derive(Debug, Clone, Default)]
pub struct StateFsck {
    /// Manifest verdict.
    pub manifest: Option<ManifestStatus>,
    /// Per-generation verdicts, ascending by generation.
    pub generations: Vec<GenerationCheck>,
    /// Whether a legacy flat-layout file set exists at the root (and, if
    /// so, whether it loads).
    pub legacy: Option<Result<(), String>>,
    /// Whether a stray `MANIFEST.tmp` (publication debris) is present.
    pub stray_manifest_tmp: bool,
    /// Journal verdict, when a journal path was supplied.
    pub journal: Option<journal::JournalFsck>,
    /// Repair actions applied (empty for a check-only run).
    pub repairs: Vec<String>,
    /// Generations moved to `quarantine/` by a repair.
    pub quarantined: Vec<u64>,
}

impl StateFsck {
    /// The newest generation that loads cleanly, if any.
    pub fn newest_valid_generation(&self) -> Option<u64> {
        self.generations.iter().rev().find(|g| g.is_valid()).map(|g| g.generation)
    }

    /// Whether the manifest points at a generation that is present and
    /// valid (or the directory is a loadable legacy/fresh layout).
    pub fn manifest_consistent(&self) -> bool {
        match &self.manifest {
            Some(ManifestStatus::Ok(g)) => {
                self.generations.iter().any(|c| c.generation == *g && c.is_valid())
            }
            // No manifest is fine only when nothing expects one: either
            // a loadable legacy layout or a completely fresh directory.
            Some(ManifestStatus::Absent) => {
                self.generations.is_empty() && !matches!(self.legacy, Some(Err(_)))
            }
            Some(ManifestStatus::Damaged(_)) => false,
            None => false,
        }
    }

    /// Whether every audited layer checked out: consistent manifest, no
    /// damaged generations, no publication debris, clean journal (when
    /// one was checked).
    pub fn is_healthy(&self) -> bool {
        self.manifest_consistent()
            && self.generations.iter().all(GenerationCheck::is_valid)
            && !self.stray_manifest_tmp
            && !matches!(self.legacy, Some(Err(_)))
            && self.journal.as_ref().is_none_or(journal::JournalFsck::is_clean)
    }

    /// Whether a load (with recovery) would still find *something*
    /// usable — the "graceful fallback available" signal.
    pub fn recoverable(&self) -> bool {
        self.newest_valid_generation().is_some() || matches!(self.legacy, Some(Ok(())))
    }
}

impl fmt::Display for StateFsck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.manifest {
            Some(ManifestStatus::Ok(g)) => writeln!(f, "manifest: ok (generation {g})")?,
            Some(ManifestStatus::Absent) => writeln!(f, "manifest: absent")?,
            Some(ManifestStatus::Damaged(e)) => writeln!(f, "manifest: DAMAGED ({e})")?,
            None => writeln!(f, "manifest: not checked")?,
        }
        for c in &self.generations {
            match &c.error {
                None => writeln!(f, "gen-{:04}: ok", c.generation)?,
                Some(e) => writeln!(f, "gen-{:04}: DAMAGED ({e})", c.generation)?,
            }
        }
        match &self.legacy {
            Some(Ok(())) => writeln!(f, "legacy flat layout: ok")?,
            Some(Err(e)) => writeln!(f, "legacy flat layout: DAMAGED ({e})")?,
            None => {}
        }
        if self.stray_manifest_tmp {
            writeln!(f, "debris: stray {} present", StateDir::MANIFEST_TMP_FILE)?;
        }
        if let Some(j) = &self.journal {
            writeln!(f, "journal: {}{j}", if j.is_clean() { "ok — " } else { "DAMAGED — " })?;
        }
        for r in &self.repairs {
            writeln!(f, "repaired: {r}")?;
        }
        write!(
            f,
            "verdict: {}",
            if self.is_healthy() {
                "healthy"
            } else if self.recoverable() {
                "damaged (recoverable)"
            } else {
                "damaged (NO usable state)"
            }
        )
    }
}

/// Audits `dir` (and optionally the journal at `journal_path`) without
/// mutating anything.
///
/// # Errors
/// Only environment failures (e.g. an unreadable directory) error;
/// damaged state is reported in the [`StateFsck`], not raised.
pub fn check_state(dir: &StateDir, journal_path: Option<&Path>) -> Result<StateFsck, StateError> {
    let mut span = obs::span("fsck.state");
    let manifest = match dir.read_manifest() {
        Ok(Some(g)) => ManifestStatus::Ok(g),
        Ok(None) => ManifestStatus::Absent,
        Err(e) if e.is_corruption() => ManifestStatus::Damaged(e.to_string()),
        Err(e) => return Err(e),
    };
    let mut report = StateFsck { manifest: Some(manifest), ..StateFsck::default() };

    for g in dir.list_generations()? {
        let error = match StateDir::load_files(&dir.generation_path(g)) {
            Ok(_) => None,
            Err(e) => Some(e.to_string()),
        };
        report.generations.push(GenerationCheck { generation: g, error });
    }

    // The manifest may name a generation with no directory at all —
    // surface that as a damaged entry so repair re-points the manifest.
    if let Some(ManifestStatus::Ok(g)) = &report.manifest {
        if !report.generations.iter().any(|c| c.generation == *g) {
            report.generations.push(GenerationCheck {
                generation: *g,
                error: Some("generation directory missing".to_string()),
            });
            report.generations.sort_unstable_by_key(|c| c.generation);
        }
    }

    if dir.path().join(StateDir::GRAPH_FILE).is_file() {
        report.legacy = Some(match StateDir::load_files(dir.path()) {
            Ok(_) => Ok(()),
            Err(e) => Err(e.to_string()),
        });
    }

    report.stray_manifest_tmp = dir.path().join(StateDir::MANIFEST_TMP_FILE).is_file();

    if let Some(path) = journal_path {
        let data = retry_io("fsck.journal.read", || fs::read(path))?;
        report.journal = Some(journal::fsck_journal(&data));
    }

    let damaged = report.generations.iter().filter(|c| !c.is_valid()).count();
    span.record("generations", report.generations.len() as f64);
    span.record("damaged", damaged as f64);
    obs::counter(obs::names::FSCK_RUNS, 1.0);
    if !report.is_healthy() {
        obs::counter(obs::names::FSCK_UNHEALTHY, 1.0);
    }
    Ok(report)
}

/// Audits `dir` like [`check_state`], then applies every repair the
/// damage admits. The returned report reflects the directory *after*
/// repair (with `repairs` / `quarantined` describing what was done), so
/// `is_healthy()` on it answers "did repair succeed".
///
/// # Errors
/// Environment failures while repairing (a rename or write that fails
/// for non-damage reasons) are errors; un-repairable damage is not.
pub fn repair_state(dir: &StateDir, journal_path: Option<&Path>) -> Result<StateFsck, StateError> {
    let before = check_state(dir, journal_path)?;
    let mut repairs = Vec::new();
    let mut quarantined = Vec::new();

    if before.stray_manifest_tmp {
        retry_io("fsck.repair.tmp", || {
            fs::remove_file(dir.path().join(StateDir::MANIFEST_TMP_FILE))
        })?;
        repairs.push(format!("removed stray {}", StateDir::MANIFEST_TMP_FILE));
    }

    for check in before.generations.iter().filter(|c| !c.is_valid()) {
        let g = check.generation;
        let src = dir.generation_path(g);
        if !src.is_dir() {
            // A dangling manifest target: nothing to quarantine, the
            // manifest rewrite below is the whole repair.
            continue;
        }
        let qdir = dir.path().join(StateDir::QUARANTINE_DIR);
        retry_io("fsck.repair.quarantine", || fs::create_dir_all(&qdir))?;
        // Never clobber an earlier quarantine of the same number.
        let mut dest = qdir.join(format!("gen-{g:04}"));
        let mut suffix = 1;
        while dest.exists() {
            dest = qdir.join(format!("gen-{g:04}.{suffix}"));
            suffix += 1;
        }
        retry_io("fsck.repair.quarantine", || fs::rename(&src, &dest))?;
        quarantined.push(g);
        repairs.push(format!("quarantined gen-{g:04} → {}", dest.display()));
        obs::counter(obs::names::FSCK_GENERATIONS_QUARANTINED, 1.0);
    }

    // Re-point the manifest when it is damaged, dangling, or names a
    // just-quarantined generation — at the newest generation that
    // checked out valid.
    let manifest_target = match &before.manifest {
        Some(ManifestStatus::Ok(g))
            if before.generations.iter().any(|c| c.generation == *g && c.is_valid()) =>
        {
            None // already consistent
        }
        Some(ManifestStatus::Absent) if before.generations.is_empty() => None,
        _ => before.newest_valid_generation(),
    };
    if let Some(g) = manifest_target {
        dir.write_manifest(g)?;
        repairs.push(format!("re-pointed manifest at generation {g}"));
    } else if !before.manifest_consistent() && before.newest_valid_generation().is_none() {
        // Nothing valid to point at: remove a damaged manifest so a
        // loadable legacy layout (if any) becomes reachable again.
        if matches!(before.manifest, Some(ManifestStatus::Damaged(_))) {
            retry_io("fsck.repair.manifest", || {
                fs::remove_file(dir.path().join(StateDir::MANIFEST_FILE))
            })?;
            repairs.push("removed damaged manifest (no valid generation to point at)".into());
        }
    }

    if let (Some(path), Some(j)) = (journal_path, &before.journal) {
        if !j.is_clean() {
            let data = retry_io("fsck.repair.journal.read", || fs::read(path))?;
            let (repaired, _) = journal::repair_journal(&data);
            retry_io("fsck.repair.journal.write", || fs::write(path, &repaired))?;
            repairs.push(format!(
                "truncated journal to trusted prefix ({} bytes quarantined)",
                j.quarantined_bytes
            ));
        }
    }

    // Audit again so the report reflects the repaired directory.
    let mut after = check_state(dir, journal_path)?;
    obs::counter(obs::names::FSCK_REPAIRS, repairs.len() as f64);
    after.repairs = repairs;
    after.quarantined = quarantined;
    Ok(after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SavedState;
    use spammass_graph::{GraphBuilder, NodeId};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spammass-fsck-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn populated(name: &str, saves: u64) -> (StateDir, SavedState) {
        let state = StateDir::new(tmpdir(name));
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let core = vec![NodeId(0), NodeId(2)];
        let p = vec![0.25; 4];
        let pc = vec![0.2, 0.1, 0.2, 0.1];
        for _ in 0..saves {
            state.save(&g, &core, &p, &pc).unwrap();
        }
        let loaded = state.load().unwrap();
        (state, loaded)
    }

    #[test]
    fn clean_directory_is_healthy() {
        let (state, _) = populated("clean", 2);
        let report = check_state(&state, None).unwrap();
        assert!(report.is_healthy(), "{report}");
        assert!(report.recoverable());
        assert_eq!(report.manifest, Some(ManifestStatus::Ok(2)));
        assert_eq!(report.newest_valid_generation(), Some(2));
        assert!(report.to_string().contains("verdict: healthy"));
        fs::remove_dir_all(state.path()).unwrap();
    }

    #[test]
    fn corrupt_current_generation_is_flagged_and_repaired() {
        let (state, expected) = populated("quarantine", 2);
        // Damage the published generation's PageRank image.
        let victim = state.generation_path(2).join(StateDir::PAGERANK_FILE);
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&victim, &bytes).unwrap();

        let report = check_state(&state, None).unwrap();
        assert!(!report.is_healthy(), "{report}");
        assert!(report.recoverable(), "gen-1 should still be valid");
        assert_eq!(report.newest_valid_generation(), Some(1));

        let repaired = repair_state(&state, None).unwrap();
        assert!(repaired.is_healthy(), "{repaired}");
        assert_eq!(repaired.quarantined, vec![2]);
        assert!(state.path().join(StateDir::QUARANTINE_DIR).join("gen-0002").is_dir());
        // The manifest now points at gen-1, and a plain strict load works.
        assert_eq!(state.read_manifest().unwrap(), Some(1));
        let back = state.load().unwrap();
        assert_eq!(back.core, expected.core);
        assert_eq!(back.pagerank, expected.pagerank);
        // The next save must not collide with the quarantined number.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let next = state.save(&g, &expected.core, &expected.pagerank, &expected.core_pagerank);
        assert_eq!(next.unwrap(), 2, "gen-2 was quarantined away, its slot is free again");
        fs::remove_dir_all(state.path()).unwrap();
    }

    #[test]
    fn dangling_manifest_is_repointed() {
        let (state, _) = populated("dangling", 2);
        fs::remove_dir_all(state.generation_path(2)).unwrap();
        let report = check_state(&state, None).unwrap();
        assert!(!report.is_healthy());
        let damaged: Vec<_> =
            report.generations.iter().filter(|c| !c.is_valid()).map(|c| c.generation).collect();
        assert_eq!(damaged, vec![2]);

        let repaired = repair_state(&state, None).unwrap();
        assert!(repaired.is_healthy(), "{repaired}");
        assert_eq!(state.read_manifest().unwrap(), Some(1));
        assert!(repaired.quarantined.is_empty(), "nothing on disk to quarantine");
        fs::remove_dir_all(state.path()).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_rewritten() {
        let (state, _) = populated("badmanifest", 1);
        fs::write(state.path().join(StateDir::MANIFEST_FILE), b"SPAMMANIFEST 1\ngarbage\n")
            .unwrap();
        let report = check_state(&state, None).unwrap();
        assert!(matches!(report.manifest, Some(ManifestStatus::Damaged(_))), "{report}");
        assert!(!report.is_healthy());

        let repaired = repair_state(&state, None).unwrap();
        assert!(repaired.is_healthy(), "{repaired}");
        assert_eq!(state.read_manifest().unwrap(), Some(1));
        fs::remove_dir_all(state.path()).unwrap();
    }

    #[test]
    fn stray_manifest_tmp_is_swept() {
        let (state, _) = populated("straytmp", 1);
        fs::write(state.path().join(StateDir::MANIFEST_TMP_FILE), b"half-published").unwrap();
        let report = check_state(&state, None).unwrap();
        assert!(report.stray_manifest_tmp);
        assert!(!report.is_healthy());
        let repaired = repair_state(&state, None).unwrap();
        assert!(repaired.is_healthy(), "{repaired}");
        assert!(!state.path().join(StateDir::MANIFEST_TMP_FILE).exists());
        fs::remove_dir_all(state.path()).unwrap();
    }

    #[test]
    fn torn_journal_is_truncated() {
        let (state, _) = populated("journal", 1);
        let jpath = state.path().join("deltas.spamdlt");
        let batches = vec![vec![
            crate::DeltaRecord::AddEdge { from: NodeId(0), to: NodeId(2) },
            crate::DeltaRecord::CoreAdd { node: NodeId(3) },
        ]];
        let mut bytes = journal::journal_to_bytes(&batches);
        let full = bytes.clone();
        bytes.extend_from_slice(&full[12..full.len() - 5]); // torn second frame
        fs::write(&jpath, &bytes).unwrap();

        let report = check_state(&state, Some(&jpath)).unwrap();
        assert!(!report.is_healthy());
        assert!(!report.journal.as_ref().unwrap().is_clean());

        let repaired = repair_state(&state, Some(&jpath)).unwrap();
        assert!(repaired.is_healthy(), "{repaired}");
        let back = journal::read_journal(&fs::read(&jpath).unwrap()).unwrap();
        assert_eq!(back, batches);
        fs::remove_dir_all(state.path()).unwrap();
    }

    #[test]
    fn everything_damaged_is_reported_not_panicked() {
        let root = tmpdir("hopeless");
        fs::create_dir_all(root.join("gen-0001")).unwrap();
        fs::write(root.join("gen-0001").join(StateDir::GRAPH_FILE), b"junk").unwrap();
        fs::write(root.join(StateDir::MANIFEST_FILE), b"junk").unwrap();
        let state = StateDir::new(&root);
        let report = check_state(&state, None).unwrap();
        assert!(!report.is_healthy());
        assert!(!report.recoverable());
        assert!(report.to_string().contains("NO usable state"), "{report}");
        let repaired = repair_state(&state, None).unwrap();
        // Repair sweeps the wreckage (quarantine + manifest removal),
        // leaving a clean-but-empty directory: healthy, yet with nothing
        // to fall back on — `recoverable()` is the caller's real signal.
        assert!(repaired.is_healthy(), "{repaired}");
        assert!(!repaired.recoverable(), "no data survived");
        assert_eq!(repaired.quarantined, vec![1]);
        assert!(root.join(StateDir::QUARANTINE_DIR).join("gen-0001").is_dir());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn fresh_and_legacy_directories_are_healthy() {
        // A directory that does not exist yet.
        let state = StateDir::new(tmpdir("fresh"));
        let report = check_state(&state, None).unwrap();
        assert!(report.is_healthy(), "{report}");
        assert!(!report.recoverable(), "nothing saved yet");

        // A legacy flat layout (no manifest).
        let (gen_state, loaded) = populated("legacy-src", 1);
        let legacy_root = tmpdir("legacy");
        fs::create_dir_all(&legacy_root).unwrap();
        for f in [
            StateDir::GRAPH_FILE,
            StateDir::PAGERANK_FILE,
            StateDir::CORE_PAGERANK_FILE,
            StateDir::CORE_FILE,
        ] {
            fs::copy(gen_state.generation_path(1).join(f), legacy_root.join(f)).unwrap();
        }
        let legacy = StateDir::new(&legacy_root);
        let report = check_state(&legacy, None).unwrap();
        assert!(report.is_healthy(), "{report}");
        assert!(report.recoverable());
        assert_eq!(legacy.load().unwrap().core, loaded.core);
        fs::remove_dir_all(gen_state.path()).unwrap();
        fs::remove_dir_all(&legacy_root).unwrap();
    }
}
