//! The `SPAMDLT` binary journal: an append-only log of graph deltas.
//!
//! A journal is a header followed by zero or more **self-framed record
//! batches**. Each batch is covered by its own CRC-32, so a reader can
//! verify (and, in lenient mode, skip) batches independently — the
//! failure mode of an append-only log is a torn or bit-flipped *tail*,
//! and per-batch framing keeps every intact prefix readable. Appending
//! is `O(batch)`: new batches are written after the existing ones with
//! no header rewrite.
//!
//! ## Binary layout
//!
//! ```text
//! offset   field
//! 0        magic  b"SPAMDLT\0"
//! 8        version u32 LE (1)
//! 12       batches…
//!
//! batch:
//! 0        payload_len u32 LE — byte length of the records payload
//! 4        record_count u32 LE
//! 8        payload: records, each `tag u8` + LE fields
//! 8+len    crc32 u32 LE — CRC-32 (IEEE) over bytes [0, 8+len) of the batch
//!
//! record payloads by tag:
//! 1  AddEdge     from u32, to u32
//! 2  RemoveEdge  from u32, to u32
//! 3  AddNode     node u32
//! 4  CoreAdd     node u32
//! 5  CoreRemove  node u32
//! ```
//!
//! Errors reuse [`GraphError`] so journal corruption surfaces through
//! the same taxonomy as graph-image corruption ([`GraphError::Corrupt`],
//! [`GraphError::Corrupted`]), and lenient reads honor the same
//! [`ReadOptions`] budget contract as text-edge-list ingest.

use crate::record::DeltaRecord;
use spammass_graph::crc32::crc32;
use spammass_graph::io::ReadOptions;
use spammass_graph::{GraphError, NodeId};
use spammass_obs as obs;
use std::fmt;

/// Magic prefix of the journal format.
pub const MAGIC: &[u8; 8] = b"SPAMDLT\0";
/// Current journal format version.
const VERSION: u32 = 1;
/// Fixed journal header size (magic + version).
const HEADER_LEN: usize = 12;
/// Per-batch framing overhead: payload length + record count up front,
/// CRC-32 behind the payload.
const BATCH_OVERHEAD: usize = 12;
/// How many skipped batches a [`JournalReport`] retains verbatim.
const REPORT_SAMPLE_CAP: usize = 16;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], offset: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[offset..offset + 4]);
    u32::from_le_bytes(b)
}

/// Whether `data` starts with the journal magic — cheap format sniffing
/// for CLI inputs that may be either a graph image or a journal.
pub fn is_journal(data: &[u8]) -> bool {
    data.len() >= MAGIC.len() && &data[..MAGIC.len()] == MAGIC.as_slice()
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Incrementally builds a journal image, one batch per call.
///
/// A batch is the atomic unit of the journal — one crawl increment, one
/// evolution step. Empty batches are representable but [`append_batch`]
/// skips them (they carry no information and would inflate the image).
///
/// [`append_batch`]: JournalWriter::append_batch
#[derive(Debug, Clone)]
pub struct JournalWriter {
    buf: Vec<u8>,
    batches: usize,
    records: usize,
}

impl JournalWriter {
    /// Starts a journal image (header only).
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(HEADER_LEN);
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, VERSION);
        JournalWriter { buf, batches: 0, records: 0 }
    }

    /// Appends one CRC-framed batch of records. No-op for empty batches.
    pub fn append_batch(&mut self, records: &[DeltaRecord]) {
        if records.is_empty() {
            return;
        }
        let start = self.buf.len();
        let payload_len: usize = records.iter().map(|r| r.wire_len()).sum();
        debug_assert!(payload_len <= u32::MAX as usize, "batch payload exceeds u32 range");
        put_u32(&mut self.buf, payload_len as u32);
        put_u32(&mut self.buf, records.len() as u32);
        for r in records {
            self.buf.push(r.tag());
            match *r {
                DeltaRecord::AddEdge { from, to } | DeltaRecord::RemoveEdge { from, to } => {
                    put_u32(&mut self.buf, from.0);
                    put_u32(&mut self.buf, to.0);
                }
                DeltaRecord::AddNode { node }
                | DeltaRecord::CoreAdd { node }
                | DeltaRecord::CoreRemove { node } => put_u32(&mut self.buf, node.0),
            }
        }
        let checksum = crc32(&self.buf[start..]);
        put_u32(&mut self.buf, checksum);
        self.batches += 1;
        self.records += records.len();
    }

    /// Batches appended so far.
    pub fn batch_count(&self) -> usize {
        self.batches
    }

    /// Records appended so far.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Finishes and returns the journal image.
    pub fn into_bytes(self) -> Vec<u8> {
        let mut span = obs::span("delta.journal.write");
        span.record("batches", self.batches as f64);
        span.record("records", self.records as f64);
        span.record("bytes", self.buf.len() as f64);
        self.buf
    }
}

impl Default for JournalWriter {
    fn default() -> Self {
        JournalWriter::new()
    }
}

/// One-shot serialization of `batches` into a journal image.
pub fn journal_to_bytes(batches: &[Vec<DeltaRecord>]) -> Vec<u8> {
    let mut w = JournalWriter::new();
    for batch in batches {
        w.append_batch(batch);
    }
    w.into_bytes()
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// One skipped batch (lenient mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadBatch {
    /// 1-based batch index within the journal.
    pub batch: usize,
    /// What was wrong with it.
    pub message: String,
}

/// What happened during a (possibly lenient) journal read — the journal
/// counterpart of the text-ingest `LoadReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalReport {
    /// Batches encountered, intact or not.
    pub batches_total: usize,
    /// Records decoded from intact batches.
    pub records_loaded: usize,
    /// Corrupt batches skipped (lenient mode only).
    pub skipped: usize,
    /// Up to the first [`REPORT_SAMPLE_CAP`] skipped batches, verbatim.
    pub samples: Vec<BadBatch>,
}

impl JournalReport {
    /// Whether every batch decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.skipped == 0
    }

    fn record(&mut self, batch: usize, message: String) {
        self.skipped += 1;
        if self.samples.len() < REPORT_SAMPLE_CAP {
            self.samples.push(BadBatch { batch, message });
        }
    }
}

impl fmt::Display for JournalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} batches, {} records loaded, {} skipped",
            self.batches_total, self.records_loaded, self.skipped
        )?;
        for bad in &self.samples {
            write!(f, "\n  batch {}: {}", bad.batch, bad.message)?;
        }
        if self.skipped > self.samples.len() {
            write!(f, "\n  … and {} more", self.skipped - self.samples.len())?;
        }
        Ok(())
    }
}

/// Reads a journal strictly: the first corrupt batch aborts.
pub fn read_journal(data: &[u8]) -> Result<Vec<Vec<DeltaRecord>>, GraphError> {
    read_journal_with(data, &ReadOptions::default()).map(|(b, _)| b)
}

/// Reads a journal under the given [`ReadOptions`].
///
/// In lenient mode a batch whose CRC, framing, or record payload is bad
/// is skipped and recorded in the [`JournalReport`], up to the
/// `max_bad_lines` budget (budget unit: one batch). A torn tail — too
/// few bytes left for the claimed frame — ends the read after being
/// counted, since no later frame boundary can be trusted.
pub fn read_journal_with(
    data: &[u8],
    options: &ReadOptions,
) -> Result<(Vec<Vec<DeltaRecord>>, JournalReport), GraphError> {
    let mut span = obs::span("delta.journal.read");
    span.record("bytes", data.len() as f64);
    if data.len() < HEADER_LEN {
        return Err(GraphError::Corrupt("journal shorter than header".into()));
    }
    if !is_journal(data) {
        return Err(GraphError::Corrupt("bad journal magic".into()));
    }
    let version = get_u32(data, 8);
    if version != VERSION {
        return Err(GraphError::Corrupt(format!("unsupported journal version {version}")));
    }

    let mut batches = Vec::new();
    let mut report = JournalReport::default();
    let mut offset = HEADER_LEN;
    while offset < data.len() {
        report.batches_total += 1;
        let index = report.batches_total;
        if data.len() - offset < BATCH_OVERHEAD {
            let message = format!("torn tail: {} trailing bytes", data.len() - offset);
            handle_bad_batch(options, &mut report, index, message)?;
            break;
        }
        let payload_len = get_u32(data, offset) as usize;
        let frame_len = match payload_len.checked_add(BATCH_OVERHEAD) {
            Some(l) if l <= data.len() - offset => l,
            _ => {
                let message = format!(
                    "torn tail: batch claims {payload_len} payload bytes, {} remain",
                    data.len() - offset - BATCH_OVERHEAD
                );
                handle_bad_batch(options, &mut report, index, message)?;
                break;
            }
        };
        let frame = &data[offset..offset + frame_len];
        offset += frame_len;

        let stored_crc = get_u32(frame, frame_len - 4);
        let computed = crc32(&frame[..frame_len - 4]);
        if stored_crc != computed {
            if options.strict {
                return Err(GraphError::Corrupted {
                    field: "crc32",
                    expected: stored_crc as u64,
                    got: computed as u64,
                });
            }
            let message =
                format!("crc32 mismatch (stored {stored_crc:#x}, computed {computed:#x})");
            handle_bad_batch(options, &mut report, index, message)?;
            continue;
        }

        let record_count = get_u32(frame, 4) as usize;
        match decode_batch(&frame[8..frame_len - 4], record_count) {
            Ok(records) => {
                report.records_loaded += records.len();
                batches.push(records);
            }
            // A CRC-clean batch with undecodable records was *written*
            // wrong, not damaged in transit; still skippable in lenient
            // mode so one bad producer doesn't poison the whole log.
            Err(message) => handle_bad_batch(options, &mut report, index, message)?,
        }
    }

    span.record("batches", report.batches_total as f64);
    span.record("records", report.records_loaded as f64);
    span.record("skipped", report.skipped as f64);
    obs::counter("delta.journal.records", report.records_loaded as f64);
    obs::counter("delta.journal.skipped", report.skipped as f64);
    Ok((batches, report))
}

/// Decodes one CRC-verified batch payload.
fn decode_batch(payload: &[u8], record_count: usize) -> Result<Vec<DeltaRecord>, String> {
    let mut records = Vec::with_capacity(record_count.min(payload.len()));
    let mut offset = 0usize;
    while offset < payload.len() {
        let tag = payload[offset];
        let need = match tag {
            1 | 2 => 9,
            3..=5 => 5,
            other => return Err(format!("unknown record tag {other}")),
        };
        if payload.len() - offset < need {
            return Err(format!("record truncated at payload byte {offset}"));
        }
        let a = NodeId(get_u32(payload, offset + 1));
        records.push(match tag {
            1 => DeltaRecord::AddEdge { from: a, to: NodeId(get_u32(payload, offset + 5)) },
            2 => DeltaRecord::RemoveEdge { from: a, to: NodeId(get_u32(payload, offset + 5)) },
            3 => DeltaRecord::AddNode { node: a },
            4 => DeltaRecord::CoreAdd { node: a },
            _ => DeltaRecord::CoreRemove { node: a },
        });
        offset += need;
    }
    if records.len() != record_count {
        return Err(format!(
            "record count mismatch: header claims {record_count}, payload holds {}",
            records.len()
        ));
    }
    Ok(records)
}

fn handle_bad_batch(
    options: &ReadOptions,
    report: &mut JournalReport,
    batch: usize,
    message: String,
) -> Result<(), GraphError> {
    if options.strict {
        return Err(GraphError::Corrupt(format!("batch {batch}: {message}")));
    }
    if report.skipped >= options.max_bad_lines {
        return Err(GraphError::BudgetExhausted {
            budget: options.max_bad_lines,
            line: batch,
            message,
        });
    }
    report.record(batch, message);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batches() -> Vec<Vec<DeltaRecord>> {
        vec![
            vec![
                DeltaRecord::AddNode { node: NodeId(5) },
                DeltaRecord::AddEdge { from: NodeId(5), to: NodeId(0) },
                DeltaRecord::CoreAdd { node: NodeId(2) },
            ],
            vec![
                DeltaRecord::RemoveEdge { from: NodeId(1), to: NodeId(0) },
                DeltaRecord::CoreRemove { node: NodeId(2) },
            ],
        ]
    }

    #[test]
    fn round_trip_preserves_batches() {
        let batches = sample_batches();
        let bytes = journal_to_bytes(&batches);
        assert!(is_journal(&bytes));
        let back = read_journal(&bytes).unwrap();
        assert_eq!(back, batches);
    }

    #[test]
    fn empty_journal_round_trips() {
        let bytes = journal_to_bytes(&[]);
        assert_eq!(bytes.len(), HEADER_LEN);
        let (batches, report) = read_journal_with(&bytes, &ReadOptions::default()).unwrap();
        assert!(batches.is_empty());
        assert!(report.is_clean());
        assert_eq!(report.batches_total, 0);
    }

    #[test]
    fn empty_batches_are_elided() {
        let mut w = JournalWriter::new();
        w.append_batch(&[]);
        w.append_batch(&[DeltaRecord::AddNode { node: NodeId(1) }]);
        w.append_batch(&[]);
        assert_eq!(w.batch_count(), 1);
        let back = read_journal(&w.into_bytes()).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn appending_after_serialization_is_seamless() {
        // The append-only promise: an existing image plus freshly framed
        // batches is itself a valid image.
        let mut bytes = journal_to_bytes(&sample_batches()[..1]);
        let mut tail = JournalWriter::new();
        tail.append_batch(&sample_batches()[1]);
        bytes.extend_from_slice(&tail.into_bytes()[HEADER_LEN..]);
        let back = read_journal(&bytes).unwrap();
        assert_eq!(back, sample_batches());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let bytes = journal_to_bytes(&sample_batches());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(read_journal(&bad), Err(GraphError::Corrupt(_))));
        let mut bad = bytes.clone();
        bad[8] = 9;
        assert!(matches!(read_journal(&bad), Err(GraphError::Corrupt(_))));
        assert!(matches!(read_journal(&bytes[..5]), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn strict_read_rejects_any_bit_flip() {
        let clean = journal_to_bytes(&sample_batches());
        for i in HEADER_LEN..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            assert!(read_journal(&bytes).is_err(), "bit flip at byte {i} went undetected");
        }
    }

    #[test]
    fn lenient_read_skips_corrupt_batch_and_keeps_the_rest() {
        let batches = sample_batches();
        let bytes = journal_to_bytes(&batches);
        let mut bytes = bytes;
        // Flip a payload byte inside the first batch.
        bytes[HEADER_LEN + 9] ^= 0xFF;
        let (back, report) = read_journal_with(&bytes, &ReadOptions::lenient(2)).unwrap();
        assert_eq!(back, &batches[1..]);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.batches_total, 2);
        assert_eq!(report.samples[0].batch, 1);
        assert!(report.samples[0].message.contains("crc32"), "{}", report.samples[0].message);
        assert!(report.to_string().contains("1 skipped"));
    }

    #[test]
    fn lenient_read_enforces_budget() {
        let mut bytes = journal_to_bytes(&sample_batches());
        bytes[HEADER_LEN + 9] ^= 0xFF;
        let err = read_journal_with(&bytes, &ReadOptions::lenient(0)).unwrap_err();
        assert!(matches!(err, GraphError::BudgetExhausted { budget: 0, line: 1, .. }));
    }

    #[test]
    fn torn_tail_is_detected_and_intact_prefix_survives() {
        let batches = sample_batches();
        let bytes = journal_to_bytes(&batches);
        let truncated = &bytes[..bytes.len() - 3];
        assert!(read_journal(truncated).is_err());
        let (back, report) = read_journal_with(truncated, &ReadOptions::lenient(1)).unwrap();
        assert_eq!(back, &batches[..1]);
        assert_eq!(report.skipped, 1);
        assert!(report.samples[0].message.contains("torn tail"));
    }

    #[test]
    fn unknown_tag_is_a_producer_error() {
        let mut w = JournalWriter::new();
        w.append_batch(&[DeltaRecord::AddNode { node: NodeId(1) }]);
        let mut bytes = w.into_bytes();
        // Rewrite the tag and re-seal the CRC: decodable frame, bad record.
        bytes[HEADER_LEN + 8] = 99;
        let end = bytes.len();
        let crc = crc32(&bytes[HEADER_LEN..end - 4]);
        bytes[end - 4..].copy_from_slice(&crc.to_le_bytes());
        match read_journal(&bytes).unwrap_err() {
            GraphError::Corrupt(msg) => assert!(msg.contains("unknown record tag"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let (back, report) = read_journal_with(&bytes, &ReadOptions::lenient(1)).unwrap();
        assert!(back.is_empty());
        assert_eq!(report.skipped, 1);
    }
}
