//! The `SPAMDLT` binary journal: an append-only log of graph deltas.
//!
//! A journal is a header followed by zero or more **self-framed record
//! batches**. Each batch is covered by its own CRC-32, so a reader can
//! verify (and, in lenient mode, skip) batches independently — the
//! failure mode of an append-only log is a torn or bit-flipped *tail*,
//! and per-batch framing keeps every intact prefix readable. Appending
//! is `O(batch)`: new batches are written after the existing ones with
//! no header rewrite.
//!
//! ## Binary layout
//!
//! ```text
//! offset   field
//! 0        magic  b"SPAMDLT\0"
//! 8        version u32 LE (1)
//! 12       batches…
//!
//! batch:
//! 0        payload_len u32 LE — byte length of the records payload
//! 4        record_count u32 LE
//! 8        payload: records, each `tag u8` + LE fields
//! 8+len    crc32 u32 LE — CRC-32 (IEEE) over bytes [0, 8+len) of the batch
//!
//! record payloads by tag:
//! 1  AddEdge     from u32, to u32
//! 2  RemoveEdge  from u32, to u32
//! 3  AddNode     node u32
//! 4  CoreAdd     node u32
//! 5  CoreRemove  node u32
//! ```
//!
//! Errors reuse [`GraphError`] so journal corruption surfaces through
//! the same taxonomy as graph-image corruption ([`GraphError::Corrupt`],
//! [`GraphError::Corrupted`]), and lenient reads honor the same
//! [`ReadOptions`] budget contract as text-edge-list ingest.

use crate::failpoint;
use crate::record::DeltaRecord;
use spammass_graph::crc32::crc32;
use spammass_graph::io::ReadOptions;
use spammass_graph::retry::retry_io;
use spammass_graph::{GraphError, NodeId};
use spammass_obs as obs;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Magic prefix of the journal format.
pub const MAGIC: &[u8; 8] = b"SPAMDLT\0";
/// Current journal format version.
const VERSION: u32 = 1;
/// Fixed journal header size (magic + version).
const HEADER_LEN: usize = 12;
/// Per-batch framing overhead: payload length + record count up front,
/// CRC-32 behind the payload.
const BATCH_OVERHEAD: usize = 12;
/// How many skipped batches a [`JournalReport`] retains verbatim.
const REPORT_SAMPLE_CAP: usize = 16;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], offset: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[offset..offset + 4]);
    u32::from_le_bytes(b)
}

/// Whether `data` starts with the journal magic — cheap format sniffing
/// for CLI inputs that may be either a graph image or a journal.
pub fn is_journal(data: &[u8]) -> bool {
    data.len() >= MAGIC.len() && &data[..MAGIC.len()] == MAGIC.as_slice()
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Incrementally builds a journal image, one batch per call.
///
/// A batch is the atomic unit of the journal — one crawl increment, one
/// evolution step. Empty batches are representable but [`append_batch`]
/// skips them (they carry no information and would inflate the image).
///
/// [`append_batch`]: JournalWriter::append_batch
#[derive(Debug, Clone)]
pub struct JournalWriter {
    buf: Vec<u8>,
    batches: usize,
    records: usize,
}

impl JournalWriter {
    /// Starts a journal image (header only).
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(HEADER_LEN);
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, VERSION);
        JournalWriter { buf, batches: 0, records: 0 }
    }

    /// Appends one CRC-framed batch of records. No-op for empty batches.
    pub fn append_batch(&mut self, records: &[DeltaRecord]) {
        if records.is_empty() {
            return;
        }
        let start = self.buf.len();
        let payload_len: usize = records.iter().map(|r| r.wire_len()).sum();
        debug_assert!(payload_len <= u32::MAX as usize, "batch payload exceeds u32 range");
        put_u32(&mut self.buf, payload_len as u32);
        put_u32(&mut self.buf, records.len() as u32);
        for r in records {
            self.buf.push(r.tag());
            match *r {
                DeltaRecord::AddEdge { from, to } | DeltaRecord::RemoveEdge { from, to } => {
                    put_u32(&mut self.buf, from.0);
                    put_u32(&mut self.buf, to.0);
                }
                DeltaRecord::AddNode { node }
                | DeltaRecord::CoreAdd { node }
                | DeltaRecord::CoreRemove { node } => put_u32(&mut self.buf, node.0),
            }
        }
        let checksum = crc32(&self.buf[start..]);
        put_u32(&mut self.buf, checksum);
        self.batches += 1;
        self.records += records.len();
    }

    /// Batches appended so far.
    pub fn batch_count(&self) -> usize {
        self.batches
    }

    /// Records appended so far.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Finishes and returns the journal image.
    pub fn into_bytes(self) -> Vec<u8> {
        let mut span = obs::span("delta.journal.write");
        span.record("batches", self.batches as f64);
        span.record("records", self.records as f64);
        span.record("bytes", self.buf.len() as f64);
        self.buf
    }
}

impl Default for JournalWriter {
    fn default() -> Self {
        JournalWriter::new()
    }
}

/// One-shot serialization of `batches` into a journal image.
pub fn journal_to_bytes(batches: &[Vec<DeltaRecord>]) -> Vec<u8> {
    let mut w = JournalWriter::new();
    for batch in batches {
        w.append_batch(batch);
    }
    w.into_bytes()
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// One skipped batch (lenient mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadBatch {
    /// 1-based batch index within the journal.
    pub batch: usize,
    /// Byte offset of the batch frame within the journal image.
    pub offset: usize,
    /// Bytes the skip discarded (the frame, or the torn remainder).
    pub bytes: usize,
    /// What was wrong with it.
    pub message: String,
}

/// What happened during a (possibly lenient) journal read — the journal
/// counterpart of the text-ingest `LoadReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalReport {
    /// Batches encountered, intact or not.
    pub batches_total: usize,
    /// Records decoded from intact batches.
    pub records_loaded: usize,
    /// Corrupt batches skipped (lenient mode only).
    pub skipped: usize,
    /// Payload bytes the skipped batches carried — the silently-dropped
    /// volume a lenient read would otherwise hide.
    pub skipped_bytes: usize,
    /// Up to the first [`REPORT_SAMPLE_CAP`] skipped batches, verbatim.
    pub samples: Vec<BadBatch>,
}

impl JournalReport {
    /// Whether every batch decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.skipped == 0
    }

    fn record(&mut self, batch: usize, offset: usize, bytes: usize, message: String) {
        self.skipped += 1;
        self.skipped_bytes += bytes;
        if self.samples.len() < REPORT_SAMPLE_CAP {
            self.samples.push(BadBatch { batch, offset, bytes, message });
        }
    }
}

impl fmt::Display for JournalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} batches, {} records loaded, {} skipped ({} bytes)",
            self.batches_total, self.records_loaded, self.skipped, self.skipped_bytes
        )?;
        for bad in &self.samples {
            write!(
                f,
                "\n  batch {} at byte {} ({} bytes): {}",
                bad.batch, bad.offset, bad.bytes, bad.message
            )?;
        }
        if self.skipped > self.samples.len() {
            write!(f, "\n  … and {} more", self.skipped - self.samples.len())?;
        }
        Ok(())
    }
}

/// Reads a journal strictly: the first corrupt batch aborts.
pub fn read_journal(data: &[u8]) -> Result<Vec<Vec<DeltaRecord>>, GraphError> {
    read_journal_with(data, &ReadOptions::default()).map(|(b, _)| b)
}

/// Reads a journal under the given [`ReadOptions`].
///
/// In lenient mode a batch whose CRC, framing, or record payload is bad
/// is skipped and recorded in the [`JournalReport`], up to the
/// `max_bad_lines` budget (budget unit: one batch). A torn tail — too
/// few bytes left for the claimed frame — ends the read after being
/// counted, since no later frame boundary can be trusted.
pub fn read_journal_with(
    data: &[u8],
    options: &ReadOptions,
) -> Result<(Vec<Vec<DeltaRecord>>, JournalReport), GraphError> {
    let mut span = obs::span("delta.journal.read");
    span.record("bytes", data.len() as f64);
    if data.len() < HEADER_LEN {
        return Err(GraphError::Corrupt("journal shorter than header".into()));
    }
    if !is_journal(data) {
        return Err(GraphError::Corrupt("bad journal magic".into()));
    }
    let version = get_u32(data, 8);
    if version != VERSION {
        return Err(GraphError::Corrupt(format!("unsupported journal version {version}")));
    }

    let mut batches = Vec::new();
    let mut report = JournalReport::default();
    let mut offset = HEADER_LEN;
    while offset < data.len() {
        report.batches_total += 1;
        let index = report.batches_total;
        let remaining = data.len() - offset;
        if remaining < BATCH_OVERHEAD {
            let message = format!("torn tail: {remaining} trailing bytes");
            handle_bad_batch(options, &mut report, index, offset, remaining, message)?;
            break;
        }
        let payload_len = get_u32(data, offset) as usize;
        let frame_len = match payload_len.checked_add(BATCH_OVERHEAD) {
            Some(l) if l <= remaining => l,
            _ => {
                let message = format!(
                    "torn tail: batch claims {payload_len} payload bytes, {} remain",
                    remaining - BATCH_OVERHEAD
                );
                handle_bad_batch(options, &mut report, index, offset, remaining, message)?;
                break;
            }
        };
        let frame = &data[offset..offset + frame_len];
        let frame_offset = offset;
        offset += frame_len;

        let stored_crc = get_u32(frame, frame_len - 4);
        let computed = crc32(&frame[..frame_len - 4]);
        if stored_crc != computed {
            if options.strict {
                return Err(GraphError::Corrupted {
                    field: "crc32",
                    expected: stored_crc as u64,
                    got: computed as u64,
                });
            }
            let message =
                format!("crc32 mismatch (stored {stored_crc:#x}, computed {computed:#x})");
            handle_bad_batch(options, &mut report, index, frame_offset, frame_len, message)?;
            continue;
        }

        let record_count = get_u32(frame, 4) as usize;
        match decode_batch(&frame[8..frame_len - 4], record_count) {
            Ok(records) => {
                report.records_loaded += records.len();
                batches.push(records);
            }
            // A CRC-clean batch with undecodable records was *written*
            // wrong, not damaged in transit; still skippable in lenient
            // mode so one bad producer doesn't poison the whole log.
            Err(message) => {
                handle_bad_batch(options, &mut report, index, frame_offset, frame_len, message)?
            }
        }
    }

    span.record("batches", report.batches_total as f64);
    span.record("records", report.records_loaded as f64);
    span.record("skipped", report.skipped as f64);
    obs::counter("delta.journal.records", report.records_loaded as f64);
    obs::counter("delta.journal.skipped", report.skipped as f64);
    if report.skipped_bytes > 0 {
        obs::counter(obs::names::DELTA_JOURNAL_SKIPPED_BYTES, report.skipped_bytes as f64);
    }
    Ok((batches, report))
}

/// Decodes one CRC-verified batch payload.
fn decode_batch(payload: &[u8], record_count: usize) -> Result<Vec<DeltaRecord>, String> {
    let mut records = Vec::with_capacity(record_count.min(payload.len()));
    let mut offset = 0usize;
    while offset < payload.len() {
        let tag = payload[offset];
        let need = match tag {
            1 | 2 => 9,
            3..=5 => 5,
            other => return Err(format!("unknown record tag {other}")),
        };
        if payload.len() - offset < need {
            return Err(format!("record truncated at payload byte {offset}"));
        }
        let a = NodeId(get_u32(payload, offset + 1));
        records.push(match tag {
            1 => DeltaRecord::AddEdge { from: a, to: NodeId(get_u32(payload, offset + 5)) },
            2 => DeltaRecord::RemoveEdge { from: a, to: NodeId(get_u32(payload, offset + 5)) },
            3 => DeltaRecord::AddNode { node: a },
            4 => DeltaRecord::CoreAdd { node: a },
            _ => DeltaRecord::CoreRemove { node: a },
        });
        offset += need;
    }
    if records.len() != record_count {
        return Err(format!(
            "record count mismatch: header claims {record_count}, payload holds {}",
            records.len()
        ));
    }
    Ok(records)
}

fn handle_bad_batch(
    options: &ReadOptions,
    report: &mut JournalReport,
    batch: usize,
    offset: usize,
    bytes: usize,
    message: String,
) -> Result<(), GraphError> {
    if options.strict {
        return Err(GraphError::Corrupt(format!("batch {batch}: {message}")));
    }
    if report.skipped >= options.max_bad_lines {
        return Err(GraphError::BudgetExhausted {
            budget: options.max_bad_lines,
            line: batch,
            message,
        });
    }
    report.record(batch, offset, bytes, message);
    Ok(())
}

// ---------------------------------------------------------------------------
// Fsck, repair, and durable appends
// ---------------------------------------------------------------------------

/// Findings of a journal integrity scan.
///
/// The scan walks frames from the header and stops at the first one
/// that cannot be trusted: after a bad length prefix or CRC, no later
/// frame boundary is reliable, so everything from that point on is the
/// *quarantined tail*. `valid_prefix_len` is the byte length of the
/// header plus every intact frame — the truncation point a repair cuts
/// back to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalFsck {
    /// Whether the magic/version header was intact.
    pub header_ok: bool,
    /// Frames examined, including the bad one that ended the scan.
    pub frames_scanned: usize,
    /// Intact frames in the trusted prefix.
    pub frames_valid: usize,
    /// Records carried by the trusted prefix.
    pub records_valid: usize,
    /// Bytes of header + trusted prefix (the repair truncation point).
    pub valid_prefix_len: usize,
    /// Bytes past the trusted prefix that a repair discards.
    pub quarantined_bytes: usize,
    /// What was wrong with the first untrusted frame (or the header).
    pub tail_error: Option<String>,
}

impl JournalFsck {
    /// Whether the whole image decoded cleanly.
    pub fn is_clean(&self) -> bool {
        self.header_ok && self.quarantined_bytes == 0
    }
}

impl fmt::Display for JournalFsck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.header_ok {
            write!(f, "header damaged; {} bytes quarantined", self.quarantined_bytes)?;
        } else {
            write!(
                f,
                "{} frames scanned, {} valid ({} records, {} bytes)",
                self.frames_scanned, self.frames_valid, self.records_valid, self.valid_prefix_len
            )?;
            if self.quarantined_bytes > 0 {
                write!(f, "; torn tail: {} bytes quarantined", self.quarantined_bytes)?;
            }
        }
        if let Some(e) = &self.tail_error {
            write!(f, " ({e})")?;
        }
        Ok(())
    }
}

/// Scans `data` and reports how much of it is a trustworthy journal.
/// Never errors: damage is what it is *for* — the answers come back in
/// the [`JournalFsck`].
pub fn fsck_journal(data: &[u8]) -> JournalFsck {
    let mut span = obs::span("fsck.journal");
    span.record("bytes", data.len() as f64);
    let mut fsck = JournalFsck::default();
    if data.len() < HEADER_LEN || !is_journal(data) || get_u32(data, 8) != VERSION {
        fsck.quarantined_bytes = data.len();
        fsck.tail_error = Some(if data.is_empty() {
            "empty file".to_string()
        } else {
            "bad or truncated journal header".to_string()
        });
        span.record("quarantined_bytes", fsck.quarantined_bytes as f64);
        return fsck;
    }
    fsck.header_ok = true;
    fsck.valid_prefix_len = HEADER_LEN;
    let mut offset = HEADER_LEN;
    while offset < data.len() {
        fsck.frames_scanned += 1;
        let remaining = data.len() - offset;
        if remaining < BATCH_OVERHEAD {
            fsck.tail_error = Some(format!("torn tail: {remaining} trailing bytes"));
            break;
        }
        let payload_len = get_u32(data, offset) as usize;
        let frame_len = match payload_len.checked_add(BATCH_OVERHEAD) {
            Some(l) if l <= remaining => l,
            _ => {
                fsck.tail_error = Some(format!(
                    "torn tail: frame claims {payload_len} payload bytes, {} remain",
                    remaining - BATCH_OVERHEAD
                ));
                break;
            }
        };
        let frame = &data[offset..offset + frame_len];
        let stored_crc = get_u32(frame, frame_len - 4);
        let computed = crc32(&frame[..frame_len - 4]);
        if stored_crc != computed {
            fsck.tail_error =
                Some(format!("crc32 mismatch (stored {stored_crc:#x}, computed {computed:#x})"));
            break;
        }
        let record_count = get_u32(frame, 4) as usize;
        match decode_batch(&frame[8..frame_len - 4], record_count) {
            Ok(records) => fsck.records_valid += records.len(),
            Err(message) => {
                fsck.tail_error = Some(message);
                break;
            }
        }
        fsck.frames_valid += 1;
        offset += frame_len;
        fsck.valid_prefix_len = offset;
    }
    fsck.quarantined_bytes = data.len() - fsck.valid_prefix_len;
    span.record("frames", fsck.frames_scanned as f64);
    span.record("quarantined_bytes", fsck.quarantined_bytes as f64);
    obs::counter(obs::names::FSCK_JOURNAL_QUARANTINED_BYTES, fsck.quarantined_bytes as f64);
    fsck
}

/// Returns a clean journal image: the trusted prefix of `data`, or a
/// fresh empty journal when even the header is damaged. The findings
/// explain what was cut.
pub fn repair_journal(data: &[u8]) -> (Vec<u8>, JournalFsck) {
    let fsck = fsck_journal(data);
    let repaired = if fsck.header_ok {
        data[..fsck.valid_prefix_len].to_vec()
    } else {
        JournalWriter::new().into_bytes()
    };
    (repaired, fsck)
}

/// Reads a journal tolerating a damaged tail: decodes the trusted
/// prefix and truncates at the first untrustworthy frame, the
/// "truncate-and-continue" recovery an append-only log admits. Only a
/// damaged *header* (the file is not a journal at all) is an error.
pub fn read_journal_recovering(
    data: &[u8],
) -> Result<(Vec<Vec<DeltaRecord>>, JournalFsck), GraphError> {
    let fsck = fsck_journal(data);
    if !fsck.header_ok {
        return Err(GraphError::Corrupt(format!(
            "journal unreadable: {}",
            fsck.tail_error.as_deref().unwrap_or("bad header")
        )));
    }
    // The prefix just passed fsck; a strict read of it cannot fail.
    let batches = read_journal(&data[..fsck.valid_prefix_len])?;
    Ok((batches, fsck))
}

/// Durably appends `batches` to the journal file at `path`, creating it
/// (with a header) when absent. The write sequence is failpointed
/// (`journal.append.*`) so the crash-torture suite can tear it at every
/// syscall boundary; a torn append is exactly what
/// [`read_journal_recovering`] repairs.
///
/// Returns the number of bytes appended.
pub fn append_to_file(path: &Path, batches: &[Vec<DeltaRecord>]) -> Result<usize, GraphError> {
    let mut span = obs::span("delta.journal.append");
    failpoint::hit("journal.append.open")?;
    let existing_len = match fs_metadata_len(path)? {
        Some(len) if len >= HEADER_LEN as u64 => {
            // Sanity-check the header so appends to a non-journal file
            // fail before damaging it further.
            let mut head = [0u8; HEADER_LEN];
            let mut f = retry_io("journal.append.sniff", || std::fs::File::open(path))?;
            std::io::Read::read_exact(&mut f, &mut head)?;
            if !is_journal(&head) || get_u32(&head, 8) != VERSION {
                return Err(GraphError::Corrupt(format!(
                    "refusing to append: {} is not a v{VERSION} journal",
                    path.display()
                )));
            }
            len
        }
        _ => 0,
    };

    let mut tail = JournalWriter::new();
    for batch in batches {
        tail.append_batch(batch);
    }
    let tail_bytes = tail.into_bytes();
    // A fresh or empty file needs the header; an existing journal only
    // the frames.
    let new_bytes = if existing_len == 0 { &tail_bytes[..] } else { &tail_bytes[HEADER_LEN..] };

    let mut file = retry_io("journal.append.open", || {
        std::fs::OpenOptions::new().create(true).append(true).open(path)
    })?;
    if let Err(e) = failpoint::hit("journal.append.torn") {
        // Simulate a crash mid-append: half the new bytes land.
        let _ = file.write_all(&new_bytes[..new_bytes.len() / 2]);
        let _ = file.sync_all();
        return Err(GraphError::Io(e));
    }
    file.write_all(new_bytes)?;
    failpoint::hit("journal.append.fsync")?;
    retry_io("journal.append.fsync", || file.sync_all())?;
    span.record("bytes", new_bytes.len() as f64);
    obs::counter(obs::names::DELTA_JOURNAL_APPENDED_BYTES, new_bytes.len() as f64);
    Ok(new_bytes.len())
}

fn fs_metadata_len(path: &Path) -> Result<Option<u64>, GraphError> {
    match std::fs::metadata(path) {
        Ok(m) => Ok(Some(m.len())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batches() -> Vec<Vec<DeltaRecord>> {
        vec![
            vec![
                DeltaRecord::AddNode { node: NodeId(5) },
                DeltaRecord::AddEdge { from: NodeId(5), to: NodeId(0) },
                DeltaRecord::CoreAdd { node: NodeId(2) },
            ],
            vec![
                DeltaRecord::RemoveEdge { from: NodeId(1), to: NodeId(0) },
                DeltaRecord::CoreRemove { node: NodeId(2) },
            ],
        ]
    }

    #[test]
    fn round_trip_preserves_batches() {
        let batches = sample_batches();
        let bytes = journal_to_bytes(&batches);
        assert!(is_journal(&bytes));
        let back = read_journal(&bytes).unwrap();
        assert_eq!(back, batches);
    }

    #[test]
    fn empty_journal_round_trips() {
        let bytes = journal_to_bytes(&[]);
        assert_eq!(bytes.len(), HEADER_LEN);
        let (batches, report) = read_journal_with(&bytes, &ReadOptions::default()).unwrap();
        assert!(batches.is_empty());
        assert!(report.is_clean());
        assert_eq!(report.batches_total, 0);
    }

    #[test]
    fn empty_batches_are_elided() {
        let mut w = JournalWriter::new();
        w.append_batch(&[]);
        w.append_batch(&[DeltaRecord::AddNode { node: NodeId(1) }]);
        w.append_batch(&[]);
        assert_eq!(w.batch_count(), 1);
        let back = read_journal(&w.into_bytes()).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn appending_after_serialization_is_seamless() {
        // The append-only promise: an existing image plus freshly framed
        // batches is itself a valid image.
        let mut bytes = journal_to_bytes(&sample_batches()[..1]);
        let mut tail = JournalWriter::new();
        tail.append_batch(&sample_batches()[1]);
        bytes.extend_from_slice(&tail.into_bytes()[HEADER_LEN..]);
        let back = read_journal(&bytes).unwrap();
        assert_eq!(back, sample_batches());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let bytes = journal_to_bytes(&sample_batches());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(read_journal(&bad), Err(GraphError::Corrupt(_))));
        let mut bad = bytes.clone();
        bad[8] = 9;
        assert!(matches!(read_journal(&bad), Err(GraphError::Corrupt(_))));
        assert!(matches!(read_journal(&bytes[..5]), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn strict_read_rejects_any_bit_flip() {
        let clean = journal_to_bytes(&sample_batches());
        for i in HEADER_LEN..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            assert!(read_journal(&bytes).is_err(), "bit flip at byte {i} went undetected");
        }
    }

    #[test]
    fn lenient_read_skips_corrupt_batch_and_keeps_the_rest() {
        let batches = sample_batches();
        let bytes = journal_to_bytes(&batches);
        let mut bytes = bytes;
        // Flip a payload byte inside the first batch.
        bytes[HEADER_LEN + 9] ^= 0xFF;
        let (back, report) = read_journal_with(&bytes, &ReadOptions::lenient(2)).unwrap();
        assert_eq!(back, &batches[1..]);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.batches_total, 2);
        assert_eq!(report.samples[0].batch, 1);
        assert!(report.samples[0].message.contains("crc32"), "{}", report.samples[0].message);
        assert!(report.to_string().contains("1 skipped"));
    }

    #[test]
    fn lenient_read_enforces_budget() {
        let mut bytes = journal_to_bytes(&sample_batches());
        bytes[HEADER_LEN + 9] ^= 0xFF;
        let err = read_journal_with(&bytes, &ReadOptions::lenient(0)).unwrap_err();
        assert!(matches!(err, GraphError::BudgetExhausted { budget: 0, line: 1, .. }));
    }

    #[test]
    fn torn_tail_is_detected_and_intact_prefix_survives() {
        let batches = sample_batches();
        let bytes = journal_to_bytes(&batches);
        let truncated = &bytes[..bytes.len() - 3];
        assert!(read_journal(truncated).is_err());
        let (back, report) = read_journal_with(truncated, &ReadOptions::lenient(1)).unwrap();
        assert_eq!(back, &batches[..1]);
        assert_eq!(report.skipped, 1);
        assert!(report.samples[0].message.contains("torn tail"));
    }

    #[test]
    fn unknown_tag_is_a_producer_error() {
        let mut w = JournalWriter::new();
        w.append_batch(&[DeltaRecord::AddNode { node: NodeId(1) }]);
        let mut bytes = w.into_bytes();
        // Rewrite the tag and re-seal the CRC: decodable frame, bad record.
        bytes[HEADER_LEN + 8] = 99;
        let end = bytes.len();
        let crc = crc32(&bytes[HEADER_LEN..end - 4]);
        bytes[end - 4..].copy_from_slice(&crc.to_le_bytes());
        match read_journal(&bytes).unwrap_err() {
            GraphError::Corrupt(msg) => assert!(msg.contains("unknown record tag"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let (back, report) = read_journal_with(&bytes, &ReadOptions::lenient(1)).unwrap();
        assert!(back.is_empty());
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn lenient_report_accounts_skipped_bytes() {
        let batches = sample_batches();
        let mut bytes = journal_to_bytes(&batches);
        bytes[HEADER_LEN + 9] ^= 0xFF;
        let (_, report) = read_journal_with(&bytes, &ReadOptions::lenient(2)).unwrap();
        let first_frame_len =
            BATCH_OVERHEAD + batches[0].iter().map(|r| r.wire_len()).sum::<usize>();
        assert_eq!(report.skipped_bytes, first_frame_len);
        assert_eq!(report.samples[0].offset, HEADER_LEN);
        assert_eq!(report.samples[0].bytes, first_frame_len);
        assert!(report.to_string().contains("bytes"), "{report}");
    }

    #[test]
    fn fsck_passes_clean_journal() {
        let bytes = journal_to_bytes(&sample_batches());
        let fsck = fsck_journal(&bytes);
        assert!(fsck.is_clean(), "{fsck}");
        assert!(fsck.header_ok);
        assert_eq!(fsck.frames_scanned, 2);
        assert_eq!(fsck.frames_valid, 2);
        assert_eq!(fsck.records_valid, 5);
        assert_eq!(fsck.valid_prefix_len, bytes.len());
        assert_eq!(fsck.quarantined_bytes, 0);
        assert!(fsck.tail_error.is_none());
    }

    #[test]
    fn fsck_quarantines_from_first_bad_frame() {
        // Damage the FIRST frame: nothing after it can be trusted, even
        // though the second frame is byte-for-byte intact.
        let bytes = journal_to_bytes(&sample_batches());
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 9] ^= 0xFF;
        let fsck = fsck_journal(&bad);
        assert!(!fsck.is_clean());
        assert!(fsck.header_ok);
        assert_eq!(fsck.frames_valid, 0);
        assert_eq!(fsck.valid_prefix_len, HEADER_LEN);
        assert_eq!(fsck.quarantined_bytes, bytes.len() - HEADER_LEN);
        assert!(fsck.tail_error.as_deref().unwrap().contains("crc32"));
    }

    #[test]
    fn fsck_detects_torn_tail() {
        let bytes = journal_to_bytes(&sample_batches());
        let torn = &bytes[..bytes.len() - 3];
        let fsck = fsck_journal(torn);
        assert!(!fsck.is_clean());
        assert_eq!(fsck.frames_valid, 1);
        assert!(fsck.tail_error.as_deref().unwrap().contains("torn tail"), "{fsck}");
        assert_eq!(fsck.valid_prefix_len + fsck.quarantined_bytes, torn.len());
    }

    #[test]
    fn fsck_handles_zero_length_and_garbage() {
        let fsck = fsck_journal(&[]);
        assert!(!fsck.is_clean());
        assert!(!fsck.header_ok);
        assert_eq!(fsck.tail_error.as_deref(), Some("empty file"));

        let fsck = fsck_journal(b"not a journal at all");
        assert!(!fsck.header_ok);
        assert_eq!(fsck.quarantined_bytes, 20);
        assert!(fsck.to_string().contains("header damaged"));
    }

    #[test]
    fn repair_truncates_to_trusted_prefix() {
        let batches = sample_batches();
        let bytes = journal_to_bytes(&batches);
        let torn = &bytes[..bytes.len() - 3];
        let (repaired, fsck) = repair_journal(torn);
        assert!(!fsck.is_clean());
        assert_eq!(read_journal(&repaired).unwrap(), &batches[..1]);
        // Repairing a repaired journal is a no-op.
        let (again, fsck2) = repair_journal(&repaired);
        assert!(fsck2.is_clean());
        assert_eq!(again, repaired);
    }

    #[test]
    fn repair_of_headerless_garbage_yields_empty_journal() {
        let (repaired, fsck) = repair_journal(b"junk");
        assert!(!fsck.header_ok);
        assert!(read_journal(&repaired).unwrap().is_empty());
    }

    #[test]
    fn recovering_read_salvages_prefix_but_rejects_non_journal() {
        let batches = sample_batches();
        let bytes = journal_to_bytes(&batches);
        let torn = &bytes[..bytes.len() - 1];
        let (back, fsck) = read_journal_recovering(torn).unwrap();
        assert_eq!(back, &batches[..1]);
        assert!(!fsck.is_clean());

        let (back, fsck) = read_journal_recovering(&bytes).unwrap();
        assert_eq!(back, batches);
        assert!(fsck.is_clean());

        let err = read_journal_recovering(b"not a journal").unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn append_to_file_creates_then_extends() {
        let dir = std::env::temp_dir().join(format!("spamdlt-append-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deltas.spamdlt");
        let _ = std::fs::remove_file(&path);
        let batches = sample_batches();

        let n1 = append_to_file(&path, &batches[..1]).unwrap();
        assert!(n1 > HEADER_LEN, "first append writes header + frame");
        let n2 = append_to_file(&path, &batches[1..]).unwrap();
        assert!(n2 < n1, "second append writes the frame only");
        let data = std::fs::read(&path).unwrap();
        assert_eq!(read_journal(&data).unwrap(), batches);
        // Appending nothing is durable but writes no frames.
        assert_eq!(append_to_file(&path, &[]).unwrap(), 0);

        // Refuse to append to a file that is not a journal.
        let bogus = dir.join("scores.bin");
        std::fs::write(&bogus, b"SPAMSCRS-NOT-A-JOURNAL").unwrap();
        let err = append_to_file(&bogus, &batches).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_is_recoverable() {
        // Arms the process-global failpoint registry: serialize with the
        // other registry-touching tests in this crate.
        let _serial = failpoint::test_lock();
        let dir = std::env::temp_dir().join(format!("spamdlt-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("deltas.spamdlt");
        let _ = std::fs::remove_file(&path);
        let batches = sample_batches();
        append_to_file(&path, &batches[..1]).unwrap();

        failpoint::arm("journal.append.torn", 0);
        let err = append_to_file(&path, &batches[1..]).unwrap_err();
        match &err {
            GraphError::Io(e) => assert!(failpoint::is_injected(e), "{e}"),
            other => panic!("expected injected Io error, got {other:?}"),
        }
        failpoint::disarm_all();

        // The file now has an intact first batch and a torn tail; the
        // recovering read salvages the prefix, repair truncates it, and
        // the retried append lands cleanly.
        let data = std::fs::read(&path).unwrap();
        assert!(read_journal(&data).is_err(), "torn tail must fail a strict read");
        let (salvaged, fsck) = read_journal_recovering(&data).unwrap();
        assert_eq!(salvaged, &batches[..1]);
        assert!(fsck.quarantined_bytes > 0);
        let (repaired, _) = repair_journal(&data);
        std::fs::write(&path, &repaired).unwrap();
        append_to_file(&path, &batches[1..]).unwrap();
        assert_eq!(read_journal(&std::fs::read(&path).unwrap()).unwrap(), batches);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
