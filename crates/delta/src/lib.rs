//! # spammass-delta
//!
//! Incremental graph updates for the spam-mass pipeline: the machinery
//! that lets a new crawl increment be folded into an existing estimation
//! run instead of recomputing from scratch.
//!
//! The paper's setting is a periodically re-crawled host graph. Between
//! crawls only a small fraction of links change, yet PageRank, the
//! core-biased PageRank `p′`, and the spam-mass detection of Algorithm 2
//! are all global computations. This crate provides the three pieces
//! that make re-estimation incremental:
//!
//! * [`journal`] — the append-only **`SPAMDLT`** binary journal of
//!   [`DeltaRecord`]s (edge add/remove, node add, core membership),
//!   CRC-framed per batch so a torn tail never poisons the intact prefix.
//! * [`apply`] — [`GraphDelta`], which normalizes an ordered record
//!   stream and patches a loaded CSR [`Graph`](spammass_graph::Graph)
//!   (merge-join patch for small deltas, full rebuild for large ones),
//!   reporting affected nodes and dangling-set changes.
//! * [`state`] — [`StateDir`], the saved warm-start state (graph image,
//!   checksummed **`SPAMSCRS`** score vectors, core list) published as
//!   generation-numbered snapshots behind a CRC-guarded `MANIFEST`, so a
//!   follow-up run loads to seed its solvers near the new fixed point
//!   and a crash mid-publication never leaves a half-written state.
//! * [`failpoint`] — zero-dependency fault injection threaded through
//!   every write/fsync/rename above, powering the crash-torture suite.
//!
//! Solver warm-starting itself lives in `spammass-pagerank` (the
//! `*_warm` entry points); the incremental `MassEstimator::update`
//! orchestration lives in `spammass-core`. This crate depends only on
//! the graph substrate and telemetry.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod apply;
pub mod failpoint;
pub mod fsck;
pub mod journal;
mod record;
pub mod state;

pub use apply::{ApplyReport, ApplyStrategy, GraphDelta};
pub use fsck::{check_state, repair_state, GenerationCheck, ManifestStatus, StateFsck};
pub use journal::{
    append_to_file, fsck_journal, is_journal, journal_to_bytes, read_journal,
    read_journal_recovering, read_journal_with, repair_journal, JournalFsck, JournalReport,
    JournalWriter,
};
pub use record::DeltaRecord;
pub use state::{
    manifest_from_bytes, manifest_to_bytes, scores_from_bytes, scores_to_bytes, RecoveryReport,
    SavedState, StateDir, StateError,
};
