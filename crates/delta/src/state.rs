//! Saved estimation state: crash-safe, generation-numbered snapshots.
//!
//! A **state directory** holds everything `spammass update` needs to
//! re-estimate without starting cold. Since PR 6 it is organized as
//! immutable snapshot *generations* published through a tiny
//! CRC-guarded pointer file, so a crash at any syscall boundary leaves
//! the directory loadable:
//!
//! ```text
//! state/
//!   MANIFEST       pointer to the current generation (CRC-guarded,
//!                  published via write-temp → fsync → rename)
//!   gen-0001/      a complete, self-consistent snapshot
//!     graph.bin    SPAMGRPH image of the graph the scores belong to
//!     p.bin        SPAMSCRS image of the PageRank vector p
//!     p_core.bin   SPAMSCRS image of the core-biased vector p′
//!     core.txt     good-core node ids, one per line, `#` comments
//!   gen-0002/      the next snapshot (published or in flight)
//!   quarantine/    damaged generations moved aside by `fsck --repair`
//! ```
//!
//! ## Atomic publication protocol
//!
//! [`StateDir::save`] never touches a published generation. It writes
//! the complete file set into a *fresh* `gen-N+1/` directory, fsyncs
//! every file, then publishes by writing `MANIFEST.tmp`, fsyncing it,
//! and renaming it over `MANIFEST` (rename within a directory is atomic
//! on POSIX), finally fsyncing the directory. Readers that follow the
//! manifest therefore always open a complete `{graph, scores, core}`
//! set, and a background update can build `gen-N+1` while `gen-N`
//! serves traffic — the epoch-swap primitive a long-lived server needs.
//! The previous generation is retained as a fallback; older ones are
//! pruned best-effort after publication.
//!
//! A crash mid-save leaves either (a) a partial unpublished `gen-N+1`
//! plus an intact manifest → readers keep using `gen-N`, the next save
//! clears the debris; or (b) a fully published `gen-N+1` → readers see
//! the new state. There is no interleaving where a reader observes a
//! mix. Every write/fsync/rename in the sequence passes through a
//! [`crate::failpoint`], and the crash-torture suite kills the sequence
//! at each of them to hold this invariant.
//!
//! ## Legacy layout
//!
//! Pre-PR-6 state directories stored the four files flat at the root
//! with no manifest. [`StateDir::load`] still reads that layout when no
//! `MANIFEST` is present; the first [`StateDir::save`] on such a
//! directory publishes `gen-0001` and the manifest, upgrading it in
//! place (the flat files are left behind and ignored thereafter).
//!
//! `SPAMSCRS` is the score-vector sibling of the `SPAMGRPH` image:
//! little-endian, CRC-32 checksummed, with a trailing length sentinel so
//! truncation is caught before decoding.
//!
//! ## SPAMSCRS binary layout
//!
//! ```text
//! offset    field
//! 0         magic  b"SPAMSCRS"
//! 8         version u32 LE (1)
//! 12        count u64 LE
//! 20        values: count × f64 LE
//! 20 + 8·n  crc32 u32 LE — CRC-32 (IEEE) over bytes [0, 20 + 8·n)
//! 24 + 8·n  total_len u64 LE — length of the whole image (32 + 8·n)
//! ```
//!
//! Loading cross-validates the pieces: both vectors must match the
//! graph's node count, every stored score must be finite, and core ids
//! must be in range — a state directory assembled from mismatched runs
//! fails loudly instead of warm-starting a solve from garbage.

use crate::{failpoint, journal};
use spammass_graph::crc32::crc32;
use spammass_graph::retry::retry_io;
use spammass_graph::{io, Graph, GraphError, NodeId};
use spammass_obs as obs;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

/// Magic prefix of the score-vector format.
const MAGIC: &[u8; 8] = b"SPAMSCRS";
/// Current score-vector format version.
const VERSION: u32 = 1;
/// Fixed header size (magic + version + count).
const HEADER_LEN: usize = 20;
/// Trailer: CRC-32 (4 bytes) + length sentinel (8 bytes).
const TRAILER_LEN: usize = 12;

/// First line of a manifest file.
const MANIFEST_HEADER: &str = "SPAMMANIFEST 1";

/// Published generations kept around after a save: the new one plus one
/// fallback. Anything older is pruned best-effort.
const RETAINED_GENERATIONS: u64 = 2;

fn get_u32(data: &[u8], offset: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[offset..offset + 4]);
    u32::from_le_bytes(b)
}

fn get_u64(data: &[u8], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[offset..offset + 8]);
    u64::from_le_bytes(b)
}

/// Serializes a score vector into the checksummed `SPAMSCRS` image.
pub fn scores_to_bytes(scores: &[f64]) -> Vec<u8> {
    let total = HEADER_LEN + scores.len() * 8 + TRAILER_LEN;
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(scores.len() as u64).to_le_bytes());
    for &s in scores {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    let checksum = crc32(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf.extend_from_slice(&(total as u64).to_le_bytes());
    debug_assert_eq!(buf.len(), total);
    buf
}

/// Deserializes a `SPAMSCRS` image, verifying sentinel, CRC, payload
/// length, and value finiteness before returning the vector.
pub fn scores_from_bytes(data: &[u8]) -> Result<Vec<f64>, GraphError> {
    if data.len() < HEADER_LEN + TRAILER_LEN {
        return Err(GraphError::Corrupt("score image shorter than header".into()));
    }
    if &data[..8] != MAGIC {
        return Err(GraphError::Corrupt("bad score-image magic".into()));
    }
    let version = get_u32(data, 8);
    if version != VERSION {
        return Err(GraphError::Corrupt(format!("unsupported score-image version {version}")));
    }
    let sentinel = get_u64(data, data.len() - 8);
    if sentinel != data.len() as u64 {
        return Err(GraphError::Corrupted {
            field: "length sentinel",
            expected: sentinel,
            got: data.len() as u64,
        });
    }
    let stored_crc = get_u32(data, data.len() - TRAILER_LEN);
    let computed = crc32(&data[..data.len() - TRAILER_LEN]);
    if stored_crc != computed {
        return Err(GraphError::Corrupted {
            field: "crc32",
            expected: stored_crc as u64,
            got: computed as u64,
        });
    }
    let count = get_u64(data, 12) as usize;
    let expected_payload = count
        .checked_mul(8)
        .and_then(|b| b.checked_add(HEADER_LEN))
        .ok_or_else(|| GraphError::Corrupt("score byte count overflows".into()))?;
    if data.len() - TRAILER_LEN != expected_payload {
        return Err(GraphError::Corrupted {
            field: "score payload length",
            expected: expected_payload as u64,
            got: (data.len() - TRAILER_LEN) as u64,
        });
    }
    let mut scores = Vec::with_capacity(count);
    for i in 0..count {
        let mut b = [0u8; 8];
        b.copy_from_slice(&data[HEADER_LEN + i * 8..HEADER_LEN + i * 8 + 8]);
        let v = f64::from_le_bytes(b);
        if !v.is_finite() {
            return Err(GraphError::Corrupt(format!("non-finite score {v} at index {i}")));
        }
        scores.push(v);
    }
    Ok(scores)
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failures of the crash-safe state pipeline.
///
/// Splits the *pointer* layer (manifest, generation directories) from
/// the *payload* layer (the checksummed images inside a generation,
/// which keep reporting through [`GraphError`]), so recovery tooling can
/// tell "the pointer is damaged, scan for a usable generation" apart
/// from "this generation's data is damaged, quarantine it".
#[derive(Debug)]
pub enum StateError {
    /// The `MANIFEST` file exists but is malformed or fails its CRC.
    Manifest {
        /// What was wrong with it.
        message: String,
    },
    /// The manifest points at a generation directory that is absent.
    MissingGeneration {
        /// The generation the manifest named.
        generation: u64,
    },
    /// Recovery scanned every candidate (manifest target, other
    /// generations, legacy layout) and none loaded.
    NoUsableGeneration {
        /// One line per candidate tried, with its failure.
        tried: Vec<String>,
    },
    /// A generation's payload failed to load (corrupt image, mismatched
    /// vectors, bad core file).
    Graph(GraphError),
    /// An underlying I/O failure (including injected faults).
    Io(std::io::Error),
}

impl StateError {
    fn manifest(message: impl Into<String>) -> StateError {
        StateError::Manifest { message: message.into() }
    }

    /// Whether this error describes damaged on-disk state (as opposed to
    /// a plain I/O or environment failure) — the quarantine signal.
    pub fn is_corruption(&self) -> bool {
        match self {
            StateError::Manifest { .. }
            | StateError::MissingGeneration { .. }
            | StateError::NoUsableGeneration { .. } => true,
            StateError::Graph(e) => e.is_corruption(),
            StateError::Io(_) => false,
        }
    }
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Manifest { message } => write!(f, "state manifest: {message}"),
            StateError::MissingGeneration { generation } => {
                write!(f, "state manifest points at missing generation {generation}")
            }
            StateError::NoUsableGeneration { tried } => {
                write!(f, "no usable state generation ({} candidates tried)", tried.len())?;
                for t in tried {
                    write!(f, "\n  {t}")?;
                }
                Ok(())
            }
            StateError::Graph(e) => write!(f, "{e}"),
            StateError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StateError::Graph(e) => Some(e),
            StateError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for StateError {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::Io(io) => StateError::Io(io),
            other => StateError::Graph(other),
        }
    }
}

impl From<std::io::Error> for StateError {
    fn from(e: std::io::Error) -> Self {
        StateError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// Serializes the manifest pointing at `generation`: two canonical text
/// lines plus a CRC-32 line covering them.
pub fn manifest_to_bytes(generation: u64) -> Vec<u8> {
    let body = format!("{MANIFEST_HEADER}\ngeneration {generation}\n");
    let crc = crc32(body.as_bytes());
    format!("{body}crc {crc:#010x}\n").into_bytes()
}

/// Parses and verifies a manifest image, returning the generation it
/// points at.
pub fn manifest_from_bytes(data: &[u8]) -> Result<u64, StateError> {
    let text = std::str::from_utf8(data).map_err(|_| StateError::manifest("not utf-8"))?;
    let mut lines = text.lines();
    match lines.next() {
        Some(MANIFEST_HEADER) => {}
        other => return Err(StateError::manifest(format!("bad header {other:?}"))),
    }
    let generation: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("generation "))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| StateError::manifest("missing or malformed generation line"))?;
    let stored_crc: u32 = lines
        .next()
        .and_then(|l| l.strip_prefix("crc 0x"))
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| StateError::manifest("missing or malformed crc line"))?;
    if lines.next().is_some() {
        return Err(StateError::manifest("trailing content after crc line"));
    }
    let body = format!("{MANIFEST_HEADER}\ngeneration {generation}\n");
    let computed = crc32(body.as_bytes());
    if stored_crc != computed {
        return Err(StateError::manifest(format!(
            "crc mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"
        )));
    }
    Ok(generation)
}

// ---------------------------------------------------------------------------
// Durable writes (failpointed)
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` and fsyncs, with failpoints at the syscall
/// boundaries: `{point}` before the create, `{point}.torn` mid-write
/// (half the payload lands, simulating a torn page flush), and
/// `{point}.fsync` before the sync.
fn write_durable(path: &Path, bytes: &[u8], point: &str) -> std::io::Result<()> {
    failpoint::hit(point)?;
    let mut file = retry_io(point, || fs::File::create(path))?;
    if let Err(e) = failpoint::hit(&format!("{point}.torn")) {
        let _ = file.write_all(&bytes[..bytes.len() / 2]);
        let _ = file.sync_all();
        return Err(e);
    }
    file.write_all(bytes)?;
    failpoint::hit(&format!("{point}.fsync"))?;
    retry_io(point, || file.sync_all())?;
    Ok(())
}

/// Fsyncs a directory so a just-renamed entry inside it is durable.
/// Non-Unix platforms have no stable directory-fsync story; the rename
/// itself is still atomic there.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        retry_io("state.dirsync", || fs::File::open(dir))?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// StateDir
// ---------------------------------------------------------------------------

/// A state directory on disk.
#[derive(Debug, Clone)]
pub struct StateDir {
    root: PathBuf,
}

/// Everything a warm re-estimation needs, loaded and cross-validated.
#[derive(Debug, Clone)]
pub struct SavedState {
    /// The graph the saved scores were solved on.
    pub graph: Graph,
    /// Good-core node ids (sorted, deduplicated).
    pub core: Vec<NodeId>,
    /// PageRank vector `p` (uniform jump).
    pub pagerank: Vec<f64>,
    /// Core-biased vector `p′` (good-core jump).
    pub core_pagerank: Vec<f64>,
}

/// How a [`StateDir::load_with_recovery`] call found a usable snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The generation the manifest pointed at (`None`: manifest absent
    /// or unreadable).
    pub requested: Option<u64>,
    /// The generation actually loaded (`None`: the legacy flat layout).
    pub used: Option<u64>,
    /// Whether the load deviated from the manifest's instruction — the
    /// signal that the directory needs an `fsck --repair`.
    pub recovered: bool,
    /// One line per candidate that failed along the way.
    pub errors: Vec<String>,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.recovered, self.used) {
            (false, Some(g)) => write!(f, "loaded generation {g}"),
            (false, None) => write!(f, "loaded legacy flat layout"),
            (true, Some(g)) => write!(f, "recovered: fell back to generation {g}"),
            (true, None) => write!(f, "recovered: fell back to legacy flat layout"),
        }?;
        for e in &self.errors {
            write!(f, "\n  {e}")?;
        }
        Ok(())
    }
}

impl StateDir {
    /// File holding the graph image.
    pub const GRAPH_FILE: &'static str = "graph.bin";
    /// File holding the PageRank vector.
    pub const PAGERANK_FILE: &'static str = "p.bin";
    /// File holding the core-biased vector.
    pub const CORE_PAGERANK_FILE: &'static str = "p_core.bin";
    /// File holding the good-core node ids.
    pub const CORE_FILE: &'static str = "core.txt";
    /// The published pointer to the current generation.
    pub const MANIFEST_FILE: &'static str = "MANIFEST";
    /// Scratch name the manifest is staged under before the rename.
    pub const MANIFEST_TMP_FILE: &'static str = "MANIFEST.tmp";
    /// Directory damaged generations are moved into by `fsck --repair`.
    pub const QUARANTINE_DIR: &'static str = "quarantine";

    /// Points at (not necessarily existing yet) `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        StateDir { root: root.into() }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// The directory of generation `generation`.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.root.join(format!("gen-{generation:04}"))
    }

    /// Parses a directory name of the `gen-N` form.
    pub fn parse_generation_name(name: &str) -> Option<u64> {
        name.strip_prefix("gen-")?.parse().ok()
    }

    /// Generations present on disk (published or debris), ascending.
    pub fn list_generations(&self) -> Result<Vec<u64>, StateError> {
        let mut gens = Vec::new();
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(gens),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let entry = entry?;
            if let Some(g) = entry.file_name().to_str().and_then(Self::parse_generation_name) {
                if entry.file_type()?.is_dir() {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Reads and verifies the manifest. `Ok(None)` when no manifest file
    /// exists (fresh or legacy directory); `Err` when one exists but is
    /// damaged.
    pub fn read_manifest(&self) -> Result<Option<u64>, StateError> {
        let path = self.root.join(Self::MANIFEST_FILE);
        let data = match retry_io("state.manifest.read", || fs::read(&path)) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        manifest_from_bytes(&data).map(Some)
    }

    /// Publishes `generation` as current: stages `MANIFEST.tmp`, fsyncs
    /// it, renames it over `MANIFEST`, and fsyncs the directory.
    pub fn write_manifest(&self, generation: u64) -> Result<(), StateError> {
        let tmp = self.root.join(Self::MANIFEST_TMP_FILE);
        write_durable(&tmp, &manifest_to_bytes(generation), "state.manifest.write")?;
        failpoint::hit("state.manifest.rename")?;
        retry_io("state.manifest.rename", || {
            fs::rename(&tmp, self.root.join(Self::MANIFEST_FILE))
        })?;
        failpoint::hit("state.manifest.dirsync")?;
        sync_dir(&self.root)?;
        Ok(())
    }

    /// Whether the directory holds loadable-looking state: a manifest
    /// whose generation directory has all four files, or the legacy flat
    /// file set. (Content validation happens at [`StateDir::load`].)
    pub fn is_complete(&self) -> bool {
        let files =
            [Self::GRAPH_FILE, Self::PAGERANK_FILE, Self::CORE_PAGERANK_FILE, Self::CORE_FILE];
        match self.read_manifest() {
            Ok(Some(g)) => {
                let dir = self.generation_path(g);
                files.iter().all(|f| dir.join(f).is_file())
            }
            Ok(None) => files.iter().all(|f| self.root.join(f).is_file()),
            Err(_) => false,
        }
    }

    /// Writes the full state as a fresh generation and publishes it,
    /// returning the new generation number.
    ///
    /// # Errors
    /// Rejects mismatched vector lengths before touching the filesystem.
    /// I/O failures (including injected faults) abort the sequence at
    /// the failing syscall: an unpublished partial generation may remain
    /// on disk, but the previously published generation — and the
    /// manifest pointing at it — are never disturbed.
    pub fn save(
        &self,
        graph: &Graph,
        core: &[NodeId],
        pagerank: &[f64],
        core_pagerank: &[f64],
    ) -> Result<u64, StateError> {
        let mut span = obs::span("delta.state.save");
        let n = graph.node_count();
        for (name, v) in [("p", pagerank), ("p_core", core_pagerank)] {
            if v.len() != n {
                return Err(GraphError::Corrupt(format!(
                    "{name} has {} scores for a {n}-node graph",
                    v.len()
                ))
                .into());
            }
        }
        failpoint::hit("state.create_root")?;
        retry_io("state.create_root", || fs::create_dir_all(&self.root))?;

        // Pick the next generation past everything on disk, so debris
        // from a crashed publish can never collide with a live one.
        let manifest_gen = self.read_manifest().ok().flatten();
        let next = self
            .list_generations()?
            .last()
            .copied()
            .max(manifest_gen)
            .map_or(1, |g| g.saturating_add(1));
        let dir = self.generation_path(next);
        if dir.exists() {
            failpoint::hit("state.gen.clear")?;
            retry_io("state.gen.clear", || fs::remove_dir_all(&dir))?;
        }
        failpoint::hit("state.gen.create")?;
        retry_io("state.gen.create", || fs::create_dir(&dir))?;

        write_durable(
            &dir.join(Self::GRAPH_FILE),
            &io::graph_to_bytes(graph),
            "state.write.graph",
        )?;
        write_durable(&dir.join(Self::PAGERANK_FILE), &scores_to_bytes(pagerank), "state.write.p")?;
        write_durable(
            &dir.join(Self::CORE_PAGERANK_FILE),
            &scores_to_bytes(core_pagerank),
            "state.write.p_core",
        )?;
        let mut core_txt = String::from("# good core (node ids)\n");
        for x in core {
            core_txt.push_str(&format!("{x}\n"));
        }
        write_durable(&dir.join(Self::CORE_FILE), core_txt.as_bytes(), "state.write.core")?;
        // Make the new generation's directory entries durable before the
        // manifest can name them.
        sync_dir(&dir)?;

        self.write_manifest(next)?;
        self.prune_generations(next);

        span.record("nodes", n as f64);
        span.record("core", core.len() as f64);
        span.record("generation", next as f64);
        obs::counter(obs::names::DELTA_STATE_PUBLISHED, 1.0);
        Ok(next)
    }

    /// Best-effort removal of generations older than the retention
    /// window. Failures are counted, never fatal: extra directories cost
    /// disk, not correctness, and `fsck` reports them.
    fn prune_generations(&self, current: u64) {
        let Ok(gens) = self.list_generations() else { return };
        for g in gens {
            if g + RETAINED_GENERATIONS <= current
                && fs::remove_dir_all(self.generation_path(g)).is_err()
            {
                obs::counter(obs::names::DELTA_STATE_PRUNE_FAILED, 1.0);
            }
        }
    }

    /// Loads and cross-validates the current state, strictly following
    /// the manifest (or the legacy flat layout when none exists). Any
    /// damage along that path is an error; see
    /// [`StateDir::load_with_recovery`] for the lenient variant.
    pub fn load(&self) -> Result<SavedState, StateError> {
        match self.read_manifest()? {
            Some(generation) => self.load_generation(generation),
            None => Self::load_files(&self.root),
        }
    }

    /// Loads the snapshot of a specific generation.
    pub fn load_generation(&self, generation: u64) -> Result<SavedState, StateError> {
        let dir = self.generation_path(generation);
        if !dir.is_dir() {
            return Err(StateError::MissingGeneration { generation });
        }
        Self::load_files(&dir)
    }

    /// Loads a usable snapshot even when the manifest or its target is
    /// damaged: tries the manifest's generation first, then every other
    /// generation newest-first, then the legacy flat layout. The report
    /// says what was used and what failed; `recovered` is the signal to
    /// run `spammass fsck --repair`.
    pub fn load_with_recovery(&self) -> Result<(SavedState, RecoveryReport), StateError> {
        let mut span = obs::span("delta.state.recover");
        let mut report = RecoveryReport::default();
        let requested = match self.read_manifest() {
            Ok(g) => {
                report.requested = g;
                g
            }
            Err(e) => {
                report.errors.push(format!("manifest: {e}"));
                None
            }
        };
        if let Some(g) = requested {
            match self.load_generation(g) {
                Ok(state) => {
                    report.used = Some(g);
                    span.record("generation", g as f64);
                    return Ok((state, report));
                }
                Err(e) => report.errors.push(format!("gen-{g:04}: {e}")),
            }
        }
        // The manifest path failed (or there was no manifest): scan the
        // other generations newest-first.
        let mut gens = self.list_generations().unwrap_or_default();
        gens.sort_unstable_by(|a, b| b.cmp(a));
        for g in gens {
            if Some(g) == requested {
                continue;
            }
            match self.load_generation(g) {
                Ok(state) => {
                    report.used = Some(g);
                    report.recovered = true;
                    span.record("generation", g as f64);
                    obs::counter(obs::names::DELTA_STATE_RECOVERED, 1.0);
                    return Ok((state, report));
                }
                Err(e) => report.errors.push(format!("gen-{g:04}: {e}")),
            }
        }
        // Last resort: the legacy flat layout.
        if self.root.join(Self::GRAPH_FILE).is_file() {
            match Self::load_files(&self.root) {
                Ok(state) => {
                    // Legacy-without-manifest is the normal pre-PR-6 path,
                    // not a recovery.
                    report.recovered = requested.is_some() || !report.errors.is_empty();
                    if report.recovered {
                        obs::counter(obs::names::DELTA_STATE_RECOVERED, 1.0);
                    }
                    return Ok((state, report));
                }
                Err(e) => report.errors.push(format!("legacy layout: {e}")),
            }
        }
        Err(StateError::NoUsableGeneration { tried: report.errors })
    }

    /// Loads and cross-validates the four state files inside `dir`.
    /// Crate-visible so the fsck engine can validate a generation (or a
    /// legacy flat layout) without going through the manifest.
    pub(crate) fn load_files(dir: &Path) -> Result<SavedState, StateError> {
        let mut span = obs::span("delta.state.load");
        let graph_bytes = retry_io("state.read.graph", || fs::read(dir.join(Self::GRAPH_FILE)))?;
        let graph = io::graph_from_bytes(&graph_bytes)?;
        let n = graph.node_count();
        let pagerank = scores_from_bytes(&retry_io("state.read.p", || {
            fs::read(dir.join(Self::PAGERANK_FILE))
        })?)?;
        let core_pagerank = scores_from_bytes(&retry_io("state.read.p_core", || {
            fs::read(dir.join(Self::CORE_PAGERANK_FILE))
        })?)?;
        for (name, v) in [("p", &pagerank), ("p_core", &core_pagerank)] {
            if v.len() != n {
                return Err(GraphError::Corrupt(format!(
                    "state mismatch: {name} has {} scores for a {n}-node graph",
                    v.len()
                ))
                .into());
            }
        }
        let core_file = retry_io("state.read.core", || fs::File::open(dir.join(Self::CORE_FILE)))?;
        let mut core = Vec::new();
        for (lineno, line) in BufReader::new(core_file).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let id: u32 = line.parse().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad core node id {line:?}"),
            })?;
            if id as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: id, node_count: n }.into());
            }
            core.push(NodeId(id));
        }
        core.sort_unstable();
        core.dedup();
        span.record("nodes", n as f64);
        span.record("core", core.len() as f64);
        Ok(SavedState { graph, core, pagerank, core_pagerank })
    }

    /// Blocks until the manifest names a generation newer than `after`,
    /// polling every `poll_interval` up to `timeout`. Returns the new
    /// generation number, or `Ok(None)` on timeout. `after = None`
    /// accepts the first published generation it sees — including one
    /// already on disk, so "watch from before the first save" works.
    ///
    /// This is the cheap half of the serving plane's reload loop: one
    /// small manifest read per poll, no generation payload touched until
    /// the caller decides to load. Corrupt-manifest reads are treated as
    /// "no new generation yet" rather than fatal — a watcher's job is to
    /// outlive a publisher mid-crash, and `fsck` owns the diagnosis.
    ///
    /// # Errors
    /// Only non-recoverable I/O failures (permissions, injected faults)
    /// abort the watch.
    pub fn watch_latest_generation(
        &self,
        after: Option<u64>,
        poll_interval: std::time::Duration,
        timeout: std::time::Duration,
    ) -> Result<Option<u64>, StateError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.read_manifest() {
                Ok(Some(g)) if after.is_none_or(|a| g > a) => return Ok(Some(g)),
                Ok(_) => {}
                Err(e) if e.is_corruption() => {}
                Err(e) => return Err(e),
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            std::thread::sleep(poll_interval.min(deadline.duration_since(now)));
        }
    }

    /// Reads the journal file at `path` (convenience wrapper so callers
    /// deal in one error type end to end).
    pub fn read_journal_file(
        path: &Path,
        options: &io::ReadOptions,
    ) -> Result<(Vec<Vec<crate::DeltaRecord>>, journal::JournalReport), GraphError> {
        let data = retry_io("journal.read", || fs::read(path))?;
        journal::read_journal_with(&data, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spammass-delta-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (Graph, Vec<NodeId>, Vec<f64>, Vec<f64>) {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let core = vec![NodeId(0), NodeId(2)];
        let p = vec![0.25, 0.25, 0.25, 0.25];
        let pc = vec![0.2, 0.1, 0.2, 0.1];
        (g, core, p, pc)
    }

    #[test]
    fn scores_round_trip() {
        let scores = vec![0.0, 1.5e-9, 0.25, -3.5];
        let bytes = scores_to_bytes(&scores);
        assert_eq!(scores_from_bytes(&bytes).unwrap(), scores);
        let empty = scores_to_bytes(&[]);
        assert_eq!(scores_from_bytes(&empty).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn scores_reject_every_bit_flip() {
        let clean = scores_to_bytes(&[0.125, 0.5, 0.25]);
        for i in 12..clean.len() - TRAILER_LEN {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            assert!(scores_from_bytes(&bytes).is_err(), "bit flip at byte {i} went undetected");
        }
        assert!(matches!(
            scores_from_bytes(&clean[..clean.len() - 2]),
            Err(GraphError::Corrupted { field: "length sentinel", .. })
        ));
        assert!(scores_from_bytes(b"SPAMWRNG").is_err());
    }

    #[test]
    fn scores_reject_non_finite_values() {
        let bytes = scores_to_bytes(&[0.5, f64::NAN]);
        assert!(matches!(scores_from_bytes(&bytes), Err(GraphError::Corrupt(_))));
        let bytes = scores_to_bytes(&[f64::INFINITY]);
        assert!(matches!(scores_from_bytes(&bytes), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        for g in [0u64, 1, 42, u64::MAX] {
            assert_eq!(manifest_from_bytes(&manifest_to_bytes(g)).unwrap(), g);
        }
        let clean = manifest_to_bytes(7);
        for i in 0..clean.len() - 1 {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            assert!(manifest_from_bytes(&bytes).is_err(), "bit flip at byte {i} went undetected");
        }
        assert!(matches!(
            manifest_from_bytes(b"SPAMMANIFEST 1\ngeneration 3\n"),
            Err(StateError::Manifest { .. })
        ));
        assert!(manifest_from_bytes(&[0xFF, 0xFE]).is_err());
        let mut trailing = manifest_to_bytes(3);
        trailing.extend_from_slice(b"extra\n");
        assert!(manifest_from_bytes(&trailing).is_err());
    }

    #[test]
    fn state_dir_round_trips_through_generations() {
        let dir = tmpdir("roundtrip");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        assert!(!state.is_complete());
        assert_eq!(state.save(&g, &core, &p, &pc).unwrap(), 1);
        assert!(state.is_complete());
        assert_eq!(state.read_manifest().unwrap(), Some(1));
        let loaded = state.load().unwrap();
        assert_eq!(loaded.graph.node_count(), 4);
        assert_eq!(loaded.graph.edge_count(), 4);
        assert_eq!(loaded.core, core);
        assert_eq!(loaded.pagerank, p);
        assert_eq!(loaded.core_pagerank, pc);

        // A second save publishes generation 2 without touching gen 1.
        let p2 = vec![0.1, 0.2, 0.3, 0.4];
        assert_eq!(state.save(&g, &core, &p2, &pc).unwrap(), 2);
        assert_eq!(state.load().unwrap().pagerank, p2);
        assert_eq!(state.load_generation(1).unwrap().pagerank, p);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn old_generations_are_pruned() {
        let dir = tmpdir("prune");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        for _ in 0..4 {
            state.save(&g, &core, &p, &pc).unwrap();
        }
        assert_eq!(state.list_generations().unwrap(), vec![3, 4]);
        assert_eq!(state.read_manifest().unwrap(), Some(4));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_rejects_mismatched_vectors() {
        let dir = tmpdir("mismatch-save");
        let (g, core, p, _) = sample();
        let err = StateDir::new(&dir).save(&g, &core, &p, &[0.1]).unwrap_err();
        assert!(err.to_string().contains("p_core"), "{err}");
        assert!(!dir.exists(), "save must not leave partial state behind");
    }

    #[test]
    fn load_cross_validates_the_pieces() {
        let dir = tmpdir("mismatch-load");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        let generation = state.save(&g, &core, &p, &pc).unwrap();
        let gen_dir = state.generation_path(generation);

        // Swap in a vector from a different (larger) run.
        fs::write(gen_dir.join(StateDir::PAGERANK_FILE), scores_to_bytes(&[0.1; 9])).unwrap();
        assert!(state.load().is_err());
        fs::write(gen_dir.join(StateDir::PAGERANK_FILE), scores_to_bytes(&p)).unwrap();
        assert!(state.load().is_ok());

        // Core id out of range.
        fs::write(gen_dir.join(StateDir::CORE_FILE), "99\n").unwrap();
        assert!(matches!(
            state.load(),
            Err(StateError::Graph(GraphError::NodeOutOfRange { node: 99, node_count: 4 }))
        ));
        // Garbage core line.
        fs::write(gen_dir.join(StateDir::CORE_FILE), "# ok\nbanana\n").unwrap();
        assert!(matches!(state.load(), Err(StateError::Graph(GraphError::Parse { line: 2, .. }))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_files_surface_as_io_errors() {
        let state = StateDir::new(tmpdir("missing"));
        assert!(matches!(state.load(), Err(StateError::Io(_))));
    }

    #[test]
    fn legacy_flat_layout_still_loads_and_upgrades() {
        let dir = tmpdir("legacy");
        let (g, core, p, pc) = sample();
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(StateDir::GRAPH_FILE), io::graph_to_bytes(&g)).unwrap();
        fs::write(dir.join(StateDir::PAGERANK_FILE), scores_to_bytes(&p)).unwrap();
        fs::write(dir.join(StateDir::CORE_PAGERANK_FILE), scores_to_bytes(&pc)).unwrap();
        fs::write(dir.join(StateDir::CORE_FILE), "0\n2\n").unwrap();

        let state = StateDir::new(&dir);
        assert!(state.is_complete());
        assert_eq!(state.read_manifest().unwrap(), None);
        let loaded = state.load().unwrap();
        assert_eq!(loaded.core, core);
        // Recovery on a legacy dir is not "recovery" — it is the normal path.
        let (_, report) = state.load_with_recovery().unwrap();
        assert!(!report.recovered, "{report}");

        // The first save upgrades to the generation layout.
        assert_eq!(state.save(&g, &core, &p, &pc).unwrap(), 1);
        assert_eq!(state.read_manifest().unwrap(), Some(1));
        assert!(state.generation_path(1).is_dir());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_falls_back_to_previous_generation() {
        let dir = tmpdir("fallback");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        state.save(&g, &core, &p, &pc).unwrap();
        let p2 = vec![0.4, 0.3, 0.2, 0.1];
        state.save(&g, &core, &p2, &pc).unwrap();

        // Corrupt the current generation's score file.
        let current = state.generation_path(2).join(StateDir::PAGERANK_FILE);
        let mut bytes = fs::read(&current).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&current, &bytes).unwrap();

        assert!(state.load().is_err(), "strict load must refuse the damaged generation");
        let (recovered, report) = state.load_with_recovery().unwrap();
        assert!(report.recovered, "{report}");
        assert_eq!(report.requested, Some(2));
        assert_eq!(report.used, Some(1));
        assert_eq!(recovered.pagerank, p);
        assert!(!report.errors.is_empty());

        // A save after recovery publishes past the damaged generation.
        let generation = state.save(&g, &core, &p2, &pc).unwrap();
        assert_eq!(generation, 3);
        assert_eq!(state.load().unwrap().pagerank, p2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_pointing_at_missing_generation_is_typed_and_recoverable() {
        let dir = tmpdir("missing-gen");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        state.save(&g, &core, &p, &pc).unwrap();
        // Point the manifest at a generation that does not exist.
        fs::write(dir.join(StateDir::MANIFEST_FILE), manifest_to_bytes(9)).unwrap();
        assert!(matches!(state.load(), Err(StateError::MissingGeneration { generation: 9 })));
        let (recovered, report) = state.load_with_recovery().unwrap();
        assert_eq!(report.used, Some(1));
        assert!(report.recovered);
        assert_eq!(recovered.pagerank, p);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_typed_and_recoverable() {
        let dir = tmpdir("bad-manifest");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        state.save(&g, &core, &p, &pc).unwrap();
        fs::write(dir.join(StateDir::MANIFEST_FILE), b"SPAMMANIFEST 1\ngeneration ?\n").unwrap();
        assert!(matches!(state.load(), Err(StateError::Manifest { .. })));
        assert!(!state.is_complete());
        let (recovered, report) = state.load_with_recovery().unwrap();
        assert!(report.recovered);
        assert_eq!(report.requested, None);
        assert_eq!(report.used, Some(1));
        assert_eq!(recovered.pagerank, p);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn everything_damaged_is_no_usable_generation() {
        let dir = tmpdir("hopeless");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        state.save(&g, &core, &p, &pc).unwrap();
        // Destroy the only generation's graph image and the manifest.
        fs::write(state.generation_path(1).join(StateDir::GRAPH_FILE), b"garbage").unwrap();
        fs::write(dir.join(StateDir::MANIFEST_FILE), b"garbage").unwrap();
        match state.load_with_recovery() {
            Err(StateError::NoUsableGeneration { tried }) => {
                assert!(!tried.is_empty());
            }
            other => panic!("expected NoUsableGeneration, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watcher_sees_a_mid_watch_publish() {
        use std::time::Duration;
        let dir = tmpdir("watch");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        state.save(&g, &core, &p, &pc).unwrap();

        // Already-satisfied watch returns without waiting out the timeout.
        let got = state
            .watch_latest_generation(None, Duration::from_millis(1), Duration::from_secs(5))
            .unwrap();
        assert_eq!(got, Some(1));

        // Nothing newer than 1 yet: the watch times out cleanly.
        let got = state
            .watch_latest_generation(Some(1), Duration::from_millis(1), Duration::from_millis(20))
            .unwrap();
        assert_eq!(got, None);

        // Publish generation 2 from another thread mid-watch.
        let publisher = {
            let state = state.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                state.save(&g, &core, &p, &pc).unwrap()
            })
        };
        let got = state
            .watch_latest_generation(Some(1), Duration::from_millis(2), Duration::from_secs(10))
            .unwrap();
        assert_eq!(got, Some(2));
        assert_eq!(publisher.join().unwrap(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_error_classification() {
        assert!(StateError::manifest("x").is_corruption());
        assert!(StateError::MissingGeneration { generation: 1 }.is_corruption());
        assert!(StateError::NoUsableGeneration { tried: vec![] }.is_corruption());
        assert!(StateError::Graph(GraphError::Corrupt("x".into())).is_corruption());
        let io_err: StateError = std::io::Error::other("x").into();
        assert!(!io_err.is_corruption());
        // GraphError::Io collapses into StateError::Io.
        let e: StateError =
            GraphError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")).into();
        assert!(matches!(e, StateError::Io(_)));
    }
}
