//! Saved estimation state: the warm-start inputs of an incremental run.
//!
//! A **state directory** holds everything `spammass update` needs to
//! re-estimate without starting cold:
//!
//! ```text
//! state/
//!   graph.bin    SPAMGRPH v2 image of the graph the scores belong to
//!   p.bin        SPAMSCRS image of the PageRank vector p
//!   p_core.bin   SPAMSCRS image of the core-biased vector p′
//!   core.txt     good-core node ids, one per line, `#` comments
//! ```
//!
//! `SPAMSCRS` is the score-vector sibling of the `SPAMGRPH` image:
//! little-endian, CRC-32 checksummed, with a trailing length sentinel so
//! truncation is caught before decoding.
//!
//! ## SPAMSCRS binary layout
//!
//! ```text
//! offset    field
//! 0         magic  b"SPAMSCRS"
//! 8         version u32 LE (1)
//! 12        count u64 LE
//! 20        values: count × f64 LE
//! 20 + 8·n  crc32 u32 LE — CRC-32 (IEEE) over bytes [0, 20 + 8·n)
//! 24 + 8·n  total_len u64 LE — length of the whole image (32 + 8·n)
//! ```
//!
//! Loading cross-validates the pieces: both vectors must match the
//! graph's node count, every stored score must be finite, and core ids
//! must be in range — a state directory assembled from mismatched runs
//! fails loudly instead of warm-starting a solve from garbage.

use crate::journal;
use spammass_graph::crc32::crc32;
use spammass_graph::{io, Graph, GraphError, NodeId};
use spammass_obs as obs;
use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

/// Magic prefix of the score-vector format.
const MAGIC: &[u8; 8] = b"SPAMSCRS";
/// Current score-vector format version.
const VERSION: u32 = 1;
/// Fixed header size (magic + version + count).
const HEADER_LEN: usize = 20;
/// Trailer: CRC-32 (4 bytes) + length sentinel (8 bytes).
const TRAILER_LEN: usize = 12;

fn get_u32(data: &[u8], offset: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[offset..offset + 4]);
    u32::from_le_bytes(b)
}

fn get_u64(data: &[u8], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[offset..offset + 8]);
    u64::from_le_bytes(b)
}

/// Serializes a score vector into the checksummed `SPAMSCRS` image.
pub fn scores_to_bytes(scores: &[f64]) -> Vec<u8> {
    let total = HEADER_LEN + scores.len() * 8 + TRAILER_LEN;
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(scores.len() as u64).to_le_bytes());
    for &s in scores {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    let checksum = crc32(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf.extend_from_slice(&(total as u64).to_le_bytes());
    debug_assert_eq!(buf.len(), total);
    buf
}

/// Deserializes a `SPAMSCRS` image, verifying sentinel, CRC, payload
/// length, and value finiteness before returning the vector.
pub fn scores_from_bytes(data: &[u8]) -> Result<Vec<f64>, GraphError> {
    if data.len() < HEADER_LEN + TRAILER_LEN {
        return Err(GraphError::Corrupt("score image shorter than header".into()));
    }
    if &data[..8] != MAGIC {
        return Err(GraphError::Corrupt("bad score-image magic".into()));
    }
    let version = get_u32(data, 8);
    if version != VERSION {
        return Err(GraphError::Corrupt(format!("unsupported score-image version {version}")));
    }
    let sentinel = get_u64(data, data.len() - 8);
    if sentinel != data.len() as u64 {
        return Err(GraphError::Corrupted {
            field: "length sentinel",
            expected: sentinel,
            got: data.len() as u64,
        });
    }
    let stored_crc = get_u32(data, data.len() - TRAILER_LEN);
    let computed = crc32(&data[..data.len() - TRAILER_LEN]);
    if stored_crc != computed {
        return Err(GraphError::Corrupted {
            field: "crc32",
            expected: stored_crc as u64,
            got: computed as u64,
        });
    }
    let count = get_u64(data, 12) as usize;
    let expected_payload = count
        .checked_mul(8)
        .and_then(|b| b.checked_add(HEADER_LEN))
        .ok_or_else(|| GraphError::Corrupt("score byte count overflows".into()))?;
    if data.len() - TRAILER_LEN != expected_payload {
        return Err(GraphError::Corrupted {
            field: "score payload length",
            expected: expected_payload as u64,
            got: (data.len() - TRAILER_LEN) as u64,
        });
    }
    let mut scores = Vec::with_capacity(count);
    for i in 0..count {
        let mut b = [0u8; 8];
        b.copy_from_slice(&data[HEADER_LEN + i * 8..HEADER_LEN + i * 8 + 8]);
        let v = f64::from_le_bytes(b);
        if !v.is_finite() {
            return Err(GraphError::Corrupt(format!("non-finite score {v} at index {i}")));
        }
        scores.push(v);
    }
    Ok(scores)
}

/// A state directory on disk.
#[derive(Debug, Clone)]
pub struct StateDir {
    root: PathBuf,
}

/// Everything a warm re-estimation needs, loaded and cross-validated.
#[derive(Debug, Clone)]
pub struct SavedState {
    /// The graph the saved scores were solved on.
    pub graph: Graph,
    /// Good-core node ids (sorted, deduplicated).
    pub core: Vec<NodeId>,
    /// PageRank vector `p` (uniform jump).
    pub pagerank: Vec<f64>,
    /// Core-biased vector `p′` (good-core jump).
    pub core_pagerank: Vec<f64>,
}

impl StateDir {
    /// File holding the graph image.
    pub const GRAPH_FILE: &'static str = "graph.bin";
    /// File holding the PageRank vector.
    pub const PAGERANK_FILE: &'static str = "p.bin";
    /// File holding the core-biased vector.
    pub const CORE_PAGERANK_FILE: &'static str = "p_core.bin";
    /// File holding the good-core node ids.
    pub const CORE_FILE: &'static str = "core.txt";

    /// Points at (not necessarily existing yet) `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        StateDir { root: root.into() }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Whether all four state files are present.
    pub fn is_complete(&self) -> bool {
        [Self::GRAPH_FILE, Self::PAGERANK_FILE, Self::CORE_PAGERANK_FILE, Self::CORE_FILE]
            .iter()
            .all(|f| self.root.join(f).is_file())
    }

    /// Writes the full state, creating the directory if needed.
    ///
    /// # Errors
    /// Rejects mismatched vector lengths before touching the filesystem;
    /// otherwise I/O failures surface as [`GraphError::Io`].
    pub fn save(
        &self,
        graph: &Graph,
        core: &[NodeId],
        pagerank: &[f64],
        core_pagerank: &[f64],
    ) -> Result<(), GraphError> {
        let mut span = obs::span("delta.state.save");
        let n = graph.node_count();
        for (name, v) in [("p", pagerank), ("p_core", core_pagerank)] {
            if v.len() != n {
                return Err(GraphError::Corrupt(format!(
                    "{name} has {} scores for a {n}-node graph",
                    v.len()
                )));
            }
        }
        fs::create_dir_all(&self.root)?;
        fs::write(self.root.join(Self::GRAPH_FILE), io::graph_to_bytes(graph))?;
        fs::write(self.root.join(Self::PAGERANK_FILE), scores_to_bytes(pagerank))?;
        fs::write(self.root.join(Self::CORE_PAGERANK_FILE), scores_to_bytes(core_pagerank))?;
        let mut core_txt = String::from("# good core (node ids)\n");
        for x in core {
            core_txt.push_str(&format!("{x}\n"));
        }
        fs::write(self.root.join(Self::CORE_FILE), core_txt)?;
        span.record("nodes", n as f64);
        span.record("core", core.len() as f64);
        Ok(())
    }

    /// Loads and cross-validates the full state.
    pub fn load(&self) -> Result<SavedState, GraphError> {
        let mut span = obs::span("delta.state.load");
        let graph_bytes = fs::read(self.root.join(Self::GRAPH_FILE))?;
        let graph = io::graph_from_bytes(&graph_bytes)?;
        let n = graph.node_count();
        let pagerank = scores_from_bytes(&fs::read(self.root.join(Self::PAGERANK_FILE))?)?;
        let core_pagerank =
            scores_from_bytes(&fs::read(self.root.join(Self::CORE_PAGERANK_FILE))?)?;
        for (name, v) in [("p", &pagerank), ("p_core", &core_pagerank)] {
            if v.len() != n {
                return Err(GraphError::Corrupt(format!(
                    "state mismatch: {name} has {} scores for a {n}-node graph",
                    v.len()
                )));
            }
        }
        let core_file = fs::File::open(self.root.join(Self::CORE_FILE))?;
        let mut core = Vec::new();
        for (lineno, line) in BufReader::new(core_file).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let id: u32 = line.parse().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad core node id {line:?}"),
            })?;
            if id as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: id, node_count: n });
            }
            core.push(NodeId(id));
        }
        core.sort_unstable();
        core.dedup();
        span.record("nodes", n as f64);
        span.record("core", core.len() as f64);
        Ok(SavedState { graph, core, pagerank, core_pagerank })
    }

    /// Reads the journal file at `path` (convenience wrapper so callers
    /// deal in one error type end to end).
    pub fn read_journal_file(
        path: &Path,
        options: &io::ReadOptions,
    ) -> Result<(Vec<Vec<crate::DeltaRecord>>, journal::JournalReport), GraphError> {
        let data = fs::read(path)?;
        journal::read_journal_with(&data, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spammass-delta-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (Graph, Vec<NodeId>, Vec<f64>, Vec<f64>) {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let core = vec![NodeId(0), NodeId(2)];
        let p = vec![0.25, 0.25, 0.25, 0.25];
        let pc = vec![0.2, 0.1, 0.2, 0.1];
        (g, core, p, pc)
    }

    #[test]
    fn scores_round_trip() {
        let scores = vec![0.0, 1.5e-9, 0.25, -3.5];
        let bytes = scores_to_bytes(&scores);
        assert_eq!(scores_from_bytes(&bytes).unwrap(), scores);
        let empty = scores_to_bytes(&[]);
        assert_eq!(scores_from_bytes(&empty).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn scores_reject_every_bit_flip() {
        let clean = scores_to_bytes(&[0.125, 0.5, 0.25]);
        for i in 12..clean.len() - TRAILER_LEN {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            assert!(scores_from_bytes(&bytes).is_err(), "bit flip at byte {i} went undetected");
        }
        assert!(matches!(
            scores_from_bytes(&clean[..clean.len() - 2]),
            Err(GraphError::Corrupted { field: "length sentinel", .. })
        ));
        assert!(scores_from_bytes(b"SPAMWRNG").is_err());
    }

    #[test]
    fn scores_reject_non_finite_values() {
        let bytes = scores_to_bytes(&[0.5, f64::NAN]);
        assert!(matches!(scores_from_bytes(&bytes), Err(GraphError::Corrupt(_))));
        let bytes = scores_to_bytes(&[f64::INFINITY]);
        assert!(matches!(scores_from_bytes(&bytes), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn state_dir_round_trips() {
        let dir = tmpdir("roundtrip");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        assert!(!state.is_complete());
        state.save(&g, &core, &p, &pc).unwrap();
        assert!(state.is_complete());
        let loaded = state.load().unwrap();
        assert_eq!(loaded.graph.node_count(), 4);
        assert_eq!(loaded.graph.edge_count(), 4);
        assert_eq!(loaded.core, core);
        assert_eq!(loaded.pagerank, p);
        assert_eq!(loaded.core_pagerank, pc);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_rejects_mismatched_vectors() {
        let dir = tmpdir("mismatch-save");
        let (g, core, p, _) = sample();
        let err = StateDir::new(&dir).save(&g, &core, &p, &[0.1]).unwrap_err();
        assert!(err.to_string().contains("p_core"), "{err}");
        assert!(!dir.exists(), "save must not leave partial state behind");
    }

    #[test]
    fn load_cross_validates_the_pieces() {
        let dir = tmpdir("mismatch-load");
        let (g, core, p, pc) = sample();
        let state = StateDir::new(&dir);
        state.save(&g, &core, &p, &pc).unwrap();

        // Swap in a vector from a different (larger) run.
        fs::write(dir.join(StateDir::PAGERANK_FILE), scores_to_bytes(&[0.1; 9])).unwrap();
        assert!(state.load().is_err());
        fs::write(dir.join(StateDir::PAGERANK_FILE), scores_to_bytes(&p)).unwrap();
        assert!(state.load().is_ok());

        // Core id out of range.
        fs::write(dir.join(StateDir::CORE_FILE), "99\n").unwrap();
        assert!(matches!(
            state.load(),
            Err(GraphError::NodeOutOfRange { node: 99, node_count: 4 })
        ));
        // Garbage core line.
        fs::write(dir.join(StateDir::CORE_FILE), "# ok\nbanana\n").unwrap();
        assert!(matches!(state.load(), Err(GraphError::Parse { line: 2, .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_files_surface_as_io_errors() {
        let state = StateDir::new(tmpdir("missing"));
        assert!(matches!(state.load(), Err(GraphError::Io(_))));
    }
}
