//! Applying a delta to a loaded [`Graph`].
//!
//! The CSR graph is immutable, so "mutating" it means building a
//! replacement edge set and reconstructing. Two strategies produce
//! byte-identical results (pinned by tests):
//!
//! * **Patch** — a single merge-join over the old sorted edge stream and
//!   the (sorted, normalized) add/remove sets, feeding
//!   [`Graph::from_sorted_unique_edges`] directly. `O(m + d)` with no
//!   sort; the right call when the delta is small.
//! * **Rebuild** — collect, retain, extend, re-sort. `O((m + d)·log)`
//!   but with trivially simple bookkeeping; used when the delta is a
//!   large fraction of the graph and the merge-join's branchy inner
//!   loop stops paying for itself.
//!
//! The cutover (`PATCH_FACTOR`) picks patch while the op count is below
//! `edge_count / 4`. Dangling-set maintenance goes through
//! [`recompute_out_degrees`] — the same helper CSR construction and
//! `Graph::filter_edges` use — so every path agrees on which nodes are
//! dangling (the paper's Section 2.2 treatment of leaked mass depends on
//! this set being exact).

use crate::record::DeltaRecord;
use spammass_graph::{recompute_out_degrees, Graph, NodeId, Permutation};
use spammass_obs as obs;
use std::collections::BTreeSet;

/// How [`GraphDelta::apply`] rebuilt the CSR image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyStrategy {
    /// Merge-join patch of the sorted edge stream (small deltas).
    Patch,
    /// Full collect-and-re-sort rebuild (large deltas).
    Rebuild,
}

impl ApplyStrategy {
    /// Short name used in telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            ApplyStrategy::Patch => "patch",
            ApplyStrategy::Rebuild => "rebuild",
        }
    }
}

/// Patch while `op_count * PATCH_FACTOR <= edge_count`.
const PATCH_FACTOR: usize = 4;

/// A normalized, order-resolved set of graph and core mutations.
///
/// Built from an ordered record stream ([`GraphDelta::from_records`]):
/// later records win, so `AddEdge(e)` followed by `RemoveEdge(e)` nets
/// out to a removal of `e` (if present) and the add/remove sets are
/// disjoint by construction. Self-loop adds are dropped — the paper's
/// model disallows self-links — and removes of absent edges are no-ops.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Sorted, deduplicated, self-loop-free edges to insert.
    add_edges: Vec<(u32, u32)>,
    /// Sorted, deduplicated edges to delete; disjoint from `add_edges`.
    remove_edges: Vec<(u32, u32)>,
    /// Lower bound on the post-apply node count from `AddNode` records.
    min_nodes: usize,
    /// Sorted nodes joining the good core.
    core_add: Vec<NodeId>,
    /// Sorted nodes leaving the good core; disjoint from `core_add`.
    core_remove: Vec<NodeId>,
}

impl GraphDelta {
    /// Normalizes an ordered record stream (e.g. the concatenation of a
    /// journal's batches) into disjoint add/remove sets.
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = &'a DeltaRecord>,
    {
        let mut adds: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut removes: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut core_adds: BTreeSet<NodeId> = BTreeSet::new();
        let mut core_removes: BTreeSet<NodeId> = BTreeSet::new();
        let mut min_nodes = 0usize;
        for record in records {
            match *record {
                DeltaRecord::AddEdge { from, to } => {
                    if from != to {
                        let e = (from.0, to.0);
                        removes.remove(&e);
                        adds.insert(e);
                    }
                }
                DeltaRecord::RemoveEdge { from, to } => {
                    let e = (from.0, to.0);
                    adds.remove(&e);
                    removes.insert(e);
                }
                DeltaRecord::AddNode { node } => min_nodes = min_nodes.max(node.index() + 1),
                DeltaRecord::CoreAdd { node } => {
                    core_removes.remove(&node);
                    core_adds.insert(node);
                }
                DeltaRecord::CoreRemove { node } => {
                    core_adds.remove(&node);
                    core_removes.insert(node);
                }
            }
        }
        GraphDelta {
            add_edges: adds.into_iter().collect(),
            remove_edges: removes.into_iter().collect(),
            min_nodes,
            core_add: core_adds.into_iter().collect(),
            core_remove: core_removes.into_iter().collect(),
        }
    }

    /// Edges this delta inserts (sorted, deduplicated).
    pub fn edges_to_add(&self) -> &[(u32, u32)] {
        &self.add_edges
    }

    /// Edges this delta deletes (sorted, deduplicated).
    pub fn edges_to_remove(&self) -> &[(u32, u32)] {
        &self.remove_edges
    }

    /// Nodes this delta adds to the good core (sorted).
    pub fn core_additions(&self) -> &[NodeId] {
        &self.core_add
    }

    /// Nodes this delta drops from the good core (sorted).
    pub fn core_removals(&self) -> &[NodeId] {
        &self.core_remove
    }

    /// Net edge operations (adds + removes) in the normalized delta.
    pub fn op_count(&self) -> usize {
        self.add_edges.len() + self.remove_edges.len()
    }

    /// Whether the delta changes neither the graph nor the core.
    pub fn is_empty(&self) -> bool {
        self.op_count() == 0
            && self.min_nodes == 0
            && self.core_add.is_empty()
            && self.core_remove.is_empty()
    }

    /// Translates the delta into the id space of a permuted graph.
    ///
    /// Journals are always written in **original** node ids — they must
    /// stay replayable against any layout of the same graph. When the
    /// pipeline runs on a reordered image ([`Permutation::permute_graph`]),
    /// apply the remapped delta to it instead: applying `self` to `G` and
    /// then permuting gives the same graph as permuting `G` and applying
    /// `self.remapped(perm)`. Ids at or beyond the permutation's length
    /// (nodes this delta appends) pass through unchanged, matching
    /// [`Permutation::to_new`].
    pub fn remapped(&self, perm: &Permutation) -> GraphDelta {
        let map_edge = |&(f, t): &(u32, u32)| (perm.to_new(NodeId(f)).0, perm.to_new(NodeId(t)).0);
        let mut add_edges: Vec<(u32, u32)> = self.add_edges.iter().map(map_edge).collect();
        let mut remove_edges: Vec<(u32, u32)> = self.remove_edges.iter().map(map_edge).collect();
        add_edges.sort_unstable();
        remove_edges.sort_unstable();
        GraphDelta {
            add_edges,
            remove_edges,
            min_nodes: self.min_nodes,
            core_add: perm.permute_nodes(&self.core_add),
            core_remove: perm.permute_nodes(&self.core_remove),
        }
    }

    /// Node count the patched graph must have: the old count, grown to
    /// cover `AddNode` records and every endpoint of an added edge.
    pub fn node_count_after(&self, graph: &Graph) -> usize {
        let mut n = graph.node_count().max(self.min_nodes);
        for &(f, t) in &self.add_edges {
            n = n.max(f.max(t) as usize + 1);
        }
        n
    }

    /// Applies the delta, replacing `*graph` with the patched CSR image.
    ///
    /// Removes of absent edges and adds of already-present edges are
    /// no-ops; the report counts only operations that took effect. Node
    /// ids never shrink: removing a node's last edge leaves it as an
    /// isolated (dangling) host, which still receives the random jump.
    pub fn apply(&self, graph: &mut Graph) -> ApplyReport {
        let mut span = obs::span("delta.apply");
        let nodes_before = graph.node_count();
        let nodes_after = self.node_count_after(graph);
        let strategy = if self.op_count() * PATCH_FACTOR <= graph.edge_count() {
            ApplyStrategy::Patch
        } else {
            ApplyStrategy::Rebuild
        };
        let (edges, edges_added, edges_removed) = match strategy {
            ApplyStrategy::Patch => self.patch_edges(graph),
            ApplyStrategy::Rebuild => self.rebuild_edges(graph),
        };

        // Dangling bookkeeping through the shared helper: a node is newly
        // dangling iff its recomputed out-degree hit zero (or it is a new
        // node with no out-edges) while it previously had out-links or
        // did not exist.
        let degrees = recompute_out_degrees(nodes_after, &edges);
        // Removes may reference ids the graph never had (no-ops); clamp
        // the affected set to nodes that exist after the apply.
        let mut affected: Vec<NodeId> = self
            .add_edges
            .iter()
            .chain(self.remove_edges.iter())
            .flat_map(|&(f, t)| [NodeId(f), NodeId(t)])
            .chain((nodes_before..nodes_after).map(NodeId::from_index))
            .filter(|x| x.index() < nodes_after)
            .collect();
        affected.sort_unstable();
        affected.dedup();
        let new_dangling: Vec<NodeId> = affected
            .iter()
            .copied()
            .filter(|&x| {
                degrees[x.index()] == 0 && (x.index() >= nodes_before || !graph.is_dangling(x))
            })
            .collect();

        *graph = Graph::from_sorted_unique_edges(nodes_after, &edges);

        span.record("ops", self.op_count() as f64);
        span.record("edges_added", edges_added as f64);
        span.record("edges_removed", edges_removed as f64);
        span.record("affected", affected.len() as f64);
        obs::event(
            "delta.apply.strategy",
            vec![("strategy".to_string(), obs::Json::str(strategy.name()))],
        );
        ApplyReport {
            strategy,
            nodes_before,
            nodes_after,
            edges_added,
            edges_removed,
            affected,
            new_dangling,
        }
    }

    /// Merge-join of the old sorted edge stream with the sorted add and
    /// remove sets. Returns the new sorted unique edge list plus the
    /// counts of adds and removes that actually took effect.
    fn patch_edges(&self, graph: &Graph) -> (Vec<(u32, u32)>, usize, usize) {
        let mut out = Vec::with_capacity(graph.edge_count() + self.add_edges.len());
        let mut adds = self.add_edges.iter().copied().peekable();
        let mut removes = self.remove_edges.iter().copied().peekable();
        let mut added = 0usize;
        let mut removed = 0usize;
        for (f, t) in graph.edges() {
            let e = (f.0, t.0);
            while let Some(&a) = adds.peek() {
                if a < e {
                    adds.next();
                    out.push(a);
                    added += 1;
                } else {
                    break;
                }
            }
            if adds.peek() == Some(&e) {
                adds.next(); // already present: the add is a no-op
            }
            while let Some(&r) = removes.peek() {
                if r < e {
                    removes.next(); // absent edge: the remove is a no-op
                } else {
                    break;
                }
            }
            if removes.peek() == Some(&e) {
                removes.next();
                removed += 1;
                continue; // drop the edge
            }
            out.push(e);
        }
        for a in adds {
            out.push(a);
            added += 1;
        }
        (out, added, removed)
    }

    /// Collect-and-re-sort rebuild; contract identical to
    /// [`patch_edges`](Self::patch_edges).
    fn rebuild_edges(&self, graph: &Graph) -> (Vec<(u32, u32)>, usize, usize) {
        let mut edges: Vec<(u32, u32)> = graph.edges().map(|(f, t)| (f.0, t.0)).collect();
        let before = edges.len();
        edges.retain(|e| self.remove_edges.binary_search(e).is_err());
        let removed = before - edges.len();
        let mut added = 0usize;
        for &(f, t) in &self.add_edges {
            let present = (f as usize) < graph.node_count()
                && (t as usize) < graph.node_count()
                && graph.has_edge(NodeId(f), NodeId(t));
            if !present {
                edges.push((f, t));
                added += 1;
            }
        }
        edges.sort_unstable();
        (edges, added, removed)
    }

    /// Applies the core membership changes to a sorted core node list.
    /// Returns `(added, removed)` counts of operations that took effect.
    pub fn apply_to_core(&self, core: &mut Vec<NodeId>) -> (usize, usize) {
        let mut set: BTreeSet<NodeId> = core.iter().copied().collect();
        let mut added = 0usize;
        let mut removed = 0usize;
        for &x in &self.core_add {
            if set.insert(x) {
                added += 1;
            }
        }
        for &x in &self.core_remove {
            if set.remove(&x) {
                removed += 1;
            }
        }
        *core = set.into_iter().collect();
        (added, removed)
    }
}

/// What [`GraphDelta::apply`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyReport {
    /// Strategy chosen by the size heuristic.
    pub strategy: ApplyStrategy,
    /// Node count before the apply.
    pub nodes_before: usize,
    /// Node count after the apply (never smaller).
    pub nodes_after: usize,
    /// Adds that took effect (the edge was not already present).
    pub edges_added: usize,
    /// Removes that took effect (the edge existed).
    pub edges_removed: usize,
    /// Endpoints of effective-or-not edge operations plus all new nodes,
    /// sorted and deduplicated — the support of the perturbation, useful
    /// for focused re-checking downstream.
    pub affected: Vec<NodeId>,
    /// Nodes that are dangling after the apply but were not before
    /// (includes new nodes that arrived with no out-links).
    pub new_dangling: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{journal_to_bytes, read_journal};
    use spammass_graph::GraphBuilder;

    fn add(f: u32, t: u32) -> DeltaRecord {
        DeltaRecord::AddEdge { from: NodeId(f), to: NodeId(t) }
    }

    fn remove(f: u32, t: u32) -> DeltaRecord {
        DeltaRecord::RemoveEdge { from: NodeId(f), to: NodeId(t) }
    }

    fn diamond() -> Graph {
        GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn normalization_is_order_resolved_and_disjoint() {
        let d = GraphDelta::from_records(&[
            add(0, 1),
            remove(0, 1), // later removal wins
            remove(2, 3),
            add(2, 3), // later add wins
            add(4, 4), // self-loop dropped
            DeltaRecord::CoreAdd { node: NodeId(7) },
            DeltaRecord::CoreRemove { node: NodeId(7) }, // later removal wins
        ]);
        assert_eq!(d.edges_to_add(), &[(2, 3)]);
        assert_eq!(d.edges_to_remove(), &[(0, 1)]);
        assert_eq!(d.core_additions(), &[] as &[NodeId]);
        assert_eq!(d.core_removals(), &[NodeId(7)]);
        assert!(!d.is_empty());
        assert!(GraphDelta::from_records(&[]).is_empty());
    }

    #[test]
    fn apply_adds_removes_and_grows() {
        let mut g = diamond();
        let d = GraphDelta::from_records(&[
            remove(0, 2),
            add(3, 0),
            DeltaRecord::AddNode { node: NodeId(5) },
            add(5, 3),
            remove(1, 2), // absent: no-op
            add(0, 1),    // present: no-op
        ]);
        let report = d.apply(&mut g);
        assert_eq!(report.nodes_before, 4);
        assert_eq!(report.nodes_after, 6);
        assert_eq!(report.edges_added, 2);
        assert_eq!(report.edges_removed, 1);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert!(g.has_edge(NodeId(3), NodeId(0)));
        assert!(g.has_edge(NodeId(5), NodeId(3)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        // Node 4 arrived (via AddNode 5 growing the range) with no
        // out-links: dangling.
        assert!(g.is_dangling(NodeId(4)));
        assert!(report.new_dangling.contains(&NodeId(4)));
        assert!(report.affected.contains(&NodeId(2)));
    }

    #[test]
    fn removing_last_out_edge_reports_new_dangling() {
        let mut g = diamond();
        let d = GraphDelta::from_records(&[remove(1, 3)]);
        let report = d.apply(&mut g);
        assert!(g.is_dangling(NodeId(1)));
        assert_eq!(report.new_dangling, vec![NodeId(1)]);
        // Node 3 was already dangling: not *newly* dangling.
        assert!(!report.new_dangling.contains(&NodeId(3)));
        // The applier and filter_edges agree on the dangling set.
        let filtered = diamond().filter_edges(|f, t| (f, t) != (NodeId(1), NodeId(3)));
        let a: Vec<NodeId> = g.dangling_nodes().collect();
        let b: Vec<NodeId> = filtered.dangling_nodes().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn patch_and_rebuild_agree() {
        // A mid-sized pseudo-random graph and a delta straddling present,
        // absent, and out-of-range edges: both strategies must produce
        // identical graphs and identical reports (modulo the strategy tag).
        let n = 60u32;
        let mut state = 0xDEADBEEFu64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut edges = Vec::new();
        for _ in 0..400 {
            let f = (step() % n as u64) as u32;
            let t = (step() % n as u64) as u32;
            if f != t {
                edges.push((f, t));
            }
        }
        let base = GraphBuilder::from_edges(n as usize, &edges);
        let mut records = Vec::new();
        for i in 0..120 {
            let f = (step() % (n as u64 + 8)) as u32;
            let t = (step() % (n as u64 + 8)) as u32;
            if f == t {
                continue;
            }
            records.push(if i % 3 == 0 { remove(f, t) } else { add(f, t) });
        }
        let d = GraphDelta::from_records(&records);

        let mut patched = base.clone();
        let (p_edges, p_added, p_removed) = d.patch_edges(&base);
        let (r_edges, r_added, r_removed) = d.rebuild_edges(&base);
        assert_eq!(p_edges, r_edges);
        assert_eq!((p_added, p_removed), (r_added, r_removed));

        let report = d.apply(&mut patched);
        assert_eq!(report.edges_added, p_added);
        assert_eq!(report.edges_removed, p_removed);
        assert_eq!(patched.edge_count(), p_edges.len());
        for (f, t) in &p_edges {
            assert!(patched.has_edge(NodeId(*f), NodeId(*t)));
        }
    }

    #[test]
    fn strategy_heuristic_switches_on_delta_size() {
        let mut g = diamond();
        let small = GraphDelta::from_records(&[add(3, 1)]);
        assert_eq!(small.apply(&mut g).strategy, ApplyStrategy::Patch);
        let mut g = diamond();
        let big = GraphDelta::from_records(&[add(3, 1), add(3, 2), remove(0, 1), remove(0, 2)]);
        assert_eq!(big.apply(&mut g).strategy, ApplyStrategy::Rebuild);
    }

    #[test]
    fn apply_to_core_is_a_sorted_set_update() {
        let d = GraphDelta::from_records(&[
            DeltaRecord::CoreAdd { node: NodeId(9) },
            DeltaRecord::CoreAdd { node: NodeId(1) },
            DeltaRecord::CoreRemove { node: NodeId(4) },
            DeltaRecord::CoreRemove { node: NodeId(8) }, // absent: no-op
        ]);
        let mut core = vec![NodeId(1), NodeId(4), NodeId(6)];
        let (added, removed) = d.apply_to_core(&mut core);
        assert_eq!(core, vec![NodeId(1), NodeId(6), NodeId(9)]);
        assert_eq!((added, removed), (1, 1)); // NodeId(1) was already in
    }

    #[test]
    fn journal_round_trip_reapplies_identically() {
        let records = vec![add(3, 1), remove(0, 2), DeltaRecord::AddNode { node: NodeId(6) }];
        let bytes = journal_to_bytes(std::slice::from_ref(&records));
        let back = read_journal(&bytes).unwrap();
        let direct = GraphDelta::from_records(&records);
        let via_journal = GraphDelta::from_records(back.iter().flatten());
        assert_eq!(direct, via_journal);
        let mut a = diamond();
        let mut b = diamond();
        let ra = direct.apply(&mut a);
        let rb = via_journal.apply(&mut b);
        assert_eq!(ra, rb);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    fn assert_same_graph(a: &Graph, b: &Graph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.out_offsets(), b.out_offsets());
        assert_eq!(a.out_targets(), b.out_targets());
        assert_eq!(a.in_offsets(), b.in_offsets());
        assert_eq!(a.in_sources(), b.in_sources());
    }

    #[test]
    fn remapped_apply_commutes_with_permutation() {
        use spammass_graph::NodeOrdering;
        let g = GraphBuilder::from_edges(
            8,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0)],
        );
        let d = GraphDelta::from_records(&[
            add(5, 1),
            add(2, 7),
            remove(0, 2),
            remove(3, 4),
            DeltaRecord::CoreAdd { node: NodeId(4) },
            DeltaRecord::CoreRemove { node: NodeId(1) },
        ]);
        for ordering in [NodeOrdering::DegreeDescending, NodeOrdering::BfsFromHubs] {
            let perm = Permutation::compute(&g, ordering);
            // Path A: apply in original ids, then permute the result.
            let mut patched = g.clone();
            d.apply(&mut patched);
            let a = perm.permute_graph(&patched);
            // Path B: permute first, then apply the remapped delta.
            let mut b = perm.permute_graph(&g);
            d.remapped(&perm).apply(&mut b);
            assert_same_graph(&a, &b);
            // Core edits translate the same way.
            let mut core_then_permute = vec![NodeId(1), NodeId(2)];
            d.apply_to_core(&mut core_then_permute);
            let core_then_permute = perm.permute_nodes(&core_then_permute);
            let mut permute_then_apply = perm.permute_nodes(&[NodeId(1), NodeId(2)]);
            d.remapped(&perm).apply_to_core(&mut permute_then_apply);
            assert_eq!(core_then_permute, permute_then_apply);
        }
    }

    #[test]
    fn remapped_passes_appended_nodes_through() {
        let g = diamond();
        let perm = Permutation::compute(&g, spammass_graph::NodeOrdering::DegreeDescending);
        // Edge endpoints beyond the permutation's range (nodes the delta
        // itself appends) keep their natural ids.
        let d = GraphDelta::from_records(&[add(0, 6), DeltaRecord::AddNode { node: NodeId(9) }]);
        let r = d.remapped(&perm);
        assert_eq!(r.edges_to_add(), &[(perm.to_new(NodeId(0)).0, 6)]);
        let mut patched = perm.permute_graph(&g);
        r.apply(&mut patched);
        assert_eq!(patched.node_count(), 10);
    }
}
