//! Crash-torture suite for the persistence layer.
//!
//! The atomic-publication claim in `state.rs` is an invariant over
//! *every* syscall boundary in the write sequence, so this test does not
//! hand-pick failure points: it **records** the failpoint trace of one
//! clean `save`, then replays the sequence once per recorded point with
//! that point armed to fail, asserting after each simulated crash that
//!
//! 1. the crashed `save` surfaced the injected error (no swallowing),
//! 2. `load_with_recovery` lands on a *consistent* snapshot — bit-for-bit
//!    the pre-crash state or the post-crash state, never a mix,
//! 3. `fsck --repair` (the library call under the CLI) returns the
//!    directory to full health, and
//! 4. a retried `save` then succeeds and is loadable.
//!
//! Because the trace is recorded, adding a new write to the save
//! pipeline automatically adds its failure modes to this suite.
//!
//! The registry of armed points is process-global; everything runs in
//! one `#[test]` so arming never races.

use spammass_delta::state::SavedState;
use spammass_delta::{append_to_file, failpoint, read_journal, read_journal_recovering};
use spammass_delta::{repair_journal, repair_state, DeltaRecord, StateDir};
use spammass_graph::{io, Graph, GraphBuilder, NodeId};
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// The failpoint registry is process-global: the two torture tests must
/// not interleave their arm/record sequences.
static SERIAL: Mutex<()> = Mutex::new(());

/// A comparable digest of a loaded state: serialized graph plus the
/// exact core/score vectors.
fn fingerprint(s: &SavedState) -> (Vec<u8>, Vec<NodeId>, Vec<f64>, Vec<f64>) {
    (io::graph_to_bytes(&s.graph), s.core.clone(), s.pagerank.clone(), s.core_pagerank.clone())
}

struct Scenario {
    graph: Graph,
    core: Vec<NodeId>,
    pagerank: Vec<f64>,
    core_pagerank: Vec<f64>,
}

impl Scenario {
    fn save(&self, dir: &StateDir) -> Result<u64, spammass_delta::StateError> {
        dir.save(&self.graph, &self.core, &self.pagerank, &self.core_pagerank)
    }
}

fn state_a() -> Scenario {
    Scenario {
        graph: GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
        core: vec![NodeId(0), NodeId(2)],
        pagerank: vec![0.25; 4],
        core_pagerank: vec![0.2, 0.1, 0.2, 0.1],
    }
}

fn state_b() -> Scenario {
    Scenario {
        graph: GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 0), (0, 4)]),
        core: vec![NodeId(0), NodeId(2), NodeId(4)],
        pagerank: vec![0.2; 5],
        core_pagerank: vec![0.15, 0.1, 0.15, 0.1, 0.2],
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spammass-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_failpoint_crash_leaves_a_recoverable_state() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let a = state_a();
    let b = state_b();

    // Record the failpoint trace of one clean save-over-existing-state.
    let trace = {
        let root = fresh_dir("trace");
        let dir = StateDir::new(&root);
        a.save(&dir).expect("baseline save");
        failpoint::start_recording();
        b.save(&dir).expect("recorded save");
        let trace = failpoint::stop_recording();
        fs::remove_dir_all(&root).unwrap();
        trace
    };
    // Sanity: the trace must cover the whole pipeline, or this suite is
    // silently testing nothing.
    for expected in [
        "state.create_root",
        "state.gen.create",
        "state.write.graph",
        "state.write.graph.torn",
        "state.write.graph.fsync",
        "state.write.p",
        "state.write.p_core",
        "state.write.core",
        "state.manifest.write",
        "state.manifest.write.torn",
        "state.manifest.write.fsync",
        "state.manifest.rename",
        "state.manifest.dirsync",
    ] {
        assert!(trace.iter().any(|t| t == expected), "trace missing {expected:?}: {trace:?}");
    }

    // Replay the save once per (point, occurrence), crashing there.
    let fp_a = {
        let root = fresh_dir("fpa");
        let dir = StateDir::new(&root);
        a.save(&dir).unwrap();
        let fp = fingerprint(&dir.load().unwrap());
        fs::remove_dir_all(&root).unwrap();
        fp
    };
    let fp_b = {
        let root = fresh_dir("fpb");
        let dir = StateDir::new(&root);
        b.save(&dir).unwrap();
        let fp = fingerprint(&dir.load().unwrap());
        fs::remove_dir_all(&root).unwrap();
        fp
    };

    let mut seen = std::collections::HashMap::<&str, u64>::new();
    for (i, point) in trace.iter().enumerate() {
        let occurrence = *seen.entry(point.as_str()).and_modify(|c| *c += 1).or_insert(0);

        let root = fresh_dir(&format!("pt{i}"));
        let dir = StateDir::new(&root);
        a.save(&dir).unwrap_or_else(|e| panic!("[{point}#{occurrence}] baseline save: {e}"));

        failpoint::arm(point, occurrence);
        let err = b.save(&dir).expect_err(&format!("[{point}#{occurrence}] armed save must fail"));
        failpoint::disarm_all();
        let injected = match &err {
            spammass_delta::StateError::Io(e) => failpoint::is_injected(e),
            other => panic!("[{point}#{occurrence}] expected injected Io error, got {other:?}"),
        };
        assert!(injected, "[{point}#{occurrence}] error not the injected one: {err}");

        // Invariant 2: recovery lands on exactly A or exactly B.
        let (recovered, report) = dir
            .load_with_recovery()
            .unwrap_or_else(|e| panic!("[{point}#{occurrence}] unrecoverable: {e}"));
        let fp = fingerprint(&recovered);
        assert!(
            fp == fp_a || fp == fp_b,
            "[{point}#{occurrence}] recovered state is neither pre- nor post-crash \
             (report: {report})"
        );
        // A crash before the manifest rename must preserve A; only the
        // final dirsync can leave B published.
        if point != "state.manifest.dirsync" {
            assert!(fp == fp_a, "[{point}#{occurrence}] pre-publication crash must preserve A");
        }

        // Invariant 3: fsck --repair returns the directory to health.
        let fsck = repair_state(&dir, None)
            .unwrap_or_else(|e| panic!("[{point}#{occurrence}] repair failed: {e}"));
        assert!(fsck.is_healthy(), "[{point}#{occurrence}] post-repair unhealthy:\n{fsck}");
        assert!(fsck.recoverable(), "[{point}#{occurrence}] repair lost all state:\n{fsck}");

        // Invariant 4: the pipeline keeps working after the crash.
        b.save(&dir).unwrap_or_else(|e| panic!("[{point}#{occurrence}] retry save: {e}"));
        let fp = fingerprint(&dir.load().unwrap());
        assert!(fp == fp_b, "[{point}#{occurrence}] retried save not loadable as B");

        fs::remove_dir_all(&root).unwrap();
    }
    assert!(seen.len() >= 13, "unexpectedly small failpoint coverage: {seen:?}");
}

#[test]
fn every_journal_append_crash_leaves_a_recoverable_journal() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let batch1 =
        vec![DeltaRecord::AddNode { node: NodeId(4) }, DeltaRecord::CoreAdd { node: NodeId(4) }];
    let batch2 = vec![
        DeltaRecord::AddEdge { from: NodeId(4), to: NodeId(0) },
        DeltaRecord::RemoveEdge { from: NodeId(1), to: NodeId(2) },
    ];

    // Record the append's failpoint trace the same way.
    let trace = {
        let root = fresh_dir("jtrace");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("deltas.spamdlt");
        append_to_file(&path, std::slice::from_ref(&batch1)).unwrap();
        failpoint::start_recording();
        append_to_file(&path, std::slice::from_ref(&batch2)).unwrap();
        let trace = failpoint::stop_recording();
        fs::remove_dir_all(&root).unwrap();
        trace
    };
    for expected in ["journal.append.open", "journal.append.torn", "journal.append.fsync"] {
        assert!(trace.iter().any(|t| t == expected), "trace missing {expected:?}: {trace:?}");
    }

    for (i, point) in trace.iter().enumerate() {
        let root = fresh_dir(&format!("jpt{i}"));
        fs::create_dir_all(&root).unwrap();
        let path = root.join("deltas.spamdlt");
        append_to_file(&path, std::slice::from_ref(&batch1)).unwrap();

        failpoint::arm(point, 0);
        let err = append_to_file(&path, std::slice::from_ref(&batch2))
            .expect_err(&format!("[{point}] armed append must fail"));
        failpoint::disarm_all();
        assert!(err.to_string().contains("injected"), "[{point}] {err}");

        // The recovering read must salvage a consistent prefix: batch 1
        // alone (append lost / torn) or both batches (crash after the
        // bytes landed, e.g. before the fsync returned).
        let data = fs::read(&path).unwrap();
        let (salvaged, _fsck) = read_journal_recovering(&data)
            .unwrap_or_else(|e| panic!("[{point}] journal unrecoverable: {e}"));
        assert!(
            salvaged == vec![batch1.clone()] || salvaged == vec![batch1.clone(), batch2.clone()],
            "[{point}] salvaged batches are not a consistent prefix: {salvaged:?}"
        );

        // Truncate-and-continue: repair, then the retried append lands.
        let (repaired, _) = repair_journal(&data);
        fs::write(&path, &repaired).unwrap();
        if read_journal(&repaired).unwrap().len() == 1 {
            append_to_file(&path, std::slice::from_ref(&batch2)).unwrap();
        }
        let final_batches = read_journal(&fs::read(&path).unwrap()).unwrap();
        assert_eq!(final_batches, vec![batch1.clone(), batch2.clone()], "[{point}]");

        fs::remove_dir_all(&root).unwrap();
    }
}
