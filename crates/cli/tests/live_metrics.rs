//! The PR's headline acceptance path: a 120k-host `estimate
//! --serve-metrics` run must answer `/metrics` scrapes while it runs,
//! with the per-worker profiler series present.
//!
//! Integration test on purpose: `--serve-metrics` flips the irreversible
//! process-global registry on, which must never happen inside the unit
//! test process.

use spammass_cli::args::ParsedArgs;
use spammass_cli::commands;
use spammass_obs as obs;
use spammass_obs::Json;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn parse(parts: &[&str]) -> ParsedArgs {
    ParsedArgs::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    raw.split_once("\r\n\r\n").expect("response split").1.to_string()
}

#[test]
fn estimate_answers_scrapes_mid_solve_with_worker_series() {
    let dir = std::env::temp_dir().join("spammass-cli-live-metrics");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("web.graph");
    let core = dir.join("core.txt");

    let out = commands::dispatch(&parse(&[
        "generate",
        "--hosts",
        "120000",
        "--seed",
        "7",
        "--out",
        graph.to_str().unwrap(),
        "--core",
        core.to_str().unwrap(),
    ]))
    .expect("generate 120k hosts");
    assert!(out.contains("graph written"), "{out}");

    // `--edges-per-thread 1` defeats the edge quota so the pool widens to
    // two real workers even on a small CI host; `--serve-linger` keeps
    // the server up after the solve so a slow scraper can't lose the
    // race outright (mid-solve scraping is still exercised below — the
    // scrape loop starts as soon as the socket binds, long before a
    // 120k-host estimate finishes).
    let solver = std::thread::spawn({
        let graph = graph.clone();
        let core = core.clone();
        move || {
            commands::dispatch(&parse(&[
                "estimate",
                "--graph",
                graph.to_str().unwrap(),
                "--core",
                core.to_str().unwrap(),
                "--threads",
                "2",
                "--edges-per-thread",
                "1",
                "--serve-metrics",
                "127.0.0.1:0",
                "--serve-linger",
                "3000",
            ]))
        }
    });

    // The server binds before the command body runs; discover the
    // ephemeral port through the in-process advertisement.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Some(addr) = obs::export::serving_addr() {
            break addr;
        }
        assert!(Instant::now() < deadline, "metrics server never came up");
        std::thread::sleep(Duration::from_millis(10));
    };

    // Scrape until the profiler series show up (they appear within the
    // first few sweeps); every iteration is a real mid-run scrape.
    let mut body = String::new();
    let mut scrapes = 0u32;
    while Instant::now() < deadline {
        body = http_get(addr, "/metrics");
        scrapes += 1;
        if body.contains("spammass_pagerank_worker_1_gather_ns") {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(scrapes >= 1);
    for series in [
        "spammass_pagerank_worker_0_gather_ns",
        "spammass_pagerank_worker_1_gather_ns",
        "spammass_pagerank_worker_0_barrier_wait_ns",
        "spammass_pagerank_worker_1_barrier_wait_ns",
        "spammass_pagerank_pool_sweeps",
        "spammass_pagerank_partition_imbalance",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }
    assert!(body.contains("spammass_pagerank_pool_threads 2.0"), "{body}");

    // The JSON twin carries the same series under the schema tag.
    let snapshot = http_get(addr, "/snapshot");
    let doc = Json::parse(&snapshot).expect("snapshot parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("spammass.metrics_snapshot/v1"));
    let metrics = doc.get("metrics").expect("metrics object");
    assert_eq!(
        metrics
            .get("pagerank.worker.0.gather_ns")
            .and_then(|m| m.get("kind"))
            .and_then(Json::as_str),
        Some("histogram")
    );
    assert_eq!(
        metrics
            .get("pagerank.worker.1.edges_per_s")
            .and_then(|m| m.get("kind"))
            .and_then(Json::as_str),
        Some("gauge")
    );

    let report = solver.join().expect("solver thread").expect("estimate succeeds");
    assert!(report.contains("core:"), "{report}");
}
