//! End-to-end telemetry: a full `estimate` run under `--trace json
//! --metrics-out` must produce a run report that round-trips through the
//! JSON layer, carries the documented sections, and agrees with an
//! independent in-memory recorder of the same pipeline.

use spammass_cli::args::ParsedArgs;
use spammass_cli::commands::dispatch;
use spammass_graph::{io, GraphBuilder};
use spammass_obs as obs;
use spammass_obs::{Json, RunReport, SpanNode};
use std::fs;
use std::path::PathBuf;

/// Fixture: a star spam farm (1..=12 -> 0, backlinked) plus a good pair
/// with node 14 in the core — small enough to solve instantly, rich
/// enough to exercise ingest, both PageRank runs, and mass estimation.
fn fixture() -> (PathBuf, PathBuf) {
    let mut edges: Vec<(u32, u32)> = (1..=12).flat_map(|i| [(i, 0), (0, i)]).collect();
    edges.push((13, 14));
    edges.push((14, 13));
    let g = GraphBuilder::from_edges(15, &edges);
    let dir = std::env::temp_dir().join("spammass-cli-run-report");
    fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.bin");
    fs::write(&graph, io::graph_to_bytes(&g)).unwrap();
    let core = dir.join("core.txt");
    fs::write(&core, "14\n").unwrap();
    (graph, core)
}

fn parse(args: &[String]) -> ParsedArgs {
    ParsedArgs::parse(args).unwrap()
}

fn walk(nodes: &[SpanNode], f: &mut impl FnMut(&SpanNode)) {
    for node in nodes {
        f(node);
        walk(&node.children, f);
    }
}

#[test]
fn estimate_run_report_round_trips_with_required_sections() {
    let (graph, core) = fixture();
    let out = std::env::temp_dir().join("spammass-cli-run-report/report.json");
    let argv: Vec<String> = [
        "estimate",
        "--graph",
        graph.to_str().unwrap(),
        "--core",
        core.to_str().unwrap(),
        "--trace",
        "json",
        "--metrics-out",
        out.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let text = dispatch(&parse(&argv)).unwrap();

    // The human-readable summary still leads the output; the JSON-lines
    // trace follows and every line parses.
    assert!(text.contains("core: 1 hosts"), "{text}");
    let json_lines: Vec<&str> = text.lines().filter(|l| l.starts_with('{')).collect();
    assert!(!json_lines.is_empty(), "no trace events in {text}");
    for line in &json_lines {
        Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }

    // The metrics file round-trips and validates against the schema.
    let raw = fs::read_to_string(&out).unwrap();
    let doc = Json::parse(&raw).unwrap();
    RunReport::validate(&doc).unwrap();
    for key in RunReport::REQUIRED_KEYS {
        assert!(doc.get(key).is_some(), "missing {key}");
    }
    assert_eq!(doc.get("command").and_then(Json::as_str), Some("estimate"));

    // Ingest counters, per-stage timings, and mass-distribution stats all
    // made it into the document.
    let metrics = doc.get("metrics").unwrap();
    let edge_counter = metrics.get("graph.ingest.edges").unwrap();
    assert_eq!(edge_counter.get("kind").and_then(Json::as_str), Some("counter"));
    assert_eq!(edge_counter.get("value").and_then(Json::as_f64), Some(26.0));
    assert!(metrics.get("pagerank.residual").is_some(), "residual histogram missing");
    assert!(metrics.get("estimate.relative_mass").is_some(), "mass histogram missing");
    let stages = doc.get("stages").and_then(Json::as_arr).unwrap();
    let mut paths = Vec::new();
    for stage in stages {
        collect_paths(stage, &mut paths);
    }
    for expected in ["graph.ingest.binary", "estimate", "estimate.pagerank_batch"] {
        assert!(paths.iter().any(|p| p == expected), "no stage {expected} in {paths:?}");
    }

    // Scalar metrics surface as headline results.
    let results = doc.get("results").unwrap();
    let anomalies = results.get("estimate.anomalies").and_then(Json::as_f64).unwrap();
    assert!(anomalies >= 0.0, "anomaly count is a count: {anomalies}");
    assert!(results.get("estimate.coverage_ratio").and_then(Json::as_f64).is_some());
}

fn collect_paths(stage: &Json, out: &mut Vec<String>) {
    if let Some(p) = stage.get("path").and_then(Json::as_str) {
        out.push(p.to_string());
    }
    if let Some(children) = stage.get("children").and_then(Json::as_arr) {
        for child in children {
            collect_paths(child, out);
        }
    }
}

#[test]
fn recorder_agrees_and_span_totals_cover_their_children() {
    let (graph, core) = fixture();
    let argv: Vec<String> =
        ["estimate", "--graph", graph.to_str().unwrap(), "--core", core.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let args = parse(&argv);

    // Run the same pipeline under a recorder we control.
    let recorder = std::sync::Arc::new(obs::Recorder::new());
    let collector = obs::Collector::builder().sink(recorder.clone()).build();
    {
        let _guard = collector.install();
        dispatch(&args).unwrap();
    }
    let report = RunReport::build("estimate", &collector, &recorder);

    // A parent span's wall clock must cover the sum of its children.
    let mut checked = 0;
    walk(&report.stages, &mut |node| {
        if !node.children.is_empty() {
            checked += 1;
            assert!(
                node.record.elapsed_ns >= node.children_elapsed_ns(),
                "{}: parent {}ns < children {}ns",
                node.record.path,
                node.record.elapsed_ns,
                node.children_elapsed_ns()
            );
        }
    });
    assert!(checked >= 2, "expected nested stages, got {checked} parents");

    // The report's stage forest is exactly the recorder's span tree.
    let tree = recorder.span_tree();
    assert_eq!(report.stages.len(), tree.len());
    let (mut report_paths, mut recorder_paths) = (Vec::new(), Vec::new());
    walk(&report.stages, &mut |n| report_paths.push(n.record.path.clone()));
    walk(&tree, &mut |n| recorder_paths.push(n.record.path.clone()));
    assert_eq!(report_paths, recorder_paths);

    // And the report's metrics are the collector's registry, verbatim.
    assert_eq!(report.metrics.len(), collector.metrics_snapshot().len());
}

#[test]
fn default_output_is_byte_identical_without_telemetry_flags() {
    let (graph, core) = fixture();
    let argv: Vec<String> =
        ["estimate", "--graph", graph.to_str().unwrap(), "--core", core.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let plain = dispatch(&parse(&argv)).unwrap();

    let mut traced_argv = argv.clone();
    traced_argv.extend(["--trace".to_string(), "pretty".to_string()]);
    let traced = dispatch(&parse(&traced_argv)).unwrap();

    assert!(traced.starts_with(&plain), "telemetry must only append");
    assert!(traced.len() > plain.len(), "pretty trace should add the span tree");
    assert!(traced[plain.len()..].contains("estimate"), "span tree names stages");

    // Second plain run: identical bytes (no hidden telemetry state).
    assert_eq!(dispatch(&parse(&argv)).unwrap(), plain);
}
