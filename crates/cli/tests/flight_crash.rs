//! Acceptance pin for the flight recorder's crash path: arming a
//! failpoint in panic mode kills an `estimate --state` run, and the
//! resulting `metrics-crash.json` names the failpoint site as the last
//! thing that happened before the panic.
//!
//! Runs as its own process (integration test): the crash hook and the
//! global registry/recorder are irreversible once installed.

use spammass_cli::args::ParsedArgs;
use spammass_cli::commands;
use spammass_obs::Json;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn parse(parts: &[&str]) -> ParsedArgs {
    ParsedArgs::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

#[test]
fn armed_panic_failpoint_writes_a_flight_dump_naming_the_site() {
    let dir = std::env::temp_dir().join("spammass-cli-flight-crash");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("web.graph");
    let core = dir.join("core.txt");
    let dump = dir.join("metrics-crash.json");

    commands::dispatch(&parse(&[
        "generate",
        "--hosts",
        "2000",
        "--seed",
        "11",
        "--out",
        graph.to_str().unwrap(),
        "--core",
        core.to_str().unwrap(),
    ]))
    .expect("generate");

    // Panic on the first manifest rename — the same site the crash-safety
    // suite kills with error-mode injection, now as a hard process death.
    spammass_delta::failpoint::arm_panic("state.manifest.rename", 0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        commands::dispatch(&parse(&[
            "estimate",
            "--graph",
            graph.to_str().unwrap(),
            "--core",
            core.to_str().unwrap(),
            "--state",
            dir.join("state").to_str().unwrap(),
            "--crash-dump",
            dump.to_str().unwrap(),
        ]))
    }));
    assert!(result.is_err(), "the armed failpoint must panic the run");

    let text = std::fs::read_to_string(&dump).expect("panic hook wrote the crash dump");
    let doc = Json::parse(&text).expect("dump parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("spammass.flight/v1"));

    let message =
        doc.get("panic").and_then(|p| p.get("message")).and_then(Json::as_str).expect("panic info");
    assert!(message.contains("injected fault"), "{message}");
    assert!(message.contains("state.manifest.rename"), "{message}");

    // The ring's tail reads: the failpoint trip, then the panic it
    // caused — nothing in between.
    let events = doc.get("events").and_then(Json::as_arr).expect("events");
    assert!(events.len() >= 2, "ring too short: {text}");
    let kind = |e: &Json| e.get("kind").and_then(Json::as_str).unwrap_or("").to_string();
    let name = |e: &Json| e.get("name").and_then(Json::as_str).unwrap_or("").to_string();
    let last = &events[events.len() - 1];
    let prev = &events[events.len() - 2];
    assert_eq!(kind(last), "panic", "{text}");
    assert_eq!(kind(prev), "failpoint", "{text}");
    assert_eq!(name(prev), "state.manifest.rename", "{text}");
    assert_eq!(prev.get("action").and_then(Json::as_str), Some("panic"), "{text}");

    // Earlier ring entries show the run that led up to the crash (the
    // solver's sizing event fires before any state is saved).
    assert!(
        events.iter().any(|e| name(e) == "pagerank.pool.sizing"),
        "no solve context in the ring: {text}"
    );

    // The registry was live (--crash-dump turns the plane on), so the
    // dump embeds a final metrics snapshot.
    assert_eq!(
        doc.get("metrics").and_then(|m| m.get("schema")).and_then(Json::as_str),
        Some("spammass.metrics_snapshot/v1")
    );

    // The state directory was mid-publish when the process died; the
    // repair path must see a recoverable layout, not a corrupt one.
    assert!(dir.join("state").exists());
}
