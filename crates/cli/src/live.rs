//! `--serve-metrics` / `--crash-dump` wiring: the live observability
//! plane shared by the long-running subcommands.
//!
//! Unlike `--trace` / `--metrics-out` (post-mortem, per-run), the live
//! plane answers questions **while the command runs**: it enables the
//! process-global [`spammass_obs::registry`] and flight recorder,
//! installs the panic crash hook, and (with `--serve-metrics ADDR`)
//! starts the HTTP exposition server so `curl ADDR/metrics` works
//! mid-solve. Enabling the globals is irreversible for the process,
//! which is fine for a CLI run that exits when the command does.
//!
//! `--serve-linger MS` keeps the server (and process) alive for `MS`
//! milliseconds after the command finishes, so scripted scrapes never
//! race a fast solve to the socket.

use crate::args::ParsedArgs;
use crate::CliError;
use spammass_obs as obs;
use std::path::PathBuf;

/// Default crash-dump path when the live plane is on and `--crash-dump`
/// is not given.
pub const DEFAULT_CRASH_DUMP: &str = "metrics-crash.json";

/// The live plane of one CLI invocation: an optional exposition server
/// plus the linger the command line asked for.
pub struct LivePlane {
    server: Option<obs::MetricsServer>,
    linger_ms: u64,
}

impl LivePlane {
    /// Builds the live plane from `--serve-metrics` / `--serve-linger` /
    /// `--crash-dump`; `None` when none of them are present (the
    /// process-global registry then stays off and default output is
    /// untouched).
    pub fn from_args(args: &ParsedArgs) -> Result<Option<LivePlane>, CliError> {
        let serve = args.optional("serve-metrics");
        let crash_dump = args.optional("crash-dump");
        let linger_ms: u64 = args.parsed_or("serve-linger", 0)?;
        if serve.is_none() && crash_dump.is_none() {
            if args.optional("serve-linger").is_some() {
                return Err(CliError::Usage(
                    "--serve-linger needs --serve-metrics or --crash-dump".into(),
                ));
            }
            return Ok(None);
        }
        obs::registry::enable_global();
        let dump_path = crash_dump.map_or_else(|| PathBuf::from(DEFAULT_CRASH_DUMP), PathBuf::from);
        obs::flight::install_crash_hook(dump_path);
        let server = match serve {
            None => None,
            Some(addr) => {
                let server = obs::MetricsServer::start(addr).map_err(|e| {
                    CliError::Usage(format!("--serve-metrics {addr:?}: cannot bind ({e})"))
                })?;
                // Stderr, not the report text: scripts parse stdout.
                eprintln!("serving metrics on http://{}/metrics", server.local_addr());
                Some(server)
            }
        };
        Ok(Some(LivePlane { server, linger_ms }))
    }

    /// Lingers if asked to, then shuts the server down. Call after the
    /// command finishes (on success or failure).
    pub fn finish(self) {
        if self.server.is_some() && self.linger_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.linger_ms));
        }
        drop(self.server);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ParsedArgs {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&v).unwrap()
    }

    #[test]
    fn absent_flags_mean_no_live_plane() {
        // Must not enable the irreversible process globals.
        let args = parse(&["stats", "--graph", "g.bin"]);
        assert!(LivePlane::from_args(&args).unwrap().is_none());
        assert!(!obs::registry::is_live());
        assert!(!obs::flight::is_enabled());
    }

    #[test]
    fn linger_without_a_target_is_a_usage_error() {
        let args = parse(&["stats", "--graph", "g.bin", "--serve-linger", "50"]);
        assert!(matches!(LivePlane::from_args(&args), Err(CliError::Usage(_))));
        assert!(!obs::registry::is_live());
    }

    #[test]
    fn bad_linger_value_is_a_usage_error() {
        let args = parse(&["stats", "--graph", "g.bin", "--serve-linger", "soon"]);
        assert!(matches!(LivePlane::from_args(&args), Err(CliError::Usage(_))));
    }

    // Paths that enable the global registry / flight recorder live in
    // tests/live_metrics.rs and tests/flight_crash.rs, which run as
    // separate processes.
}
