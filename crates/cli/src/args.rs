//! Minimal flag parser (`--key value` pairs plus positional subcommand).

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed command line: the subcommand plus its `--flag value` options.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parses `args` (without the program name).
    pub fn parse(args: &[String]) -> Result<ParsedArgs, CliError> {
        let mut it = args.iter();
        let command =
            it.next().ok_or_else(|| CliError::Usage("no subcommand given".into()))?.clone();
        if command.starts_with("--") {
            return Err(CliError::Usage(format!("expected a subcommand before {command}")));
        }
        let mut flags = BTreeMap::new();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected positional argument {flag:?}")));
            };
            let value =
                it.next().ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
            if flags.insert(name.to_string(), value.clone()).is_some() {
                return Err(CliError::Usage(format!("--{name} given twice")));
            }
        }
        Ok(ParsedArgs { command, flags })
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// An optional flag parsed into `T`, with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError::Usage(format!("--{name}: cannot parse {v:?}")))
            }
        }
    }

    /// Iterates over `(flag, value)` pairs in name order.
    pub fn flags(&self) -> impl Iterator<Item = (&str, &str)> {
        self.flags.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Rejects flags outside the allowed set (typo protection).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), CliError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(CliError::Usage(format!(
                    "unknown flag --{k} for `{}` (allowed: {})",
                    self.command,
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&v)
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["detect", "--graph", "g.bin", "--tau", "0.9"]).unwrap();
        assert_eq!(a.command, "detect");
        assert_eq!(a.required("graph").unwrap(), "g.bin");
        assert_eq!(a.parsed_or("tau", 0.5f64).unwrap(), 0.9);
        assert_eq!(a.parsed_or("rho", 10.0f64).unwrap(), 10.0);
        assert_eq!(a.optional("labels"), None);
    }

    #[test]
    fn rejects_missing_subcommand_and_values() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--graph", "x"]).is_err());
        assert!(parse(&["stats", "--graph"]).is_err());
        assert!(parse(&["stats", "stray"]).is_err());
        assert!(parse(&["stats", "--g", "a", "--g", "b"]).is_err());
    }

    #[test]
    fn required_and_parse_errors() {
        let a = parse(&["estimate", "--gamma", "nope"]).unwrap();
        assert!(a.required("core").is_err());
        assert!(a.parsed_or("gamma", 0.85f64).is_err());
    }

    #[test]
    fn expect_only_catches_typos() {
        let a = parse(&["stats", "--grpah", "x"]).unwrap();
        assert!(a.expect_only(&["graph"]).is_err());
        let b = parse(&["stats", "--graph", "x"]).unwrap();
        assert!(b.expect_only(&["graph"]).is_ok());
    }
}
