//! The `spammass` binary.

use spammass_cli::args::ParsedArgs;
use spammass_cli::{commands, CliError, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        eprint!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let parsed = match ParsedArgs::parse(&argv) {
        Ok(p) => p,
        Err(e) => return fail(e),
    };
    match commands::dispatch(&parsed) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn fail(e: CliError) -> ExitCode {
    eprintln!("error: {e}");
    if matches!(e, CliError::Usage(_)) {
        eprint!("{USAGE}");
    }
    ExitCode::FAILURE
}
