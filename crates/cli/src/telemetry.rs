//! `--trace` / `--metrics-out` wiring shared by every subcommand.
//!
//! Telemetry is strictly opt-in: when neither flag is given no collector
//! is installed, every `span!`/counter call in the libraries stays a
//! no-op, and the command output is byte-identical to a build without
//! this module. With either flag present, one in-memory [`Recorder`]
//! captures the run and is rendered two ways at the end:
//!
//! * `--trace pretty` appends the indented span timing tree to the
//!   command's output; `--trace json` appends one JSON object per
//!   telemetry event (JSON-lines).
//! * `--metrics-out FILE` writes the full [`RunReport`] document
//!   (schema `spammass.run_report/v1`) to `FILE`.
//!
//! [`Recorder`]: spammass_obs::Recorder
//! [`RunReport`]: spammass_obs::RunReport

use crate::args::ParsedArgs;
use crate::CliError;
use spammass_obs as obs;
use std::path::PathBuf;
use std::sync::Arc;

/// How `--trace` renders the captured run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Indented span tree with wall-clock timings and counters.
    Pretty,
    /// One JSON object per telemetry event (JSON-lines).
    Json,
}

/// Telemetry for one CLI invocation: an installed collector feeding an
/// in-memory recorder, plus the output destinations chosen on the
/// command line.
pub struct RunTelemetry {
    collector: obs::Collector,
    recorder: Arc<obs::Recorder>,
    trace: Option<TraceMode>,
    metrics_out: Option<PathBuf>,
}

impl RunTelemetry {
    /// Builds telemetry from `--trace` / `--metrics-out`; `None` when
    /// neither flag is present (default output stays byte-identical).
    pub fn from_args(args: &ParsedArgs) -> Result<Option<RunTelemetry>, CliError> {
        let trace = match args.optional("trace") {
            None => None,
            Some("pretty") => Some(TraceMode::Pretty),
            Some("json") => Some(TraceMode::Json),
            Some(other) => {
                return Err(CliError::Usage(format!("--trace {other:?} (expected pretty or json)")))
            }
        };
        let metrics_out = args.optional("metrics-out").map(PathBuf::from);
        if trace.is_none() && metrics_out.is_none() {
            return Ok(None);
        }
        let recorder = Arc::new(obs::Recorder::new());
        let collector = obs::Collector::builder().sink(recorder.clone()).build();
        Ok(Some(RunTelemetry { collector, recorder, trace, metrics_out }))
    }

    /// Installs the collector on this thread; telemetry is captured
    /// until the guard drops.
    #[must_use = "telemetry is only captured while the guard is alive"]
    pub fn install(&self) -> obs::ScopeGuard {
        self.collector.install()
    }

    /// Builds the run report. Call after the install guard has dropped,
    /// so every span has closed.
    pub fn report(&self, args: &ParsedArgs) -> obs::RunReport {
        let mut report = obs::RunReport::build(&args.command, &self.collector, &self.recorder);
        for (key, value) in args.flags() {
            report = report.param(key, obs::Json::str(value));
        }
        // Headline results: every scalar metric (counters and gauges);
        // histograms stay in the metrics section.
        for (name, metric) in self.collector.metrics_snapshot() {
            if metric.kind() != "histogram" {
                report = report.result(&name, metric.to_json());
            }
        }
        report
    }

    /// Writes `--metrics-out` and appends the `--trace` rendering to the
    /// command's report text.
    pub fn finish(&self, args: &ParsedArgs, mut text: String) -> Result<String, CliError> {
        let report = self.report(args);
        if let Some(path) = &self.metrics_out {
            let mut doc = report.render();
            doc.push('\n');
            std::fs::write(path, doc)?;
        }
        match self.trace {
            None => {}
            Some(TraceMode::Pretty) => {
                text.push_str(&self.recorder.render_tree());
            }
            Some(TraceMode::Json) => {
                for event in self.recorder.events() {
                    text.push_str(&event.to_json().render());
                    text.push('\n');
                }
            }
        }
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ParsedArgs {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&v).unwrap()
    }

    #[test]
    fn absent_flags_mean_no_telemetry() {
        let args = parse(&["stats", "--graph", "g.bin"]);
        assert!(RunTelemetry::from_args(&args).unwrap().is_none());
    }

    #[test]
    fn bad_trace_mode_is_usage_error() {
        let args = parse(&["stats", "--graph", "g.bin", "--trace", "xml"]);
        assert!(matches!(RunTelemetry::from_args(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn pretty_trace_appends_span_tree() {
        let args = parse(&["stats", "--graph", "g.bin", "--trace", "pretty"]);
        let tel = RunTelemetry::from_args(&args).unwrap().unwrap();
        {
            let _guard = tel.install();
            let _span = obs::span("demo.stage");
        }
        let out = tel.finish(&args, String::from("report\n")).unwrap();
        assert!(out.starts_with("report\n"), "{out}");
        assert!(out.contains("demo.stage"), "{out}");
    }

    #[test]
    fn json_trace_appends_parseable_events_and_report_validates() {
        let args = parse(&["stats", "--graph", "g.bin", "--trace", "json"]);
        let tel = RunTelemetry::from_args(&args).unwrap().unwrap();
        {
            let _guard = tel.install();
            let _span = obs::span("demo.stage");
            obs::counter("demo.count", 2.0);
        }
        let out = tel.finish(&args, String::new()).unwrap();
        for line in out.lines() {
            obs::Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let doc = tel.report(&args).to_json();
        obs::RunReport::validate(&doc).unwrap();
        // The scalar metric surfaces as a headline result.
        assert_eq!(
            doc.get("results").unwrap().get("demo.count").and_then(obs::Json::as_f64),
            Some(2.0)
        );
        // Flags land in params.
        assert_eq!(
            doc.get("params").unwrap().get("graph").and_then(obs::Json::as_str),
            Some("g.bin")
        );
    }

    #[test]
    fn metrics_out_writes_a_valid_report() {
        let dir = std::env::temp_dir().join("spammass-cli-telemetry");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let path_s = path.to_str().unwrap();
        let args = parse(&["stats", "--graph", "g.bin", "--metrics-out", path_s]);
        let tel = RunTelemetry::from_args(&args).unwrap().unwrap();
        {
            let _guard = tel.install();
            let _span = obs::span("demo.stage");
        }
        // No --trace: the command text passes through untouched.
        let out = tel.finish(&args, String::from("report\n")).unwrap();
        assert_eq!(out, "report\n");
        let doc = obs::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        obs::RunReport::validate(&doc).unwrap();
    }
}
