//! File loading helpers: auto-detected graph formats, label tables, and
//! core lists.

use crate::CliError;
use spammass_graph::{io, Graph, NodeId, NodeLabels};
use std::fs;
use std::path::Path;

/// Loads a graph, auto-detecting the binary image (magic `SPAMGRPH`)
/// versus text edge-list format.
pub fn load_graph(path: &Path) -> Result<Graph, CliError> {
    let data = fs::read(path)?;
    if data.starts_with(b"SPAMGRPH") {
        Ok(io::graph_from_bytes(&data)?)
    } else {
        Ok(io::read_edge_list(&data[..])?)
    }
}

/// Loads a label table (one host per line; line number = node id).
pub fn load_labels(path: &Path) -> Result<NodeLabels, CliError> {
    let file = fs::File::open(path)?;
    Ok(io::read_labels(file)?)
}

/// Loads a core file: one entry per line, `#` comments allowed; entries
/// are node ids, or host names when `labels` is available.
pub fn load_core(
    path: &Path,
    labels: Option<&NodeLabels>,
    node_count: usize,
) -> Result<Vec<NodeId>, CliError> {
    let text = fs::read_to_string(path)?;
    let mut core = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let entry = line.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        let node = if let Ok(id) = entry.parse::<u32>() {
            NodeId(id)
        } else if let Some(labels) = labels {
            labels.id(entry).ok_or_else(|| {
                CliError::Format(format!("line {}: unknown host {entry:?}", lineno + 1))
            })?
        } else {
            return Err(CliError::Format(format!(
                "line {}: {entry:?} is not a node id and no --labels file was given",
                lineno + 1
            )));
        };
        if node.index() >= node_count {
            return Err(CliError::Format(format!(
                "line {}: node {node} out of range for {node_count}-node graph",
                lineno + 1
            )));
        }
        core.push(node);
    }
    if core.is_empty() {
        return Err(CliError::Format("core file contains no entries".into()));
    }
    core.sort_unstable();
    core.dedup();
    Ok(core)
}

/// Formats a node for output: its host name when labels are present,
/// otherwise the numeric id.
pub fn display_node(labels: Option<&NodeLabels>, x: NodeId) -> String {
    labels
        .and_then(|l| l.name(x))
        .map(|h| h.to_string())
        .unwrap_or_else(|| x.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;
    use std::io::Write;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("spammass-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let mut f = fs::File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn graph_autodetect_binary_and_text() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let bin = tmp("auto.bin", &io::graph_to_bytes(&g));
        let loaded = load_graph(&bin).unwrap();
        assert_eq!(loaded.edge_count(), 2);

        let txt = tmp("auto.txt", b"# nodes: 3\n0 1\n1 2\n");
        let loaded = load_graph(&txt).unwrap();
        assert_eq!(loaded.node_count(), 3);
        assert_eq!(loaded.edge_count(), 2);
    }

    #[test]
    fn core_by_ids_and_names() {
        let mut labels = NodeLabels::new();
        labels.push("a.gov");
        labels.push("b.edu");
        labels.push("c.com");

        let by_id = tmp("core_ids.txt", b"# comment\n0\n2\n0\n");
        let core = load_core(&by_id, None, 3).unwrap();
        assert_eq!(core, vec![NodeId(0), NodeId(2)]);

        let by_name = tmp("core_names.txt", b"b.edu\nA.GOV\n");
        let core = load_core(&by_name, Some(&labels), 3).unwrap();
        assert_eq!(core, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn core_error_paths() {
        let labels = {
            let mut l = NodeLabels::new();
            l.push("a.gov");
            l
        };
        let unknown = tmp("core_unknown.txt", b"nosuch.host\n");
        assert!(load_core(&unknown, Some(&labels), 1).is_err());

        let no_labels = tmp("core_nolabels.txt", b"a.gov\n");
        assert!(load_core(&no_labels, None, 1).is_err());

        let out_of_range = tmp("core_oor.txt", b"99\n");
        assert!(load_core(&out_of_range, None, 3).is_err());

        let empty = tmp("core_empty.txt", b"# nothing\n");
        assert!(load_core(&empty, None, 3).is_err());
    }

    #[test]
    fn display_node_prefers_labels() {
        let mut labels = NodeLabels::new();
        labels.push("x.com");
        assert_eq!(display_node(Some(&labels), NodeId(0)), "x.com");
        assert_eq!(display_node(Some(&labels), NodeId(5)), "5");
        assert_eq!(display_node(None, NodeId(2)), "2");
    }
}
