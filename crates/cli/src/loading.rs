//! File loading helpers: auto-detected graph formats, label tables, and
//! core lists.

use crate::args::ParsedArgs;
use crate::CliError;
use spammass_graph::io::{self, LoadReport, ReadOptions};
use spammass_graph::{Graph, NodeId, NodeLabels, NodeOrdering};
use std::fs;
use std::path::Path;

/// Parses the shared `--order degree|bfs|none` flag (default: the graph's
/// natural layout) into a [`NodeOrdering`].
pub fn node_ordering(args: &ParsedArgs) -> Result<NodeOrdering, CliError> {
    match args.optional("order") {
        None => Ok(NodeOrdering::Natural),
        Some(v) => v.parse().map_err(|e| CliError::Usage(format!("--order: {e}"))),
    }
}

/// Builds [`ReadOptions`] from the shared `--lenient N` flag: strict by
/// default, or skipping up to `N` malformed lines when given.
///
/// The shared `--threads T` flag (0 = all cores, the default) also sets
/// the worker count for sharded text ingest; small files fall back to the
/// sequential parser regardless.
pub fn read_options(args: &ParsedArgs) -> Result<ReadOptions, CliError> {
    let opts = match args.optional("lenient") {
        None => ReadOptions::default(),
        Some(v) => {
            let budget: usize =
                v.parse().map_err(|_| CliError::Usage(format!("--lenient: cannot parse {v:?}")))?;
            ReadOptions::lenient(budget)
        }
    };
    let threads: usize = args.parsed_or("threads", 0)?;
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    Ok(opts.with_threads(threads))
}

/// Loads a graph, auto-detecting the binary image (magic `SPAMGRPH`)
/// versus text edge-list format.
///
/// The returned [`LoadReport`] is `Some` for text edge lists (where lines
/// may have been skipped under a lenient [`ReadOptions`]) and `None` for
/// binary images, which are checksummed all-or-nothing.
pub fn load_graph_with(
    path: &Path,
    opts: &ReadOptions,
) -> Result<(Graph, Option<LoadReport>), CliError> {
    if sniff_magic(path)? {
        // Binary image: memory-map and, for an aligned v3 image, serve the
        // CSR arrays zero-copy straight from the mapping.
        let (graph, _stats) = io::map_graph_file(path)?;
        Ok((graph, None))
    } else {
        let data = fs::read(path)?;
        let (graph, report) = io::read_edge_list_bytes(&data, opts)?;
        Ok((graph, Some(report)))
    }
}

/// Whether the file starts with the `SPAMGRPH` image magic, reading only
/// the first 8 bytes so huge text edge lists are not slurped twice.
fn sniff_magic(path: &Path) -> Result<bool, CliError> {
    use std::io::Read as _;
    let mut file = fs::File::open(path)?;
    let mut magic = [0u8; 8];
    let mut filled = 0;
    while filled < magic.len() {
        let k = file.read(&mut magic[filled..])?;
        if k == 0 {
            break;
        }
        filled += k;
    }
    Ok(&magic[..filled] == b"SPAMGRPH")
}

/// Strict [`load_graph_with`], discarding the (necessarily clean) report.
pub fn load_graph(path: &Path) -> Result<Graph, CliError> {
    Ok(load_graph_with(path, &ReadOptions::default())?.0)
}

/// Renders an ingest warning for a lenient load that skipped lines, or
/// `None` when the load was clean (or the graph was binary).
pub fn ingest_warning(report: Option<&LoadReport>) -> Option<String> {
    report.filter(|r| !r.is_clean()).map(|r| format!("warning: {r}"))
}

/// Loads a label table (one host per line; line number = node id).
pub fn load_labels(path: &Path) -> Result<NodeLabels, CliError> {
    let file = fs::File::open(path)?;
    Ok(io::read_labels(file)?)
}

/// A loaded core list plus ingest diagnostics.
#[derive(Debug, Clone)]
pub struct CoreLoad {
    /// The deduplicated members, ascending.
    pub nodes: Vec<NodeId>,
    /// Entries that appeared more than once in the file (each listed once).
    /// Duplicates are harmless to the estimator but usually indicate a
    /// carelessly concatenated core file, so commands surface them.
    pub duplicates: Vec<NodeId>,
}

impl CoreLoad {
    /// A warning line when duplicates were present.
    pub fn warning(&self) -> Option<String> {
        if self.duplicates.is_empty() {
            return None;
        }
        let sample: Vec<String> = self.duplicates.iter().take(8).map(|x| x.to_string()).collect();
        let suffix = if self.duplicates.len() > sample.len() { ", …" } else { "" };
        Some(format!(
            "warning: core file lists {} entr{} more than once ({}{suffix})",
            self.duplicates.len(),
            if self.duplicates.len() == 1 { "y" } else { "ies" },
            sample.join(", ")
        ))
    }
}

/// Loads a core file: one entry per line, `#` comments allowed; entries
/// are node ids, or host names when `labels` is available. CRLF line
/// endings are accepted; duplicate entries are deduplicated and reported
/// via [`CoreLoad::duplicates`].
pub fn load_core(
    path: &Path,
    labels: Option<&NodeLabels>,
    node_count: usize,
) -> Result<CoreLoad, CliError> {
    let text = fs::read_to_string(path)?;
    let mut core = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let entry = line.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        let node = if let Ok(id) = entry.parse::<u32>() {
            NodeId(id)
        } else if let Some(labels) = labels {
            labels.id(entry).ok_or_else(|| {
                CliError::Format(format!("line {}: unknown host {entry:?}", lineno + 1))
            })?
        } else {
            return Err(CliError::Format(format!(
                "line {}: {entry:?} is not a node id and no --labels file was given",
                lineno + 1
            )));
        };
        if node.index() >= node_count {
            return Err(CliError::Format(format!(
                "line {}: node {node} out of range for {node_count}-node graph",
                lineno + 1
            )));
        }
        core.push(node);
    }
    if core.is_empty() {
        return Err(CliError::Format("core file contains no entries".into()));
    }
    core.sort_unstable();
    let mut nodes = Vec::with_capacity(core.len());
    let mut duplicates = Vec::new();
    for x in core {
        if nodes.last() == Some(&x) {
            if duplicates.last() != Some(&x) {
                duplicates.push(x);
            }
        } else {
            nodes.push(x);
        }
    }
    Ok(CoreLoad { nodes, duplicates })
}

/// Formats a node for output: its host name when labels are present,
/// otherwise the numeric id.
pub fn display_node(labels: Option<&NodeLabels>, x: NodeId) -> String {
    labels.and_then(|l| l.name(x)).map(|h| h.to_string()).unwrap_or_else(|| x.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;
    use std::io::Write;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("spammass-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let mut f = fs::File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn graph_autodetect_binary_and_text() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        let bin = tmp("auto.bin", &io::graph_to_bytes(&g));
        let loaded = load_graph(&bin).unwrap();
        assert_eq!(loaded.edge_count(), 2);

        let txt = tmp("auto.txt", b"# nodes: 3\n0 1\n1 2\n");
        let loaded = load_graph(&txt).unwrap();
        assert_eq!(loaded.node_count(), 3);
        assert_eq!(loaded.edge_count(), 2);
    }

    #[test]
    fn lenient_load_reports_skipped_lines() {
        let txt = tmp("lenient.txt", b"0 1\nbroken line here\n1 2\n");
        // Strict: hard error.
        assert!(load_graph(&txt).is_err());
        // Lenient: loads the valid edges and reports the bad line.
        let (g, report) = load_graph_with(&txt, &ReadOptions::lenient(5)).unwrap();
        assert_eq!(g.edge_count(), 2);
        let report = report.expect("text loads carry a report");
        assert_eq!(report.skipped, 1);
        let warn = ingest_warning(Some(&report)).unwrap();
        assert!(warn.contains("1 skipped"), "{warn}");
        // Binary images never produce a report.
        let g2 = GraphBuilder::from_edges(2, &[(0, 1)]);
        let bin = tmp("lenient.bin", &io::graph_to_bytes(&g2));
        let (_, report) = load_graph_with(&bin, &ReadOptions::lenient(5)).unwrap();
        assert!(report.is_none());
        assert!(ingest_warning(report.as_ref()).is_none());
    }

    #[test]
    fn read_options_from_flag() {
        let strict = ParsedArgs::parse(&["stats".to_string()]).unwrap();
        assert!(read_options(&strict).unwrap().strict);
        let lenient =
            ParsedArgs::parse(&["stats".to_string(), "--lenient".to_string(), "7".to_string()])
                .unwrap();
        let opts = read_options(&lenient).unwrap();
        assert!(!opts.strict);
        assert_eq!(opts.max_bad_lines, 7);
        let bad =
            ParsedArgs::parse(&["stats".to_string(), "--lenient".to_string(), "many".to_string()])
                .unwrap();
        assert!(matches!(read_options(&bad), Err(CliError::Usage(_))));
    }

    #[test]
    fn core_by_ids_and_names() {
        let mut labels = NodeLabels::new();
        labels.push("a.gov");
        labels.push("b.edu");
        labels.push("c.com");

        let by_id = tmp("core_ids.txt", b"# comment\n0\n2\n0\n");
        let core = load_core(&by_id, None, 3).unwrap();
        assert_eq!(core.nodes, vec![NodeId(0), NodeId(2)]);
        assert_eq!(core.duplicates, vec![NodeId(0)]);
        assert!(core.warning().unwrap().contains("more than once"));

        let by_name = tmp("core_names.txt", b"b.edu\nA.GOV\n");
        let core = load_core(&by_name, Some(&labels), 3).unwrap();
        assert_eq!(core.nodes, vec![NodeId(0), NodeId(1)]);
        assert!(core.duplicates.is_empty());
        assert!(core.warning().is_none());
    }

    #[test]
    fn core_accepts_crlf_line_endings() {
        let crlf = tmp("core_crlf.txt", b"# windows file\r\n0\r\n2\r\n");
        let core = load_core(&crlf, None, 3).unwrap();
        assert_eq!(core.nodes, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn core_error_paths() {
        let labels = {
            let mut l = NodeLabels::new();
            l.push("a.gov");
            l
        };
        let unknown = tmp("core_unknown.txt", b"nosuch.host\n");
        assert!(load_core(&unknown, Some(&labels), 1).is_err());

        let no_labels = tmp("core_nolabels.txt", b"a.gov\n");
        assert!(load_core(&no_labels, None, 1).is_err());

        let out_of_range = tmp("core_oor.txt", b"99\n");
        assert!(load_core(&out_of_range, None, 3).is_err());

        let empty = tmp("core_empty.txt", b"# nothing\n");
        assert!(load_core(&empty, None, 3).is_err());
    }

    #[test]
    fn display_node_prefers_labels() {
        let mut labels = NodeLabels::new();
        labels.push("x.com");
        assert_eq!(display_node(Some(&labels), NodeId(0)), "x.com");
        assert_eq!(display_node(Some(&labels), NodeId(5)), "5");
        assert_eq!(display_node(None, NodeId(2)), "2");
    }
}
