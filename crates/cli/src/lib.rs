//! # spammass-cli
//!
//! Command-line toolkit around the spam-mass library:
//!
//! ```text
//! spammass generate --hosts 60000 --seed 42 --out web.graph [--labels hosts.txt] [--truth truth.tsv] [--core core.txt] [--evolve 3 --journal delta.journal]
//! spammass stats    --graph web.graph
//! spammass pagerank --graph web.graph [--solver jacobi|gauss-seidel|power|parallel] [--top 20]
//! spammass estimate --graph web.graph --core core.txt [--gamma 0.85] [--out mass.tsv] [--state state/]
//! spammass detect   --graph web.graph --core core.txt [--rho 10] [--tau 0.98] [--labels hosts.txt]
//! spammass update   --journal delta.journal --state state/ [--rho 10] [--tau 0.98]
//! ```
//!
//! Graph files are auto-detected: the binary image format of
//! [`spammass_graph::io`] (magic `SPAMGRPH`) or a text edge list. Core
//! files hold one entry per line — either a numeric node id or a host
//! name resolved against `--labels`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;
pub mod live;
pub mod loading;
pub mod telemetry;

use std::fmt;

/// CLI-level errors (argument problems, I/O, file-format trouble).
#[derive(Debug)]
pub enum CliError {
    /// Bad or missing command-line arguments; the string is user-facing.
    Usage(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Graph or core file could not be parsed.
    Format(String),
    /// A solve or estimation failed on valid inputs; the string carries the
    /// per-attempt diagnostics (iteration counts, residuals, fallbacks).
    Compute(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Format(m) => write!(f, "format error: {m}"),
            CliError::Compute(m) => write!(f, "computation failed: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<spammass_graph::GraphError> for CliError {
    fn from(e: spammass_graph::GraphError) -> Self {
        CliError::Format(e.to_string())
    }
}

impl From<spammass_delta::StateError> for CliError {
    fn from(e: spammass_delta::StateError) -> Self {
        match e {
            spammass_delta::StateError::Io(io) => CliError::Io(io),
            other => CliError::Format(other.to_string()),
        }
    }
}

impl From<spammass_pagerank::PageRankError> for CliError {
    fn from(e: spammass_pagerank::PageRankError) -> Self {
        CliError::Compute(e.to_string())
    }
}

impl From<spammass_pagerank::ChainError> for CliError {
    fn from(e: spammass_pagerank::ChainError) -> Self {
        CliError::Compute(e.to_string())
    }
}

impl From<spammass_core::estimate::EstimateError> for CliError {
    fn from(e: spammass_core::estimate::EstimateError) -> Self {
        use spammass_core::estimate::EstimateError;
        match &e {
            // Bad γ or solver parameters are argument problems.
            EstimateError::InvalidGamma(_) | EstimateError::Config(_) => {
                CliError::Usage(e.to_string())
            }
            _ => CliError::Compute(e.to_string()),
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
spammass — link spam detection based on mass estimation

USAGE:
  spammass generate --hosts N [--seed S] --out FILE [--labels FILE] [--truth FILE] [--core FILE] [--evolve K --journal FILE]
  spammass convert  --in FILE --out FILE [--format v1|v2|v3] [--order degree|bfs|none] [--lenient N] [--threads T]
  spammass stats    --graph FILE [--lenient N]
  spammass pagerank --graph FILE [--solver jacobi|gauss-seidel|power|parallel] [--damping C] [--top K] [--threads T] [--kernel auto|scalar|unrolled4] [--order degree|bfs|none] [--labels FILE] [--fallback true] [--lenient N]
  spammass estimate --graph FILE --core FILE [--labels FILE] [--gamma G] [--out FILE] [--state DIR] [--threads T] [--batch false] [--order degree|bfs|none] [--lenient N]
  spammass detect   --graph FILE --core FILE [--labels FILE] [--gamma G] [--rho R] [--tau T] [--top K] [--order degree|bfs|none] [--lenient N]
  spammass update   --journal FILE --state DIR [--labels FILE] [--gamma G] [--rho R] [--tau T] [--top K] [--threads T] [--lenient N]
  spammass serve    --state DIR [--addr A] [--journal FILE] [--poll-ms MS] [--gamma G] [--rho R] [--tau T] [--damping C] [--threads T] [--max-seconds S]
  spammass fsck     --state DIR [--journal FILE] [--repair true]
  spammass bench-diff --old FILE --new FILE [--threshold PCT] [--report-only true]

  --evolve K        also emit K incremental farm-growth steps as a SPAMDLT
                    delta journal (requires --journal)
  --state DIR       estimate: save graph + score vectors for incremental use;
                    update: load, apply the journal, warm re-solve, and
                    publish a new snapshot generation;
                    fsck: audit the manifest, every snapshot generation, and
                    (with --journal) the delta journal; --repair quarantines
                    damaged generations, re-points the manifest at the newest
                    valid one, and truncates a torn journal tail

  --lenient N       tolerate up to N malformed edge-list lines (skipped and
                    reported) instead of failing on the first bad line
  --fallback true   on solver failure, retry with the hardened fallback chain
                    (each attempt is reported)
  --threads T       worker threads for the parallel and batched solvers and
                    for sharded text ingest (0 = all cores; small graphs and
                    files run single-threaded anyway)
  --edges-per-thread N
                    per-worker edge quota for the pool auto-sizer (0 = the
                    built-in default); lower it to force multi-worker solves
                    on small graphs — the `pagerank.pool.sizing` event names
                    whichever cap won
  --kernel K        gather kernel for the pooled solver: auto (default),
                    scalar, or unrolled4 (4-wide unrolled accumulators);
                    auto resolves to unrolled4
  --order O         solve in a cache-friendly node layout: `degree`
                    (descending out-degree) or `bfs` (hub-first BFS);
                    results always report original node ids. `convert`
                    instead bakes the renumbering into the output image
  --batch false     solve the two estimation jump vectors separately through
                    the fallback chain instead of one batched multi-RHS run

  --threshold PCT   bench-diff: fail when a bench's median regressed by more
                    than PCT percent (default 10); --report-only true prints
                    the table but never fails

  serve: answers HTTP/JSON spam-mass queries from the state directory's
  current snapshot generation (mmapped where possible): /score?node=N,
  /batch?nodes=N,N, /topk?k=K[&by=absolute|relative|pagerank],
  /explain?node=N[&limit=L], /stats, /reload. The bound address is printed
  to stderr. With --journal, new journal records are folded in by a warm
  in-process update and published as a fresh generation; externally
  published generations are picked up too — either way the snapshot is
  swapped atomically under in-flight readers (checked every --poll-ms,
  default 1000, and on GET /reload). --threads sets the accept threads
  (0 = all cores); --max-seconds S exits after S seconds (0 = forever)

Every subcommand also accepts:
  --trace MODE      append run telemetry to the output: `pretty` prints the
                    span timing tree, `json` prints one JSON object per event
  --metrics-out F   write the machine-readable run report (JSON, schema
                    spammass.run_report/v1) to file F

Long-running subcommands (pagerank, estimate, update) also accept:
  --serve-metrics A serve live metrics over HTTP on address A (e.g.
                    127.0.0.1:9184; port 0 picks an ephemeral port printed to
                    stderr): /metrics is Prometheus text, /snapshot JSON
                    (schema spammass.metrics_snapshot/v1), /flight the
                    flight-recorder ring
  --serve-linger MS keep the metrics server up MS milliseconds after the
                    command finishes, so scripted scrapes cannot race it
  --crash-dump F    on panic, write the flight-recorder ring + final metrics
                    snapshot to F (schema spammass.flight/v1; default
                    metrics-crash.json when the live plane is on)
";
