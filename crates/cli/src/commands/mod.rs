//! Subcommand implementations. Each returns the text it would print, so
//! the commands are unit-testable without spawning processes.

pub mod detect;
pub mod estimate;
pub mod generate;
pub mod pagerank;
pub mod stats;

use crate::args::ParsedArgs;
use crate::CliError;

/// Dispatches a parsed command line; returns the report text to print.
pub fn dispatch(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => generate::run(args),
        "stats" => stats::run(args),
        "pagerank" => pagerank::run(args),
        "estimate" => estimate::run(args),
        "detect" => detect::run(args),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_subcommand_is_usage_error() {
        let args = ParsedArgs::parse(&["frobnicate".to_string()]).unwrap();
        assert!(matches!(dispatch(&args), Err(CliError::Usage(_))));
    }
}
