//! Subcommand implementations. Each returns the text it would print, so
//! the commands are unit-testable without spawning processes.

pub mod bench_diff;
pub mod convert;
pub mod detect;
pub mod estimate;
pub mod fsck;
pub mod generate;
pub mod pagerank;
pub mod serve;
pub mod stats;
pub mod update;

use crate::args::ParsedArgs;
use crate::live::LivePlane;
use crate::telemetry::RunTelemetry;
use crate::CliError;

/// Dispatches a parsed command line; returns the report text to print.
///
/// When `--trace` or `--metrics-out` is given, the command runs under an
/// installed telemetry collector and the requested renderings are
/// attached on success; otherwise the output is byte-identical to a run
/// without telemetry. `--serve-metrics` / `--crash-dump` additionally
/// turn on the live observability plane (global registry, flight
/// recorder, exposition server) for the duration of the process.
/// `SPAMMASS_FAILPOINTS` is honored before any command I/O runs, so a
/// scripted crash can target any persistence syscall.
pub fn dispatch(args: &ParsedArgs) -> Result<String, CliError> {
    spammass_delta::failpoint::arm_from_env().map_err(CliError::Usage)?;
    let live = LivePlane::from_args(args)?;
    let result = dispatch_telemetry(args);
    if let Some(live) = live {
        live.finish();
    }
    result
}

fn dispatch_telemetry(args: &ParsedArgs) -> Result<String, CliError> {
    match RunTelemetry::from_args(args)? {
        None => dispatch_inner(args),
        Some(tel) => {
            let text = {
                let _guard = tel.install();
                dispatch_inner(args)?
            };
            tel.finish(args, text)
        }
    }
}

fn dispatch_inner(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "generate" => generate::run(args),
        "convert" => convert::run(args),
        "stats" => stats::run(args),
        "pagerank" => pagerank::run(args),
        "estimate" => estimate::run(args),
        "detect" => detect::run(args),
        "update" => update::run(args),
        "serve" => serve::run(args),
        "fsck" => fsck::run(args),
        "bench-diff" => bench_diff::run(args),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_subcommand_is_usage_error() {
        let args = ParsedArgs::parse(&["frobnicate".to_string()]).unwrap();
        assert!(matches!(dispatch(&args), Err(CliError::Usage(_))));
    }
}
