//! `spammass update` — incrementally re-estimate after a crawl delta.
//!
//! Loads the saved state of a previous `estimate --state DIR` run, applies
//! a `SPAMDLT` journal, re-solves warm from the saved score vectors,
//! re-runs Algorithm 2, and reports the churn: newly flagged hosts, newly
//! cleared hosts, and the largest spam-mass shifts. On success the state
//! directory is rewritten so the next `update` chains off this one.

use crate::args::ParsedArgs;
use crate::commands::estimate::health_lines;
use crate::loading::{display_node, load_labels, read_options};
use crate::CliError;
use spammass_core::detector::DetectorConfig;
use spammass_core::estimate::{EstimatorConfig, MassEstimator};
use spammass_delta::journal::read_journal_with;
use spammass_delta::{DeltaRecord, StateDir};
use spammass_graph::NodeId;
use std::fmt::Write as _;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "journal",
        "state",
        "labels",
        "gamma",
        "rho",
        "tau",
        "top",
        "threads",
        "edges-per-thread",
        "kernel",
        "batch",
        "lenient",
        "trace",
        "metrics-out",
        "serve-metrics",
        "serve-linger",
        "crash-dump",
    ])?;
    let opts = read_options(args)?;
    let state = StateDir::new(args.required("state")?);
    let journal_path = Path::new(args.required("journal")?);
    let labels = match args.optional("labels") {
        Some(p) => Some(load_labels(Path::new(p))?),
        None => None,
    };
    let gamma: f64 = args.parsed_or("gamma", 0.85)?;
    if !(0.0..=1.0).contains(&gamma) {
        return Err(CliError::Usage(format!("--gamma {gamma} outside [0, 1]")));
    }
    let rho: f64 = args.parsed_or("rho", 10.0)?;
    let tau: f64 = args.parsed_or("tau", 0.98)?;
    let top: usize = args.parsed_or("top", 10)?;
    let threads: usize = args.parsed_or("threads", 0)?;
    let edges_per_thread: usize = args.parsed_or("edges-per-thread", 0)?;
    let kernel: spammass_pagerank::KernelKind = match args.optional("kernel") {
        Some(v) => v.parse().map_err(CliError::Usage)?,
        None => spammass_pagerank::KernelKind::Auto,
    };
    let batched: bool = args.parsed_or("batch", true)?;

    let data = std::fs::read(journal_path)?;
    let (batches, journal_report) = read_journal_with(&data, &opts)?;
    let records: Vec<DeltaRecord> = batches.into_iter().flatten().collect();
    // Lenient load: a damaged manifest or snapshot falls back to the
    // newest generation that still verifies, so one crash (or one flaky
    // disk) does not take the incremental pipeline down.
    let (saved, recovery) = state.load_with_recovery()?;

    let mut out = String::new();
    if recovery.recovered {
        let _ = writeln!(out, "warning: state directory damaged; {recovery}");
        let _ = writeln!(
            out,
            "warning: run `spammass fsck --state {} --repair true` to quarantine the damage",
            state.path().display()
        );
    }
    if !journal_report.is_clean() {
        let _ = writeln!(out, "warning: {journal_report}");
    }
    let _ = writeln!(
        out,
        "journal: {} records in {} batches from {}",
        records.len(),
        journal_report.batches_total - journal_report.skipped,
        journal_path.display()
    );

    let config = EstimatorConfig::scaled(gamma)
        .with_pagerank(
            spammass_pagerank::PageRankConfig::default()
                .threads(threads)
                .edges_per_thread(edges_per_thread)
                .kernel(kernel),
        )
        .with_batching(batched);
    let detector = DetectorConfig { rho, tau };
    let report = MassEstimator::new(config).update(saved, &records, &detector)?;
    let generation = state.save(
        &report.graph,
        &report.core,
        &report.estimate.pagerank,
        &report.estimate.core_pagerank,
    )?;

    let _ = writeln!(
        out,
        "delta applied ({}): +{} edges, -{} edges, {} -> {} nodes, {} affected",
        report.apply.strategy.name(),
        report.apply.edges_added,
        report.apply.edges_removed,
        report.apply.nodes_before,
        report.apply.nodes_after,
        report.apply.affected.len()
    );
    if report.core_added + report.core_removed > 0 {
        let _ = writeln!(
            out,
            "core: +{} / -{} members (now {})",
            report.core_added,
            report.core_removed,
            report.core.len()
        );
    }
    match (&report.warm, &report.estimate.pagerank_diag) {
        (true, Some(diag)) => {
            let _ = writeln!(out, "warm solve: {diag}");
        }
        (true, None) => {}
        (false, _) => {
            let _ = writeln!(out, "warning: warm solve failed; cold re-estimate ran instead");
        }
    }
    out.push_str(&health_lines(&report.estimate, labels.as_ref()));

    let name = |x: &NodeId| display_node(labels.as_ref(), *x);
    let list = |nodes: &[NodeId]| {
        let sample: Vec<String> = nodes.iter().take(12).map(name).collect();
        let suffix = if nodes.len() > sample.len() { ", …" } else { "" };
        format!("{}{suffix}", sample.join(", "))
    };
    let _ = writeln!(
        out,
        "newly flagged: {}{}",
        report.diff.newly_flagged.len(),
        if report.diff.newly_flagged.is_empty() {
            String::new()
        } else {
            format!(" ({})", list(&report.diff.newly_flagged))
        }
    );
    let _ = writeln!(
        out,
        "newly cleared: {}{}",
        report.diff.newly_cleared.len(),
        if report.diff.newly_cleared.is_empty() {
            String::new()
        } else {
            format!(" ({})", list(&report.diff.newly_cleared))
        }
    );
    let _ = writeln!(
        out,
        "still flagged: {} (candidates now {})",
        report.diff.still_flagged.len(),
        report.detection.len()
    );

    let shifts = report.top_mass_shifts(top);
    if !shifts.is_empty() {
        let _ = writeln!(out, "top mass shifts (scaled):");
        for s in &shifts {
            let _ = writeln!(
                out,
                "  {:>12.4} -> {:<12.4} ({:+.4})  {}",
                s.before,
                s.after,
                s.delta(),
                display_node(labels.as_ref(), s.node)
            );
        }
    }
    let _ = writeln!(out, "state saved to {} (generation {generation})", state.path().display());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::estimate;
    use spammass_delta::JournalWriter;
    use spammass_graph::{io, GraphBuilder};
    use std::fs;

    fn parse(parts: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    /// Builds a star-farm graph, runs `estimate --state`, and returns the
    /// temp dir holding graph/core/state.
    fn seeded_state(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("spammass-cli-update-{tag}"));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        // Farm: 1..=5 -> 0 (with back-links); good pair 6 <-> 7; 7 in core.
        let mut edges: Vec<(u32, u32)> = (1..=5).flat_map(|i| [(i, 0), (0, i)]).collect();
        edges.push((6, 7));
        edges.push((7, 6));
        let g = GraphBuilder::from_edges(8, &edges);
        fs::write(d.join("g.bin"), io::graph_to_bytes(&g)).unwrap();
        fs::write(d.join("core.txt"), "7\n").unwrap();
        let args = parse(&[
            "estimate",
            "--graph",
            d.join("g.bin").to_str().unwrap(),
            "--core",
            d.join("core.txt").to_str().unwrap(),
            "--state",
            d.join("state").to_str().unwrap(),
        ]);
        estimate::run(&args).unwrap();
        d
    }

    #[test]
    fn update_flags_grown_farm_and_saves_state() {
        let d = seeded_state("grow");
        // Grow the farm: boosters 8..=13 onto target 0, reflected.
        let mut w = JournalWriter::new();
        let mut records = Vec::new();
        for b in 8..=13u32 {
            records.push(DeltaRecord::AddNode { node: NodeId(b) });
            records.push(DeltaRecord::AddEdge { from: NodeId(b), to: NodeId(0) });
            records.push(DeltaRecord::AddEdge { from: NodeId(0), to: NodeId(b) });
        }
        w.append_batch(&records);
        let jp = d.join("delta.journal");
        fs::write(&jp, w.into_bytes()).unwrap();

        let args = parse(&[
            "update",
            "--journal",
            jp.to_str().unwrap(),
            "--state",
            d.join("state").to_str().unwrap(),
            "--rho",
            "2.0",
            "--tau",
            "0.9",
        ]);
        let out = run(&args).unwrap();
        assert!(out.contains("journal: 18 records in 1 batches"), "{out}");
        assert!(out.contains("newly flagged"), "{out}");
        assert!(out.contains("newly cleared"), "{out}");
        assert!(out.contains("top mass shifts"), "{out}");
        assert!(out.contains("state saved to"), "{out}");
        assert!(!out.contains("cold re-estimate"), "warm path expected: {out}");

        // The state now reflects the 14-node graph; an empty update on top
        // of it reports no churn.
        let empty = d.join("empty.journal");
        fs::write(&empty, JournalWriter::new().into_bytes()).unwrap();
        let args = parse(&[
            "update",
            "--journal",
            empty.to_str().unwrap(),
            "--state",
            d.join("state").to_str().unwrap(),
            "--rho",
            "2.0",
            "--tau",
            "0.9",
        ]);
        let out = run(&args).unwrap();
        assert!(out.contains("newly flagged: 0"), "{out}");
        assert!(out.contains("newly cleared: 0"), "{out}");
        assert!(out.contains("14 -> 14 nodes"), "{out}");
    }

    #[test]
    fn update_requires_journal_and_state() {
        let args = parse(&["update", "--journal", "/nonexistent.journal"]);
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        let args = parse(&["update", "--state", "/nonexistent-state"]);
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn corrupt_journal_is_a_format_error_when_strict() {
        let d = seeded_state("corrupt");
        let mut w = JournalWriter::new();
        w.append_batch(&[DeltaRecord::AddNode { node: NodeId(9) }]);
        let mut bytes = w.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // break the batch CRC
        let jp = d.join("bad.journal");
        fs::write(&jp, &bytes).unwrap();
        let args = parse(&[
            "update",
            "--journal",
            jp.to_str().unwrap(),
            "--state",
            d.join("state").to_str().unwrap(),
        ]);
        assert!(matches!(run(&args), Err(CliError::Format(_))));

        // Lenient: the bad batch is skipped with a warning.
        let args = parse(&[
            "update",
            "--journal",
            jp.to_str().unwrap(),
            "--state",
            d.join("state").to_str().unwrap(),
            "--lenient",
            "2",
        ]);
        let out = run(&args).unwrap();
        assert!(out.contains("warning:"), "{out}");
        assert!(out.contains("journal: 0 records"), "{out}");
    }
}
