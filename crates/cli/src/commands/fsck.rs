//! `spammass fsck` — audit (and optionally repair) a state directory.
//!
//! Validates the three layers that must agree for `spammass update` to
//! warm-start safely: the CRC-guarded `MANIFEST`, every `gen-N/`
//! snapshot's checksummed images and cross-file invariants, and (with
//! `--journal`) the `SPAMDLT` delta journal. With `--repair true` it
//! additionally quarantines damaged generations, re-points the manifest
//! at the newest valid snapshot, sweeps publication debris, and
//! truncates a torn journal tail.
//!
//! Exit status is the scripting contract: success only when the
//! directory is healthy (after repair, if requested). A damaged
//! directory fails with the full report on stderr.

use crate::args::ParsedArgs;
use crate::CliError;
use spammass_delta::{check_state, repair_state, StateDir};
use std::fmt::Write as _;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["state", "journal", "repair", "trace", "metrics-out"])?;
    let state = StateDir::new(args.required("state")?);
    let journal = args.optional("journal").map(Path::new);
    let repair: bool = args.parsed_or("repair", false)?;

    let report =
        if repair { repair_state(&state, journal)? } else { check_state(&state, journal)? };

    let mut out = format!("fsck {}\n{report}\n", state.path().display());
    if report.is_healthy() {
        return Ok(out);
    }
    if report.recoverable() && !repair {
        let _ = writeln!(
            out,
            "hint: a valid snapshot survives — run `spammass fsck --state {} --repair true`",
            state.path().display()
        );
    }
    // Damage is a failure exit so scripts can gate on it; the report
    // itself is the error message.
    Err(CliError::Format(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_delta::JournalWriter;
    use spammass_graph::{GraphBuilder, NodeId};
    use std::fs;

    fn parse(parts: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn seeded_state(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!("spammass-cli-fsck-{tag}"));
        let _ = fs::remove_dir_all(&root);
        let state = StateDir::new(root.join("state"));
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let p = vec![0.25; 4];
        state.save(&g, &[NodeId(0)], &p, &p).unwrap();
        state.save(&g, &[NodeId(0)], &p, &p).unwrap();
        root
    }

    #[test]
    fn healthy_directory_passes() {
        let d = seeded_state("ok");
        let args = parse(&["fsck", "--state", d.join("state").to_str().unwrap()]);
        let out = run(&args).unwrap();
        assert!(out.contains("verdict: healthy"), "{out}");
        assert!(out.contains("manifest: ok (generation 2)"), "{out}");
    }

    #[test]
    fn damaged_directory_fails_then_repairs() {
        let d = seeded_state("repair");
        let state_path = d.join("state");
        // Tear the published generation's graph image.
        let victim = state_path.join("gen-0002").join(StateDir::GRAPH_FILE);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

        let check = parse(&["fsck", "--state", state_path.to_str().unwrap()]);
        match run(&check) {
            Err(CliError::Format(msg)) => {
                assert!(msg.contains("gen-0002: DAMAGED"), "{msg}");
                assert!(msg.contains("--repair true"), "{msg}");
            }
            other => panic!("expected damage failure, got {other:?}"),
        }

        let repair = parse(&["fsck", "--state", state_path.to_str().unwrap(), "--repair", "true"]);
        let out = run(&repair).unwrap();
        assert!(out.contains("verdict: healthy"), "{out}");
        assert!(out.contains("quarantined gen-0002"), "{out}");
        assert!(out.contains("re-pointed manifest at generation 1"), "{out}");
        // And the directory is loadable again.
        assert!(StateDir::new(&state_path).load().is_ok());
    }

    #[test]
    fn journal_is_audited_and_truncated() {
        let d = seeded_state("journal");
        let state_path = d.join("state");
        let jp = d.join("delta.journal");
        let mut w = JournalWriter::new();
        w.append_batch(&[spammass_delta::DeltaRecord::AddNode { node: NodeId(9) }]);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xAB; 7]); // garbage tail
        fs::write(&jp, &bytes).unwrap();

        let check = parse(&[
            "fsck",
            "--state",
            state_path.to_str().unwrap(),
            "--journal",
            jp.to_str().unwrap(),
        ]);
        assert!(matches!(run(&check), Err(CliError::Format(_))));

        let repair = parse(&[
            "fsck",
            "--state",
            state_path.to_str().unwrap(),
            "--journal",
            jp.to_str().unwrap(),
            "--repair",
            "true",
        ]);
        let out = run(&repair).unwrap();
        assert!(out.contains("truncated journal"), "{out}");
        let repaired = fs::read(&jp).unwrap();
        assert_eq!(spammass_delta::read_journal(&repaired).unwrap().len(), 1);
    }

    #[test]
    fn fsck_requires_state() {
        let args = parse(&["fsck"]);
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }
}
