//! `spammass stats` — Section 4.1-style structural statistics of a graph.

use crate::args::ParsedArgs;
use crate::loading::{ingest_warning, load_graph_with, read_options};
use crate::CliError;
use spammass_graph::powerlaw::fit_exponent_mle_discrete;
use spammass_graph::stats::GraphStats;
use std::fmt::Write as _;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["graph", "lenient", "trace", "metrics-out"])?;
    let opts = read_options(args)?;
    let (graph, load_report) = load_graph_with(Path::new(args.required("graph")?), &opts)?;
    let s = GraphStats::compute(&graph);

    let mut out = String::new();
    if let Some(w) = ingest_warning(load_report.as_ref()) {
        let _ = writeln!(out, "{w}");
    }
    let _ = writeln!(out, "nodes:            {}", s.nodes);
    let _ = writeln!(out, "edges:            {}", s.edges);
    let _ = writeln!(out, "edges per node:   {:.2}", s.mean_degree);
    let _ = writeln!(
        out,
        "no inlinks:       {} ({:.1}%)",
        s.no_inlinks,
        s.no_inlinks_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "no outlinks:      {} ({:.1}%)",
        s.no_outlinks,
        s.no_outlinks_fraction() * 100.0
    );
    let _ =
        writeln!(out, "isolated:         {} ({:.1}%)", s.isolated, s.isolated_fraction() * 100.0);
    let _ = writeln!(out, "max in-degree:    {}", s.max_in_degree);
    let _ = writeln!(out, "max out-degree:   {}", s.max_out_degree);
    if let Some(fit) =
        fit_exponent_mle_discrete(graph.nodes().map(|x| graph.in_degree(x) as f64), 2.0)
    {
        let _ = writeln!(
            out,
            "in-degree power law: alpha = {:.2} ({} tail nodes, d >= 2)",
            fit.alpha, fit.tail_samples
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{io, GraphBuilder};

    #[test]
    fn reports_basic_statistics() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (1, 2)]);
        let d = std::env::temp_dir().join("spammass-cli-stats");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("g.bin");
        std::fs::write(&p, io::graph_to_bytes(&g)).unwrap();
        let args = ParsedArgs::parse(&[
            "stats".to_string(),
            "--graph".to_string(),
            p.to_str().unwrap().to_string(),
        ])
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("nodes:            4"));
        assert!(out.contains("edges:            3"));
        assert!(out.contains("isolated:         1"));
    }

    #[test]
    fn lenient_flag_skips_bad_lines_with_warning() {
        let d = std::env::temp_dir().join("spammass-cli-stats");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("messy.txt");
        std::fs::write(&p, "0 1\ngarbage\n1 0\n").unwrap();
        let argv: Vec<String> = ["stats", "--graph", p.to_str().unwrap(), "--lenient", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&ParsedArgs::parse(&argv).unwrap()).unwrap();
        assert!(out.contains("warning:"), "{out}");
        assert!(out.contains("edges:            2"), "{out}");
        // Strict run fails on the same file.
        let strict: Vec<String> =
            ["stats", "--graph", p.to_str().unwrap()].iter().map(|s| s.to_string()).collect();
        assert!(run(&ParsedArgs::parse(&strict).unwrap()).is_err());
    }

    #[test]
    fn missing_graph_flag_is_usage_error() {
        let args = ParsedArgs::parse(&["stats".to_string()]).unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }
}
