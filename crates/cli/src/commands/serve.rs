//! `spammass serve` — the snapshot-swapping spam-mass query daemon.
//!
//! Loads the state directory's current generation into an immutable,
//! mmap-backed snapshot and answers HTTP/JSON queries until stopped
//! (or until `--max-seconds`). With `--journal`, fresh journal records
//! are folded in by a warm in-process update and published as a new
//! generation; externally published generations are picked up too.
//! Either way the serving snapshot is swapped atomically — in-flight
//! requests finish on the generation they started on.

use crate::args::ParsedArgs;
use crate::CliError;
use spammass_core::detector::DetectorConfig;
use spammass_delta::StateDir;
use spammass_serve::{Reloader, ServeError, ServeOptions, Server};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn serve_error(e: ServeError) -> CliError {
    match e {
        ServeError::Io(io) => CliError::Io(io),
        ServeError::State(e) => CliError::Format(e.to_string()),
        ServeError::Graph(e) => CliError::Format(e.to_string()),
        ServeError::Estimate(e) => CliError::Compute(e.to_string()),
    }
}

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "state",
        "addr",
        "journal",
        "poll-ms",
        "gamma",
        "rho",
        "tau",
        "damping",
        "threads",
        "max-seconds",
        "trace",
        "metrics-out",
        "serve-metrics",
        "serve-linger",
        "crash-dump",
    ])?;
    let state = StateDir::new(args.required("state")?);
    let addr = args.optional("addr").unwrap_or("127.0.0.1:0").to_string();
    let journal = args.optional("journal").map(PathBuf::from);
    let poll_ms: u64 = args.parsed_or("poll-ms", 1000)?;
    let gamma: f64 = args.parsed_or("gamma", 0.85)?;
    if !(0.0..=1.0).contains(&gamma) {
        return Err(CliError::Usage(format!("--gamma {gamma} outside [0, 1]")));
    }
    let damping: f64 = args.parsed_or("damping", 0.85)?;
    if !(0.0..1.0).contains(&damping) {
        return Err(CliError::Usage(format!("--damping {damping} outside [0, 1)")));
    }
    let rho: f64 = args.parsed_or("rho", 10.0)?;
    let tau: f64 = args.parsed_or("tau", 0.98)?;
    let threads: usize = args.parsed_or("threads", 0)?;
    let max_seconds: u64 = args.parsed_or("max-seconds", 0)?;

    let detector = DetectorConfig { rho, tau };
    let reloader = Reloader::new(state, journal, detector, gamma, damping, threads);
    let options = ServeOptions { addr, threads, poll: Duration::from_millis(poll_ms.max(1)) };
    let server = Server::start(options, reloader).map_err(serve_error)?;
    // The address line goes to stderr immediately (stdout is the
    // end-of-run report), so scripts can extract an ephemeral port
    // while the daemon is still running.
    eprintln!(
        "serving spam-mass queries on http://{}/ (generation {}, {} accept threads)",
        server.local_addr(),
        server.current_generation(),
        server.accept_threads()
    );

    let started = Instant::now();
    let deadline = (max_seconds > 0).then(|| started + Duration::from_secs(max_seconds));
    loop {
        match deadline {
            Some(d) if Instant::now() >= d => break,
            Some(d) => {
                let left = d.saturating_duration_since(Instant::now());
                std::thread::sleep(left.min(Duration::from_millis(100)));
            }
            // No deadline: the daemon runs until the process is killed.
            None => std::thread::sleep(Duration::from_secs(3600)),
        }
    }

    let final_generation = server.current_generation();
    drop(server);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: shut down after {:.1}s at generation {final_generation}",
        started.elapsed().as_secs_f64()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{GraphBuilder, NodeId};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    fn parse(pairs: &[&str]) -> ParsedArgs {
        let mut v: Vec<String> = vec!["serve".to_string()];
        v.extend(pairs.iter().map(|s| s.to_string()));
        ParsedArgs::parse(&v).unwrap()
    }

    #[test]
    fn rejects_bad_flags() {
        let args = parse(&["--state", "/nonexistent", "--gamma", "2.0"]);
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        let args = parse(&["--state", "/nonexistent", "--damping", "1.0"]);
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
        // Missing state directory is an I/O error, not a hang.
        let args = parse(&["--state", "/nonexistent/spammass-serve-cli"]);
        assert!(matches!(run(&args), Err(CliError::Io(_))));
    }

    #[test]
    fn serves_until_the_deadline_and_answers_queries() {
        let dir = std::env::temp_dir().join(format!("spammass-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = GraphBuilder::from_edges(3, &[(1, 0), (2, 0)]);
        let state = StateDir::new(&dir);
        state.save(&g, &[NodeId(2)], &[0.5, 0.2, 0.3], &[0.1, 0.2, 0.3]).unwrap();

        let handle = std::thread::spawn(move || {
            run(&parse(&[
                "--state",
                dir.to_str().unwrap(),
                "--max-seconds",
                "2",
                "--threads",
                "1",
                "--rho",
                "1",
                "--tau",
                "0.5",
            ]))
        });
        // Discover the ephemeral port through the serving registry.
        let addr = loop {
            if let Some(addr) = spammass_serve::serving_addr() {
                break addr;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /score?node=0 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(status.contains("200"), "{status}");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap();
        assert!(rest.contains("spammass.score_response/v1"), "{rest}");
        assert!(rest.contains("\"flagged\":true"), "{rest}");

        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("serve: shut down"), "{out}");
        assert!(out.contains("generation 1"), "{out}");
    }
}
