//! `spammass estimate` — compute spam-mass estimates for every host and
//! write them as TSV.

use crate::args::ParsedArgs;
use crate::loading::{
    display_node, ingest_warning, load_core, load_graph_with, load_labels, node_ordering,
    read_options,
};
use crate::CliError;
use spammass_core::estimate::{EstimateReport, EstimatorConfig, MassEstimator};
use spammass_graph::NodeId;
use std::fmt::Write as _;
use std::path::Path;

/// Renders the health diagnostics of an [`EstimateReport`] — solver
/// fallback usage, anomalous nodes, dead core entries — as warning lines.
pub(crate) fn health_lines(
    report: &EstimateReport,
    labels: Option<&spammass_graph::NodeLabels>,
) -> String {
    let mut out = String::new();
    if let Some(diag) = &report.pagerank_diag {
        if diag.used_fallback() {
            let _ = writeln!(out, "warning: pagerank run degraded — {diag}");
        }
    }
    if report.core_diag.used_fallback() {
        let _ = writeln!(out, "warning: core run degraded — {diag}", diag = report.core_diag);
    }
    if !report.dead_core.is_empty() {
        let sample: Vec<String> =
            report.dead_core.iter().take(8).map(|&x| display_node(labels, x)).collect();
        let _ = writeln!(
            out,
            "warning: {} core entr{} carr{} no PageRank (stale core?): {}",
            report.dead_core.len(),
            if report.dead_core.len() == 1 { "y" } else { "ies" },
            if report.dead_core.len() == 1 { "ies" } else { "y" },
            sample.join(", ")
        );
    }
    if !report.anomalies.is_empty() {
        let sample: Vec<String> =
            report.anomalies.iter().take(8).map(|&x| display_node(labels, x)).collect();
        let _ = writeln!(
            out,
            "warning: {} node(s) with estimated good contribution above PageRank \
             (p' > p; gamma may overshoot): {}",
            report.anomalies.len(),
            sample.join(", ")
        );
    }
    out
}

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "graph",
        "core",
        "labels",
        "gamma",
        "out",
        "state",
        "top",
        "threads",
        "edges-per-thread",
        "kernel",
        "batch",
        "order",
        "lenient",
        "trace",
        "metrics-out",
        "serve-metrics",
        "serve-linger",
        "crash-dump",
    ])?;
    let opts = read_options(args)?;
    let (graph, load_report) = load_graph_with(Path::new(args.required("graph")?), &opts)?;
    let labels = match args.optional("labels") {
        Some(p) => Some(load_labels(Path::new(p))?),
        None => None,
    };
    let core_load =
        load_core(Path::new(args.required("core")?), labels.as_ref(), graph.node_count())?;
    let core = core_load.nodes.clone();
    let gamma: f64 = args.parsed_or("gamma", 0.85)?;
    if !(0.0..=1.0).contains(&gamma) {
        return Err(CliError::Usage(format!("--gamma {gamma} outside [0, 1]")));
    }
    let top: usize = args.parsed_or("top", 20)?;
    let threads: usize = args.parsed_or("threads", 0)?;
    let edges_per_thread: usize = args.parsed_or("edges-per-thread", 0)?;
    let kernel: spammass_pagerank::KernelKind = match args.optional("kernel") {
        Some(v) => v.parse().map_err(CliError::Usage)?,
        None => spammass_pagerank::KernelKind::Auto,
    };
    let batched: bool = args.parsed_or("batch", true)?;

    let mut warnings = String::new();
    if let Some(w) = ingest_warning(load_report.as_ref()) {
        let _ = writeln!(warnings, "{w}");
    }
    if let Some(w) = core_load.warning() {
        let _ = writeln!(warnings, "{w}");
    }

    let config = EstimatorConfig::scaled(gamma)
        .with_pagerank(
            spammass_pagerank::PageRankConfig::default()
                .threads(threads)
                .edges_per_thread(edges_per_thread)
                .kernel(kernel),
        )
        .with_batching(batched)
        .with_ordering(node_ordering(args)?);
    let estimate = MassEstimator::new(config).estimate(&graph, &core)?;
    warnings.push_str(&health_lines(&estimate, labels.as_ref()));

    if let Some(state_path) = args.optional("state") {
        // Persist graph + core + both score vectors so `spammass update`
        // can warm-start from this run.
        let state = spammass_delta::StateDir::new(state_path);
        let generation = state.save(&graph, &core, &estimate.pagerank, &estimate.core_pagerank)?;
        let _ = writeln!(
            warnings,
            "state saved to {} (generation {generation})",
            state.path().display()
        );
    }

    if let Some(out_path) = args.optional("out") {
        let mut tsv =
            String::from("# node\thost\tscaled_p\tscaled_p_core\tscaled_abs_mass\trel_mass\n");
        for x in graph.nodes() {
            let _ = writeln!(
                tsv,
                "{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}",
                x.0,
                display_node(labels.as_ref(), x),
                estimate.scaled_pagerank(x),
                estimate.scaled_core_pagerank(x),
                estimate.scaled_absolute(x),
                estimate.relative_of(x),
            );
        }
        std::fs::write(out_path, tsv)?;
    }

    // Console summary: the highest relative masses among substantial hosts.
    let mut ranked: Vec<NodeId> = graph.nodes().collect();
    // total_cmp keeps the ranking total even if a NaN slips into the
    // scores (it sorts first, where it is visible).
    ranked.sort_by(|&a, &b| {
        estimate.relative_of(b).total_cmp(&estimate.relative_of(a)).then(a.cmp(&b))
    });
    let mut out = warnings;
    let _ = writeln!(
        out,
        "core: {} hosts, gamma = {gamma}; coverage ||p'||/||p|| = {:.4}",
        core.len(),
        estimate.coverage_ratio()
    );
    if let Some(diag) = &estimate.pagerank_diag {
        let _ = writeln!(out, "pagerank solve: {diag}");
    }
    let _ = writeln!(out, "core solve: {diag}", diag = estimate.core_diag);
    let _ =
        writeln!(out, "{:>10} {:>8}  host (top relative mass, scaled p >= 2)", "scaled p", "m~");
    for &x in ranked.iter().filter(|&&x| estimate.scaled_pagerank(x) >= 2.0).take(top) {
        let _ = writeln!(
            out,
            "{:>10.2} {:>8.4}  {}",
            estimate.scaled_pagerank(x),
            estimate.relative_of(x),
            display_node(labels.as_ref(), x)
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{io, GraphBuilder};
    use std::fs;

    fn setup() -> (std::path::PathBuf, std::path::PathBuf) {
        // Star farm: 1..=5 -> 0; good host 6 -> 7 with 7 in core.
        let mut edges: Vec<(u32, u32)> = (1..=5).map(|i| (i, 0)).collect();
        edges.push((6, 7));
        edges.push((7, 6));
        let g = GraphBuilder::from_edges(8, &edges);
        let d = std::env::temp_dir().join("spammass-cli-estimate");
        fs::create_dir_all(&d).unwrap();
        let gp = d.join("g.bin");
        fs::write(&gp, io::graph_to_bytes(&g)).unwrap();
        let cp = d.join("core.txt");
        fs::write(&cp, "7\n").unwrap();
        (gp, cp)
    }

    #[test]
    fn estimates_and_writes_tsv() {
        let (gp, cp) = setup();
        let out_path = std::env::temp_dir().join("spammass-cli-estimate/mass.tsv");
        let args = ParsedArgs::parse(
            &[
                "estimate",
                "--graph",
                gp.to_str().unwrap(),
                "--core",
                cp.to_str().unwrap(),
                "--out",
                out_path.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("core: 1 hosts"));
        // The default path solves both jump vectors in one batched run.
        assert!(report.contains("pagerank solve: batch"), "{report}");
        assert!(report.contains("core solve: batch"), "{report}");

        let tsv = fs::read_to_string(&out_path).unwrap();
        assert_eq!(tsv.lines().count(), 9); // header + 8 nodes
                                            // The farm target (node 0) carries relative mass ~1.
        let target_line = tsv.lines().find(|l| l.starts_with("0\t")).unwrap();
        let rel: f64 = target_line.rsplit('\t').next().unwrap().parse().unwrap();
        assert!(rel > 0.99, "target m~ = {rel}");
    }

    #[test]
    fn batch_false_falls_back_to_the_solver_chain() {
        let (gp, cp) = setup();
        let args = ParsedArgs::parse(
            &[
                "estimate",
                "--graph",
                gp.to_str().unwrap(),
                "--core",
                cp.to_str().unwrap(),
                "--batch",
                "false",
                "--threads",
                "1",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("pagerank solve: jacobi"), "{report}");
        assert!(report.contains("core solve: jacobi"), "{report}");
    }

    #[test]
    fn duplicate_core_entries_are_reported() {
        let (gp, _) = setup();
        let d = std::env::temp_dir().join("spammass-cli-estimate");
        let cp = d.join("core_dup.txt");
        fs::write(&cp, "7\n7\n6\n").unwrap();
        let args = ParsedArgs::parse(
            &["estimate", "--graph", gp.to_str().unwrap(), "--core", cp.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("more than once"), "{report}");
        assert!(report.contains("core: 2 hosts"), "{report}");
    }

    #[test]
    fn rejects_bad_gamma() {
        let (gp, cp) = setup();
        let args = ParsedArgs::parse(
            &[
                "estimate",
                "--graph",
                gp.to_str().unwrap(),
                "--core",
                cp.to_str().unwrap(),
                "--gamma",
                "2.0",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }
}
