//! `spammass estimate` — compute spam-mass estimates for every host and
//! write them as TSV.

use crate::args::ParsedArgs;
use crate::loading::{
    display_node, ingest_warning, load_core, load_graph_with, load_labels, node_ordering,
    read_options,
};
use crate::CliError;
use spammass_core::estimate::{EstimateReport, EstimatorConfig, MassEstimator};
use spammass_graph::NodeId;
use std::fmt::Write as _;
use std::path::Path;

/// Renders the health diagnostics of an [`EstimateReport`] — solver
/// fallback usage, anomalous nodes, dead core entries — as warning lines.
pub(crate) fn health_lines(
    report: &EstimateReport,
    labels: Option<&spammass_graph::NodeLabels>,
) -> String {
    let mut out = String::new();
    if let Some(diag) = &report.pagerank_diag {
        if diag.used_fallback() {
            let _ = writeln!(out, "warning: pagerank run degraded — {diag}");
        }
    }
    if report.core_diag.used_fallback() {
        let _ = writeln!(out, "warning: core run degraded — {diag}", diag = report.core_diag);
    }
    if !report.dead_core.is_empty() {
        let sample: Vec<String> =
            report.dead_core.iter().take(8).map(|&x| display_node(labels, x)).collect();
        let _ = writeln!(
            out,
            "warning: {} core entr{} carr{} no PageRank (stale core?): {}",
            report.dead_core.len(),
            if report.dead_core.len() == 1 { "y" } else { "ies" },
            if report.dead_core.len() == 1 { "ies" } else { "y" },
            sample.join(", ")
        );
    }
    if !report.anomalies.is_empty() {
        let sample: Vec<String> =
            report.anomalies.iter().take(8).map(|&x| display_node(labels, x)).collect();
        let _ = writeln!(
            out,
            "warning: {} node(s) with estimated good contribution above PageRank \
             (p' > p; gamma may overshoot): {}",
            report.anomalies.len(),
            sample.join(", ")
        );
    }
    out
}

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "graph",
        "core",
        "labels",
        "gamma",
        "out",
        "state",
        "top",
        "threads",
        "edges-per-thread",
        "kernel",
        "batch",
        "order",
        "lenient",
        "max-resident-mb",
        "trace",
        "metrics-out",
        "serve-metrics",
        "serve-linger",
        "crash-dump",
    ])?;
    let labels = match args.optional("labels") {
        Some(p) => Some(load_labels(Path::new(p))?),
        None => None,
    };
    let gamma: f64 = args.parsed_or("gamma", 0.85)?;
    if !(0.0..=1.0).contains(&gamma) {
        return Err(CliError::Usage(format!("--gamma {gamma} outside [0, 1]")));
    }
    let top: usize = args.parsed_or("top", 20)?;
    let threads: usize = args.parsed_or("threads", 0)?;
    let edges_per_thread: usize = args.parsed_or("edges-per-thread", 0)?;
    let kernel: spammass_pagerank::KernelKind = match args.optional("kernel") {
        Some(v) => v.parse().map_err(CliError::Usage)?,
        None => spammass_pagerank::KernelKind::Auto,
    };
    let batched: bool = args.parsed_or("batch", true)?;

    let pagerank_config = spammass_pagerank::PageRankConfig::default()
        .threads(threads)
        .edges_per_thread(edges_per_thread)
        .kernel(kernel);

    let mut warnings = String::new();
    let estimate;
    let node_count;
    let core_len;
    if let Some(_budget) = args.optional("max-resident-mb") {
        // Out-of-core path: the graph stays a compressed v4 image on disk;
        // only score vectors and one decode scratch are resident.
        let budget_mb: u64 = args.parsed_or("max-resident-mb", 0)?;
        if budget_mb == 0 {
            return Err(CliError::Usage("--max-resident-mb must be a positive integer".into()));
        }
        for flag in ["state", "order", "batch"] {
            if args.optional(flag).is_some() {
                return Err(CliError::Usage(format!(
                    "--{flag} does not apply to the streamed (--max-resident-mb) path; \
                     orderings are baked at `spammass convert` time"
                )));
            }
        }
        let path = Path::new(args.required("graph")?);
        #[cfg(unix)]
        let image = spammass_graph::CompressedImage::open(path)?;
        #[cfg(not(unix))]
        let image =
            spammass_graph::CompressedImage::from_store(std::sync::Arc::new(std::fs::read(path)?))?;
        let core_load =
            load_core(Path::new(args.required("core")?), labels.as_ref(), image.node_count())?;
        if let Some(w) = core_load.warning() {
            let _ = writeln!(warnings, "{w}");
        }
        let config = EstimatorConfig::scaled(gamma).with_pagerank(pagerank_config);
        estimate = MassEstimator::new(config).estimate_streamed(
            &image,
            &core_load.nodes,
            budget_mb * 1024 * 1024,
        )?;
        node_count = image.node_count();
        core_len = core_load.nodes.len();
        let _ = writeln!(
            warnings,
            "streamed solve: {} blocks / {:.1} MiB decoded against a {budget_mb} MiB budget",
            image.block_count(spammass_graph::Orientation::Out)
                + image.block_count(spammass_graph::Orientation::In),
            image.encoded_bytes_read() as f64 / (1024.0 * 1024.0)
        );
    } else {
        let opts = read_options(args)?;
        let (graph, load_report) = load_graph_with(Path::new(args.required("graph")?), &opts)?;
        let core_load =
            load_core(Path::new(args.required("core")?), labels.as_ref(), graph.node_count())?;
        if let Some(w) = ingest_warning(load_report.as_ref()) {
            let _ = writeln!(warnings, "{w}");
        }
        if let Some(w) = core_load.warning() {
            let _ = writeln!(warnings, "{w}");
        }
        let config = EstimatorConfig::scaled(gamma)
            .with_pagerank(pagerank_config)
            .with_batching(batched)
            .with_ordering(node_ordering(args)?);
        estimate = MassEstimator::new(config).estimate(&graph, &core_load.nodes)?;
        if let Some(state_path) = args.optional("state") {
            // Persist graph + core + both score vectors so `spammass update`
            // can warm-start from this run.
            let state = spammass_delta::StateDir::new(state_path);
            let generation = state.save(
                &graph,
                &core_load.nodes,
                &estimate.pagerank,
                &estimate.core_pagerank,
            )?;
            let _ = writeln!(
                warnings,
                "state saved to {} (generation {generation})",
                state.path().display()
            );
        }
        node_count = graph.node_count();
        core_len = core_load.nodes.len();
    }
    warnings.push_str(&health_lines(&estimate, labels.as_ref()));

    let nodes = || (0..node_count as u32).map(NodeId);
    if let Some(out_path) = args.optional("out") {
        let mut tsv =
            String::from("# node\thost\tscaled_p\tscaled_p_core\tscaled_abs_mass\trel_mass\n");
        for x in nodes() {
            let _ = writeln!(
                tsv,
                "{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}",
                x.0,
                display_node(labels.as_ref(), x),
                estimate.scaled_pagerank(x),
                estimate.scaled_core_pagerank(x),
                estimate.scaled_absolute(x),
                estimate.relative_of(x),
            );
        }
        std::fs::write(out_path, tsv)?;
    }

    // Console summary: the highest relative masses among substantial hosts.
    let mut ranked: Vec<NodeId> = nodes().collect();
    // total_cmp keeps the ranking total even if a NaN slips into the
    // scores (it sorts first, where it is visible).
    ranked.sort_by(|&a, &b| {
        estimate.relative_of(b).total_cmp(&estimate.relative_of(a)).then(a.cmp(&b))
    });
    let mut out = warnings;
    let _ = writeln!(
        out,
        "core: {} hosts, gamma = {gamma}; coverage ||p'||/||p|| = {:.4}",
        core_len,
        estimate.coverage_ratio()
    );
    if let Some(diag) = &estimate.pagerank_diag {
        let _ = writeln!(out, "pagerank solve: {diag}");
    }
    let _ = writeln!(out, "core solve: {diag}", diag = estimate.core_diag);
    let _ =
        writeln!(out, "{:>10} {:>8}  host (top relative mass, scaled p >= 2)", "scaled p", "m~");
    for &x in ranked.iter().filter(|&&x| estimate.scaled_pagerank(x) >= 2.0).take(top) {
        let _ = writeln!(
            out,
            "{:>10.2} {:>8.4}  {}",
            estimate.scaled_pagerank(x),
            estimate.relative_of(x),
            display_node(labels.as_ref(), x)
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{io, GraphBuilder};
    use std::fs;

    fn setup() -> (std::path::PathBuf, std::path::PathBuf) {
        // Star farm: 1..=5 -> 0; good host 6 -> 7 with 7 in core.
        let mut edges: Vec<(u32, u32)> = (1..=5).map(|i| (i, 0)).collect();
        edges.push((6, 7));
        edges.push((7, 6));
        let g = GraphBuilder::from_edges(8, &edges);
        let d = std::env::temp_dir().join("spammass-cli-estimate");
        fs::create_dir_all(&d).unwrap();
        let gp = d.join("g.bin");
        fs::write(&gp, io::graph_to_bytes(&g)).unwrap();
        let cp = d.join("core.txt");
        fs::write(&cp, "7\n").unwrap();
        (gp, cp)
    }

    #[test]
    fn estimates_and_writes_tsv() {
        let (gp, cp) = setup();
        let out_path = std::env::temp_dir().join("spammass-cli-estimate/mass.tsv");
        let args = ParsedArgs::parse(
            &[
                "estimate",
                "--graph",
                gp.to_str().unwrap(),
                "--core",
                cp.to_str().unwrap(),
                "--out",
                out_path.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("core: 1 hosts"));
        // The default path solves both jump vectors in one batched run.
        assert!(report.contains("pagerank solve: batch"), "{report}");
        assert!(report.contains("core solve: batch"), "{report}");

        let tsv = fs::read_to_string(&out_path).unwrap();
        assert_eq!(tsv.lines().count(), 9); // header + 8 nodes
                                            // The farm target (node 0) carries relative mass ~1.
        let target_line = tsv.lines().find(|l| l.starts_with("0\t")).unwrap();
        let rel: f64 = target_line.rsplit('\t').next().unwrap().parse().unwrap();
        assert!(rel > 0.99, "target m~ = {rel}");
    }

    #[test]
    fn batch_false_falls_back_to_the_solver_chain() {
        let (gp, cp) = setup();
        let args = ParsedArgs::parse(
            &[
                "estimate",
                "--graph",
                gp.to_str().unwrap(),
                "--core",
                cp.to_str().unwrap(),
                "--batch",
                "false",
                "--threads",
                "1",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("pagerank solve: jacobi"), "{report}");
        assert!(report.contains("core solve: jacobi"), "{report}");
    }

    #[test]
    fn duplicate_core_entries_are_reported() {
        let (gp, _) = setup();
        let d = std::env::temp_dir().join("spammass-cli-estimate");
        let cp = d.join("core_dup.txt");
        fs::write(&cp, "7\n7\n6\n").unwrap();
        let args = ParsedArgs::parse(
            &["estimate", "--graph", gp.to_str().unwrap(), "--core", cp.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("more than once"), "{report}");
        assert!(report.contains("core: 2 hosts"), "{report}");
    }

    #[test]
    fn streamed_estimate_matches_in_memory_tsv() {
        // Chain graph with a small farm; enough nodes to make the solve
        // nontrivial but still instant.
        let mut edges: Vec<(u32, u32)> = (0..200u32).map(|i| (i, (i + 1) % 200)).collect();
        edges.extend((201..220u32).map(|i| (i, 200)));
        let g = GraphBuilder::from_edges(220, &edges);
        let d = std::env::temp_dir().join("spammass-cli-estimate-streamed");
        fs::create_dir_all(&d).unwrap();
        let v4 = d.join("g.v4");
        fs::write(&v4, spammass_graph::graph_to_bytes_v4(&g)).unwrap();
        let v2 = d.join("g.v2");
        fs::write(&v2, io::graph_to_bytes(&g)).unwrap();
        let cp = d.join("core.txt");
        fs::write(&cp, "0\n50\n100\n").unwrap();

        let run_with = |graph: &std::path::Path, tsv: &std::path::Path, extra: &[&str]| {
            let mut argv = vec![
                "estimate",
                "--graph",
                graph.to_str().unwrap(),
                "--core",
                cp.to_str().unwrap(),
                "--out",
                tsv.to_str().unwrap(),
                "--threads",
                "1",
            ];
            argv.extend_from_slice(extra);
            let args =
                ParsedArgs::parse(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
            run(&args).unwrap()
        };
        let mem_tsv = d.join("mem.tsv");
        run_with(&v2, &mem_tsv, &[]);
        let streamed_tsv = d.join("streamed.tsv");
        let report = run_with(&v4, &streamed_tsv, &["--max-resident-mb", "8"]);
        assert!(report.contains("streamed solve:"), "{report}");
        assert!(report.contains("core: 3 hosts"), "{report}");
        assert_eq!(
            fs::read_to_string(&mem_tsv).unwrap(),
            fs::read_to_string(&streamed_tsv).unwrap(),
            "streamed and in-memory estimates must agree to TSV precision"
        );
    }

    #[test]
    fn streamed_estimate_rejects_incompatible_flags() {
        let (gp, cp) = setup();
        for extra in [["--state", "/tmp/st"], ["--order", "degree"], ["--batch", "false"]] {
            let mut argv = vec![
                "estimate",
                "--graph",
                gp.to_str().unwrap(),
                "--core",
                cp.to_str().unwrap(),
                "--max-resident-mb",
                "4",
            ];
            argv.extend_from_slice(&extra);
            let args =
                ParsedArgs::parse(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap();
            assert!(matches!(run(&args), Err(CliError::Usage(_))), "{extra:?}");
        }
    }

    #[test]
    fn rejects_bad_gamma() {
        let (gp, cp) = setup();
        let args = ParsedArgs::parse(
            &[
                "estimate",
                "--graph",
                gp.to_str().unwrap(),
                "--core",
                cp.to_str().unwrap(),
                "--gamma",
                "2.0",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }
}
