//! `spammass estimate` — compute spam-mass estimates for every host and
//! write them as TSV.

use crate::args::ParsedArgs;
use crate::loading::{display_node, load_core, load_graph, load_labels};
use crate::CliError;
use spammass_core::estimate::{EstimatorConfig, MassEstimator};
use spammass_graph::NodeId;
use std::fmt::Write as _;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["graph", "core", "labels", "gamma", "out", "top"])?;
    let graph = load_graph(Path::new(args.required("graph")?))?;
    let labels = match args.optional("labels") {
        Some(p) => Some(load_labels(Path::new(p))?),
        None => None,
    };
    let core = load_core(Path::new(args.required("core")?), labels.as_ref(), graph.node_count())?;
    let gamma: f64 = args.parsed_or("gamma", 0.85)?;
    if !(0.0..=1.0).contains(&gamma) {
        return Err(CliError::Usage(format!("--gamma {gamma} outside [0, 1]")));
    }
    let top: usize = args.parsed_or("top", 20)?;

    let estimate = MassEstimator::new(EstimatorConfig::scaled(gamma)).estimate(&graph, &core);

    if let Some(out_path) = args.optional("out") {
        let mut tsv = String::from("# node\thost\tscaled_p\tscaled_p_core\tscaled_abs_mass\trel_mass\n");
        for x in graph.nodes() {
            let _ = writeln!(
                tsv,
                "{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}",
                x.0,
                display_node(labels.as_ref(), x),
                estimate.scaled_pagerank(x),
                estimate.scaled_core_pagerank(x),
                estimate.scaled_absolute(x),
                estimate.relative_of(x),
            );
        }
        std::fs::write(out_path, tsv)?;
    }

    // Console summary: the highest relative masses among substantial hosts.
    let mut ranked: Vec<NodeId> = graph.nodes().collect();
    ranked.sort_by(|&a, &b| {
        estimate
            .relative_of(b)
            .partial_cmp(&estimate.relative_of(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "core: {} hosts, gamma = {gamma}; coverage ||p'||/||p|| = {:.4}",
        core.len(),
        estimate.coverage_ratio()
    );
    let _ = writeln!(out, "{:>10} {:>8}  host (top relative mass, scaled p >= 2)", "scaled p", "m~");
    for &x in ranked.iter().filter(|&&x| estimate.scaled_pagerank(x) >= 2.0).take(top) {
        let _ = writeln!(
            out,
            "{:>10.2} {:>8.4}  {}",
            estimate.scaled_pagerank(x),
            estimate.relative_of(x),
            display_node(labels.as_ref(), x)
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{io, GraphBuilder};
    use std::fs;

    fn setup() -> (std::path::PathBuf, std::path::PathBuf) {
        // Star farm: 1..=5 -> 0; good host 6 -> 7 with 7 in core.
        let mut edges: Vec<(u32, u32)> = (1..=5).map(|i| (i, 0)).collect();
        edges.push((6, 7));
        edges.push((7, 6));
        let g = GraphBuilder::from_edges(8, &edges);
        let d = std::env::temp_dir().join("spammass-cli-estimate");
        fs::create_dir_all(&d).unwrap();
        let gp = d.join("g.bin");
        fs::write(&gp, io::graph_to_bytes(&g)).unwrap();
        let cp = d.join("core.txt");
        fs::write(&cp, "7\n").unwrap();
        (gp, cp)
    }

    #[test]
    fn estimates_and_writes_tsv() {
        let (gp, cp) = setup();
        let out_path = std::env::temp_dir().join("spammass-cli-estimate/mass.tsv");
        let args = ParsedArgs::parse(
            &[
                "estimate",
                "--graph", gp.to_str().unwrap(),
                "--core", cp.to_str().unwrap(),
                "--out", out_path.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("core: 1 hosts"));

        let tsv = fs::read_to_string(&out_path).unwrap();
        assert_eq!(tsv.lines().count(), 9); // header + 8 nodes
        // The farm target (node 0) carries relative mass ~1.
        let target_line = tsv.lines().find(|l| l.starts_with("0\t")).unwrap();
        let rel: f64 = target_line.rsplit('\t').next().unwrap().parse().unwrap();
        assert!(rel > 0.99, "target m~ = {rel}");
    }

    #[test]
    fn rejects_bad_gamma() {
        let (gp, cp) = setup();
        let args = ParsedArgs::parse(
            &["estimate", "--graph", gp.to_str().unwrap(), "--core", cp.to_str().unwrap(), "--gamma", "2.0"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }
}
