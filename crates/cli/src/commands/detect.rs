//! `spammass detect` — run Algorithm 2 and list the spam candidates.

use crate::args::ParsedArgs;
use crate::commands::estimate::health_lines;
use crate::loading::{
    display_node, ingest_warning, load_core, load_graph_with, load_labels, node_ordering,
    read_options,
};
use crate::CliError;
use spammass_core::detector::{detect, DetectorConfig};
use spammass_core::estimate::{EstimatorConfig, MassEstimator};
use spammass_core::top_k_by;
use std::fmt::Write as _;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "graph",
        "core",
        "labels",
        "gamma",
        "rho",
        "tau",
        "top",
        "kernel",
        "order",
        "lenient",
        "trace",
        "metrics-out",
    ])?;
    let opts = read_options(args)?;
    let (graph, load_report) = load_graph_with(Path::new(args.required("graph")?), &opts)?;
    let labels = match args.optional("labels") {
        Some(p) => Some(load_labels(Path::new(p))?),
        None => None,
    };
    let core_load =
        load_core(Path::new(args.required("core")?), labels.as_ref(), graph.node_count())?;
    let gamma: f64 = args.parsed_or("gamma", 0.85)?;
    let rho: f64 = args.parsed_or("rho", 10.0)?;
    let tau: f64 = args.parsed_or("tau", 0.98)?;
    let top: usize = args.parsed_or("top", 0)?;
    if !(0.0..=1.0).contains(&gamma) {
        return Err(CliError::Usage(format!("--gamma {gamma} outside [0, 1]")));
    }
    let kernel: spammass_pagerank::KernelKind = match args.optional("kernel") {
        Some(v) => v.parse().map_err(CliError::Usage)?,
        None => spammass_pagerank::KernelKind::Auto,
    };

    let mut out = String::new();
    if let Some(w) = ingest_warning(load_report.as_ref()) {
        let _ = writeln!(out, "{w}");
    }
    if let Some(w) = core_load.warning() {
        let _ = writeln!(out, "{w}");
    }

    let estimate = MassEstimator::new(
        EstimatorConfig::scaled(gamma)
            .with_pagerank(spammass_pagerank::PageRankConfig::default().kernel(kernel))
            .with_ordering(node_ordering(args)?),
    )
    .estimate(&graph, &core_load.nodes)?;
    out.push_str(&health_lines(&estimate, labels.as_ref()));
    let detection = detect(&estimate, &DetectorConfig { rho, tau });

    let _ = writeln!(
        out,
        "Algorithm 2 (rho = {rho}, tau = {tau}): {} candidates among {} hosts with scaled p >= {rho}",
        detection.len(),
        detection.considered
    );
    // Partial select instead of a full sort: --top K asks for K winners
    // (0 = all). Candidates arrive ascending by node id, and top_k_by
    // breaks ties in first-seen order, so equal scores list by node id
    // — same order the old total_cmp sort produced. NaN-safety comes
    // from the helper's total_cmp convention.
    let k = if top == 0 { detection.candidates.len() } else { top };
    let shown = top_k_by(detection.candidates.iter().copied(), k, |x| estimate.scaled_pagerank(*x));
    if shown.len() < detection.candidates.len() {
        let _ = writeln!(out, "(showing top {} of {})", shown.len(), detection.candidates.len());
    }
    let _ = writeln!(out, "{:>10} {:>8}  candidate", "scaled p", "m~");
    for x in shown {
        let _ = writeln!(
            out,
            "{:>10.2} {:>8.4}  {}",
            estimate.scaled_pagerank(x),
            estimate.relative_of(x),
            display_node(labels.as_ref(), x)
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{io, GraphBuilder, NodeId};
    use std::fs;

    #[test]
    fn detects_the_boosted_target() {
        // 30 boosters -> target 0; target backlinks; good pair 31 <-> 32
        // with 32 in the core.
        let mut edges: Vec<(u32, u32)> = (1..=30).flat_map(|i| [(i, 0), (0, i)]).collect();
        edges.push((31, 32));
        edges.push((32, 31));
        let g = GraphBuilder::from_edges(33, &edges);
        let d = std::env::temp_dir().join("spammass-cli-detect");
        fs::create_dir_all(&d).unwrap();
        let gp = d.join("g.bin");
        fs::write(&gp, io::graph_to_bytes(&g)).unwrap();
        let cp = d.join("core.txt");
        fs::write(&cp, "32\n").unwrap();

        let args = ParsedArgs::parse(
            &[
                "detect",
                "--graph",
                gp.to_str().unwrap(),
                "--core",
                cp.to_str().unwrap(),
                "--rho",
                "5",
                "--tau",
                "0.9",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("1 candidates"), "{out}");
        // The candidate line names node 0 (no labels file).
        assert!(out.lines().any(|l| l.trim_end().ends_with("  0")), "{out}");
        let _ = NodeId(0);
    }

    #[test]
    fn top_k_truncates_the_candidate_list() {
        // Two independent farms (targets 0 and 1, 0 boosted harder) so
        // the detector flags two candidates and --top 1 keeps the
        // stronger one.
        let mut edges: Vec<(u32, u32)> = (2..=16).flat_map(|i| [(i, 0), (0, i)]).collect();
        edges.extend((17..=26).flat_map(|i| [(i, 1), (1, i)]));
        edges.push((27, 28));
        edges.push((28, 27));
        let g = GraphBuilder::from_edges(29, &edges);
        let d = std::env::temp_dir().join("spammass-cli-detect-top");
        fs::create_dir_all(&d).unwrap();
        let gp = d.join("g.bin");
        fs::write(&gp, io::graph_to_bytes(&g)).unwrap();
        let cp = d.join("core.txt");
        fs::write(&cp, "28\n").unwrap();

        let base = [
            "detect",
            "--graph",
            gp.to_str().unwrap(),
            "--core",
            cp.to_str().unwrap(),
            "--rho",
            "3",
            "--tau",
            "0.9",
        ];
        let parse = |extra: &[&str]| {
            let mut v: Vec<String> = base.iter().map(|s| s.to_string()).collect();
            v.extend(extra.iter().map(|s| s.to_string()));
            ParsedArgs::parse(&v).unwrap()
        };
        // Every farm member clears the low rho here; what matters is
        // that --top keeps only the strongest and the full run is
        // untruncated.
        let all = run(&parse(&[])).unwrap();
        assert!(all.contains("27 candidates"), "{all}");
        assert!(!all.contains("showing top"), "{all}");

        let top1 = run(&parse(&["--top", "1"])).unwrap();
        assert!(top1.contains("(showing top 1 of 27)"), "{top1}");
        // The harder-boosted target 0 wins the single slot.
        assert!(top1.lines().any(|l| l.trim_end().ends_with("  0")), "{top1}");
        assert!(!top1.lines().any(|l| l.trim_end().ends_with("  1")), "{top1}");
    }
}
