//! `spammass convert` — re-encode a graph between the text edge-list
//! format and the `SPAMGRPH` binary image versions.
//!
//! Two main uses: upgrading v1/v2 images (and text edge lists) to the v3
//! aligned-section format, whose CSR arrays memory-map zero-copy on
//! load; and compressing any input — including a shard **directory**
//! from `spammass generate --stream` — into the v4 delta-varint block
//! format that the out-of-core estimator streams
//! (`spammass estimate --max-resident-mb`).
//!
//! Directory input never materializes the graph: out-rows stream
//! straight from the shards (they arrive source-sorted) while the
//! transposed in-orientation is built with an external-memory bucket
//! sort under `{out}.transpose.tmp/`, so peak memory is one transpose
//! bucket, not the edge list.

use crate::args::ParsedArgs;
use crate::loading::{ingest_warning, load_graph_with, node_ordering, read_options};
use crate::CliError;
use spammass_graph::{
    graph_to_bytes_v4_with, io, GraphError, NodeId, NodeOrdering, Permutation, V4Config, V4Writer,
};
use spammass_synth::stream::StreamManifest;
use std::fmt::Write as _;
use std::fs;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read as _, Write as IoWrite};
use std::path::{Path, PathBuf};

/// Transpose fan-out for directory conversion. More buckets means less
/// memory in the in-orientation sort: the popularity skew concentrates
/// in-links on low ids, so the first bucket is the resident-size
/// bottleneck.
const TRANSPOSE_BUCKETS: u64 = 256;

fn v4_config(args: &ParsedArgs) -> Result<V4Config, CliError> {
    let defaults = V4Config::default();
    let config = V4Config {
        rows_per_block: args.parsed_or("block-rows", defaults.rows_per_block)?,
        edges_per_block: args.parsed_or("block-edges", defaults.edges_per_block)?,
    };
    config.validate().map_err(CliError::from)?;
    Ok(config)
}

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "in",
        "out",
        "format",
        "order",
        "lenient",
        "threads",
        "block-rows",
        "block-edges",
        "trace",
        "metrics-out",
    ])?;
    let input = Path::new(args.required("in")?);
    let output = Path::new(args.required("out")?);
    let format = args.optional("format").unwrap_or("v3");
    if format != "v4"
        && (args.optional("block-rows").is_some() || args.optional("block-edges").is_some())
    {
        return Err(CliError::Usage("--block-rows/--block-edges only apply to --format v4".into()));
    }

    if input.is_dir() {
        if format != "v4" {
            return Err(CliError::Usage(format!(
                "directory input (streamed shards) can only be converted to --format v4, not {format:?}"
            )));
        }
        if args.optional("order").is_some() {
            return Err(CliError::Usage(
                "--order is not supported for directory input; streamed shards keep natural ids \
                 so truth.tsv/core.txt stay valid"
                    .into(),
            ));
        }
        return convert_stream_dir(input, output, v4_config(args)?);
    }

    let opts = read_options(args)?;
    let ordering = node_ordering(args)?;
    let (graph, load_report) = load_graph_with(input, &opts)?;
    // Baking an ordering into the image renumbers nodes permanently, so
    // label files and core lists written against the original ids no
    // longer apply — worth it only for solver-only pipelines; say so.
    let graph = match ordering {
        NodeOrdering::Natural => graph,
        other => Permutation::compute(&graph, other).permute_graph(&graph),
    };
    let mut trailer = String::new();
    let bytes = match format {
        "v1" => io::graph_to_bytes_v1(&graph),
        "v2" => io::graph_to_bytes(&graph),
        "v3" => io::graph_to_bytes_v3(&graph),
        "v4" => {
            let config = v4_config(args)?;
            let bytes = graph_to_bytes_v4_with(&graph, config)?;
            if graph.edge_count() > 0 {
                let bits = bytes.len() as f64 * 8.0 / (2.0 * graph.edge_count() as f64);
                let _ = write!(trailer, " ({bits:.2} bits/edge over both orientations)");
            }
            bytes
        }
        other => {
            return Err(CliError::Usage(format!("unknown --format {other:?} (v1, v2, v3, v4)")))
        }
    };
    fs::write(output, &bytes)?;

    let mut out = String::new();
    if let Some(warn) = ingest_warning(load_report.as_ref()) {
        let _ = writeln!(out, "{warn}");
    }
    if ordering != NodeOrdering::Natural {
        let _ = writeln!(
            out,
            "note: nodes renumbered into {} order; labels/core files keyed by \
             original ids no longer apply to this image",
            ordering.name()
        );
    }
    let _ = writeln!(
        out,
        "wrote {} image: {} nodes, {} edges, {} bytes{} -> {}",
        format,
        graph.node_count(),
        graph.edge_count(),
        bytes.len(),
        trailer,
        output.display()
    );
    Ok(out)
}

fn corrupt(msg: String) -> CliError {
    CliError::from(GraphError::Corrupt(msg))
}

/// Streams a `generate --stream` shard directory into a v4 image.
fn convert_stream_dir(dir: &Path, output: &Path, config: V4Config) -> Result<String, CliError> {
    let manifest = StreamManifest::read(dir)?;
    if manifest.nodes > u64::from(u32::MAX) {
        return Err(CliError::Format(format!(
            "manifest declares {} nodes; v4 images cap at u32::MAX",
            manifest.nodes
        )));
    }
    let n = manifest.nodes;
    let mut writer = V4Writer::new(BufWriter::new(File::create(output)?), n as usize, config)?;

    let tmp = PathBuf::from(format!("{}.transpose.tmp", output.display()));
    fs::create_dir_all(&tmp)?;
    let result = convert_stream_dir_inner(dir, &manifest, &tmp, &mut writer);
    // The temp buckets are pure scratch; remove them on every exit path.
    let _ = fs::remove_dir_all(&tmp);
    let summary = match result {
        Ok(()) => writer.finish()?,
        Err(e) => {
            let _ = fs::remove_file(output);
            return Err(e);
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "wrote v4 image: {} nodes, {} edges, {} bytes ({:.2} bits/edge over both orientations) -> {}",
        summary.node_count,
        summary.edge_count,
        summary.file_bytes,
        summary.bits_per_edge(),
        output.display()
    );
    Ok(out)
}

fn bucket_span(nodes: u64) -> u64 {
    nodes.div_ceil(TRANSPOSE_BUCKETS).max(1)
}

fn convert_stream_dir_inner(
    dir: &Path,
    manifest: &StreamManifest,
    tmp: &Path,
    writer: &mut V4Writer<BufWriter<File>>,
) -> Result<(), CliError> {
    let n = manifest.nodes;
    let span = bucket_span(n);
    let bucket_count = n.div_ceil(span);
    let mut buckets: Vec<BufWriter<File>> = (0..bucket_count)
        .map(|b| Ok(BufWriter::new(File::create(tmp.join(format!("b{b:03}.bin")))?)))
        .collect::<Result<_, std::io::Error>>()?;

    // Pass A: shards arrive sorted by (from, to); feed out-rows directly,
    // scattering the transposed pairs into to-range buckets on the way.
    let mut row: Vec<NodeId> = Vec::new();
    let mut pending_from: u64 = 0;
    let mut edges_seen: u64 = 0;
    for shard in manifest.shard_paths(dir) {
        let mut reader = BufReader::with_capacity(1 << 20, File::open(&shard)?);
        let mut pair = [0u8; 8];
        loop {
            match reader.read_exact(&mut pair) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e.into()),
            }
            let from = u64::from(u32::from_le_bytes(pair[..4].try_into().expect("4 bytes")));
            let to = u32::from_le_bytes(pair[4..].try_into().expect("4 bytes"));
            if from >= n || u64::from(to) >= n {
                return Err(corrupt(format!(
                    "shard {} edge ({from}, {to}) out of range for {n} nodes",
                    shard.display()
                )));
            }
            if from != pending_from {
                if from < pending_from {
                    return Err(corrupt(format!(
                        "shard {} is not sorted: source {from} after {pending_from}",
                        shard.display()
                    )));
                }
                writer.push_row(&row)?;
                row.clear();
                for _ in pending_from + 1..from {
                    writer.push_row(&[])?;
                }
                pending_from = from;
            } else if row.last().is_some_and(|last| last.0 >= to) {
                return Err(corrupt(format!(
                    "shard {} row {from} targets are not strictly increasing at {to}",
                    shard.display()
                )));
            }
            row.push(NodeId(to));
            buckets[(u64::from(to) / span) as usize].write_all(&[
                pair[4], pair[5], pair[6], pair[7], pair[0], pair[1], pair[2], pair[3],
            ])?;
            edges_seen += 1;
        }
    }
    writer.push_row(&row)?;
    for _ in pending_from + 1..n {
        writer.push_row(&[])?;
    }
    if edges_seen != manifest.edges {
        return Err(corrupt(format!(
            "manifest declares {} edges but shards hold {edges_seen}",
            manifest.edges
        )));
    }
    for w in &mut buckets {
        w.flush()?;
    }
    drop(buckets);
    writer.finish_out()?;

    // Pass B: one bucket at a time — read, sort by (to, from), feed the
    // bucket's node span as in-rows. Peak memory is the largest bucket.
    let mut sources: Vec<NodeId> = Vec::new();
    for b in 0..bucket_count {
        let lo = b * span;
        let hi = (lo + span).min(n);
        let bytes = fs::read(tmp.join(format!("b{b:03}.bin")))?;
        let mut pairs: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| {
                let to = u64::from(u32::from_le_bytes(c[..4].try_into().expect("4 bytes")));
                let from = u64::from(u32::from_le_bytes(c[4..].try_into().expect("4 bytes")));
                (to << 32) | from
            })
            .collect();
        pairs.sort_unstable();
        let mut idx = 0;
        for y in lo..hi {
            sources.clear();
            while idx < pairs.len() && pairs[idx] >> 32 == y {
                sources.push(NodeId(pairs[idx] as u32));
                idx += 1;
            }
            writer.push_row(&sources)?;
        }
        debug_assert_eq!(idx, pairs.len(), "bucket {b} held pairs outside [{lo}, {hi})");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{CompressedImage, GraphBuilder};
    use std::sync::Arc;

    fn tmp_dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("spammass-cli-convert");
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn run_argv(argv: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        run(&ParsedArgs::parse(&v).unwrap())
    }

    #[test]
    fn upgrades_v2_image_to_zero_copy_v3() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = tmp_dir();
        let v2 = d.join("old.bin");
        let v3 = d.join("new.bin");
        fs::write(&v2, io::graph_to_bytes(&g)).unwrap();
        let out =
            run_argv(&["convert", "--in", v2.to_str().unwrap(), "--out", v3.to_str().unwrap()])
                .unwrap();
        assert!(out.contains("wrote v3 image"), "{out}");
        let (loaded, stats) = io::map_graph_file(&v3).unwrap();
        assert_eq!(loaded.edge_count(), g.edge_count());
        assert_eq!(stats.version, 3);
        assert!(stats.is_zero_copy(), "{stats:?}");
    }

    #[test]
    fn converts_text_to_any_version_and_back_compat() {
        let d = tmp_dir();
        let txt = d.join("edges.txt");
        fs::write(&txt, "# nodes: 3\n0 1\n1 2\n").unwrap();
        for format in ["v1", "v2", "v3", "v4"] {
            let bin = d.join(format!("as_{format}.bin"));
            let out = run_argv(&[
                "convert",
                "--in",
                txt.to_str().unwrap(),
                "--out",
                bin.to_str().unwrap(),
                "--format",
                format,
            ])
            .unwrap();
            assert!(out.contains(&format!("wrote {format} image")), "{out}");
            let g = io::graph_from_bytes(&fs::read(&bin).unwrap()).unwrap();
            assert_eq!((g.node_count(), g.edge_count()), (3, 2));
        }
    }

    #[test]
    fn bakes_a_node_ordering_into_the_image() {
        let d = tmp_dir();
        let txt = d.join("hub.txt");
        // Node 3 has the highest out-degree, so degree order renumbers it 0.
        fs::write(&txt, "3 0\n3 1\n3 2\n0 1\n").unwrap();
        let bin = d.join("hub_degree.bin");
        let out = run_argv(&[
            "convert",
            "--in",
            txt.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap(),
            "--order",
            "degree",
        ])
        .unwrap();
        assert!(out.contains("renumbered into degree order"), "{out}");
        let g = io::graph_from_bytes(&fs::read(&bin).unwrap()).unwrap();
        assert_eq!(g.out_degree(spammass_graph::NodeId(0)), 3);
    }

    #[test]
    fn rejects_unknown_format_and_order() {
        let d = tmp_dir();
        let txt = d.join("e.txt");
        fs::write(&txt, "0 1\n").unwrap();
        let bin = d.join("e.bin");
        let bad_format = run_argv(&[
            "convert",
            "--in",
            txt.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap(),
            "--format",
            "v9",
        ]);
        assert!(matches!(bad_format, Err(CliError::Usage(_))));
        let bad_order = run_argv(&[
            "convert",
            "--in",
            txt.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap(),
            "--order",
            "random",
        ]);
        assert!(matches!(bad_order, Err(CliError::Usage(_))));
        let blocks_without_v4 = run_argv(&[
            "convert",
            "--in",
            txt.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap(),
            "--block-rows",
            "64",
        ]);
        assert!(matches!(blocks_without_v4, Err(CliError::Usage(_))));
    }

    #[test]
    fn shard_directory_converts_to_the_same_graph_as_in_memory_decode() {
        use spammass_synth::stream::{generate_stream, StreamConfig};
        let d = tmp_dir().join("stream-src");
        let _ = fs::remove_dir_all(&d);
        let config = StreamConfig {
            edges_per_shard: 10_000, // force several shards
            ..StreamConfig::sized(5_000)
        };
        generate_stream(&d, &config, 11).unwrap();
        let v4 = tmp_dir().join("streamed.v4");
        let out = run_argv(&[
            "convert",
            "--in",
            d.to_str().unwrap(),
            "--out",
            v4.to_str().unwrap(),
            "--format",
            "v4",
            "--block-rows",
            "512",
        ])
        .unwrap();
        assert!(out.contains("wrote v4 image: 5000 nodes"), "{out}");
        assert!(out.contains("bits/edge"), "{out}");
        assert!(!PathBuf::from(format!("{}.transpose.tmp", v4.display())).exists());

        // The streamed conversion and a plain in-memory rebuild from the
        // shards must describe the identical graph.
        let image = CompressedImage::from_store(Arc::new(fs::read(&v4).unwrap())).unwrap();
        let streamed = image.decode_graph().unwrap();
        let manifest = StreamManifest::read(&d).unwrap();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for shard in manifest.shard_paths(&d) {
            for pair in fs::read(&shard).unwrap().chunks_exact(8) {
                edges.push((
                    u32::from_le_bytes(pair[..4].try_into().unwrap()),
                    u32::from_le_bytes(pair[4..].try_into().unwrap()),
                ));
            }
        }
        let direct = GraphBuilder::from_edges(manifest.nodes as usize, &edges);
        assert_eq!(streamed.node_count(), direct.node_count());
        assert_eq!(streamed.edge_count(), direct.edge_count());
        for y in streamed.nodes() {
            assert_eq!(streamed.out_neighbors(y), direct.out_neighbors(y));
            assert_eq!(streamed.in_neighbors(y), direct.in_neighbors(y));
        }
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn directory_input_requires_v4_and_natural_order() {
        let d = tmp_dir().join("dir-req");
        fs::create_dir_all(&d).unwrap();
        let out = tmp_dir().join("x.bin");
        let as_v3 =
            run_argv(&["convert", "--in", d.to_str().unwrap(), "--out", out.to_str().unwrap()]);
        assert!(matches!(as_v3, Err(CliError::Usage(_))), "{as_v3:?}");
        let ordered = run_argv(&[
            "convert",
            "--in",
            d.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--format",
            "v4",
            "--order",
            "degree",
        ]);
        assert!(matches!(ordered, Err(CliError::Usage(_))), "{ordered:?}");
    }
}
