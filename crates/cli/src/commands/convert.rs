//! `spammass convert` — re-encode a graph between the text edge-list
//! format and the `SPAMGRPH` binary image versions.
//!
//! The main use is upgrading v1/v2 images (and text edge lists) to the v3
//! aligned-section format, whose CSR arrays memory-map zero-copy on load.

use crate::args::ParsedArgs;
use crate::loading::{ingest_warning, load_graph_with, node_ordering, read_options};
use crate::CliError;
use spammass_graph::{io, NodeOrdering, Permutation};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "in",
        "out",
        "format",
        "order",
        "lenient",
        "threads",
        "trace",
        "metrics-out",
    ])?;
    let opts = read_options(args)?;
    let input = Path::new(args.required("in")?);
    let output = Path::new(args.required("out")?);
    let format = args.optional("format").unwrap_or("v3");
    let ordering = node_ordering(args)?;

    let (graph, load_report) = load_graph_with(input, &opts)?;
    // Baking an ordering into the image renumbers nodes permanently, so
    // label files and core lists written against the original ids no
    // longer apply — worth it only for solver-only pipelines; say so.
    let graph = match ordering {
        NodeOrdering::Natural => graph,
        other => Permutation::compute(&graph, other).permute_graph(&graph),
    };
    let bytes = match format {
        "v1" => io::graph_to_bytes_v1(&graph),
        "v2" => io::graph_to_bytes(&graph),
        "v3" => io::graph_to_bytes_v3(&graph),
        other => return Err(CliError::Usage(format!("unknown --format {other:?} (v1, v2, v3)"))),
    };
    fs::write(output, &bytes)?;

    let mut out = String::new();
    if let Some(warn) = ingest_warning(load_report.as_ref()) {
        let _ = writeln!(out, "{warn}");
    }
    if ordering != NodeOrdering::Natural {
        let _ = writeln!(
            out,
            "note: nodes renumbered into {} order; labels/core files keyed by \
             original ids no longer apply to this image",
            ordering.name()
        );
    }
    let _ = writeln!(
        out,
        "wrote {} image: {} nodes, {} edges, {} bytes -> {}",
        format,
        graph.node_count(),
        graph.edge_count(),
        bytes.len(),
        output.display()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;

    fn tmp_dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("spammass-cli-convert");
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn run_argv(argv: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        run(&ParsedArgs::parse(&v).unwrap())
    }

    #[test]
    fn upgrades_v2_image_to_zero_copy_v3() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = tmp_dir();
        let v2 = d.join("old.bin");
        let v3 = d.join("new.bin");
        fs::write(&v2, io::graph_to_bytes(&g)).unwrap();
        let out =
            run_argv(&["convert", "--in", v2.to_str().unwrap(), "--out", v3.to_str().unwrap()])
                .unwrap();
        assert!(out.contains("wrote v3 image"), "{out}");
        let (loaded, stats) = io::map_graph_file(&v3).unwrap();
        assert_eq!(loaded.edge_count(), g.edge_count());
        assert_eq!(stats.version, 3);
        assert!(stats.is_zero_copy(), "{stats:?}");
    }

    #[test]
    fn converts_text_to_any_version_and_back_compat() {
        let d = tmp_dir();
        let txt = d.join("edges.txt");
        fs::write(&txt, "# nodes: 3\n0 1\n1 2\n").unwrap();
        for format in ["v1", "v2", "v3"] {
            let bin = d.join(format!("as_{format}.bin"));
            let out = run_argv(&[
                "convert",
                "--in",
                txt.to_str().unwrap(),
                "--out",
                bin.to_str().unwrap(),
                "--format",
                format,
            ])
            .unwrap();
            assert!(out.contains(&format!("wrote {format} image")), "{out}");
            let g = io::graph_from_bytes(&fs::read(&bin).unwrap()).unwrap();
            assert_eq!((g.node_count(), g.edge_count()), (3, 2));
        }
    }

    #[test]
    fn bakes_a_node_ordering_into_the_image() {
        let d = tmp_dir();
        let txt = d.join("hub.txt");
        // Node 3 has the highest out-degree, so degree order renumbers it 0.
        fs::write(&txt, "3 0\n3 1\n3 2\n0 1\n").unwrap();
        let bin = d.join("hub_degree.bin");
        let out = run_argv(&[
            "convert",
            "--in",
            txt.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap(),
            "--order",
            "degree",
        ])
        .unwrap();
        assert!(out.contains("renumbered into degree order"), "{out}");
        let g = io::graph_from_bytes(&fs::read(&bin).unwrap()).unwrap();
        assert_eq!(g.out_degree(spammass_graph::NodeId(0)), 3);
    }

    #[test]
    fn rejects_unknown_format_and_order() {
        let d = tmp_dir();
        let txt = d.join("e.txt");
        fs::write(&txt, "0 1\n").unwrap();
        let bin = d.join("e.bin");
        let bad_format = run_argv(&[
            "convert",
            "--in",
            txt.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap(),
            "--format",
            "v9",
        ]);
        assert!(matches!(bad_format, Err(CliError::Usage(_))));
        let bad_order = run_argv(&[
            "convert",
            "--in",
            txt.to_str().unwrap(),
            "--out",
            bin.to_str().unwrap(),
            "--order",
            "random",
        ]);
        assert!(matches!(bad_order, Err(CliError::Usage(_))));
    }
}
