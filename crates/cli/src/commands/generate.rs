//! `spammass generate` — write a synthetic host graph (plus labels,
//! ground truth, and a Section 4.2 core list) to disk.

use crate::args::ParsedArgs;
use crate::CliError;
use spammass_graph::io;
use spammass_synth::scenario::{Scenario, ScenarioConfig};
use spammass_synth::stream::{generate_stream, StreamConfig};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "hosts",
        "seed",
        "out",
        "labels",
        "truth",
        "core",
        "evolve",
        "journal",
        "stream",
        "trace",
        "metrics-out",
    ])?;
    if let Some(dir) = args.optional("stream") {
        return run_stream(args, dir);
    }
    let hosts: usize = args.parsed_or("hosts", 60_000)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let evolve: usize = args.parsed_or("evolve", 0)?;
    if evolve > 0 && args.optional("journal").is_none() {
        return Err(CliError::Usage("--evolve requires --journal FILE".into()));
    }
    let out = Path::new(args.required("out")?);

    let config = ScenarioConfig::sized(hosts).with_evolve_steps(evolve);
    let scenario = Scenario::generate(&config, seed);
    fs::write(out, io::graph_to_bytes(&scenario.graph))?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "generated {} hosts / {} edges (seed {seed}, spam fraction {:.1}%)",
        scenario.graph.node_count(),
        scenario.graph.edge_count(),
        scenario.spam_fraction() * 100.0
    );
    let _ = writeln!(report, "graph written to {}", out.display());

    if let Some(path) = args.optional("labels") {
        let file = fs::File::create(path)?;
        io::write_labels(&scenario.labels, file)?;
        let _ = writeln!(report, "labels written to {path}");
    }
    if let Some(path) = args.optional("truth") {
        let mut text = String::from("# node\tis_spam\n");
        for (node, class) in scenario.truth.iter() {
            let _ = writeln!(text, "{}\t{}", node.0, u8::from(class.is_spam()));
        }
        fs::write(path, text)?;
        let _ = writeln!(report, "ground truth written to {path}");
    }
    if let Some(path) = args.optional("core") {
        let mut text = String::from("# Section 4.2 good core (node ids)\n");
        for node in scenario.section_4_2_core() {
            let _ = writeln!(text, "{}", node.0);
        }
        fs::write(path, text)?;
        let _ = writeln!(report, "good core written to {path}");
    }
    if evolve > 0 {
        let path = args.optional("journal").expect("checked above");
        let ev = scenario.evolve(&config, seed);
        fs::write(path, ev.journal_bytes())?;
        let _ = writeln!(
            report,
            "evolution journal written to {path}: {} steps, {} records, {} new spam hosts",
            ev.steps.len(),
            ev.all_records().len(),
            ev.new_spam().len()
        );
    }
    Ok(report)
}

/// `--stream DIR`: the out-of-core generator. Emits edge shards plus
/// truth/core/manifest straight into `DIR` without ever materializing
/// the graph, so host counts in the tens of millions are fine. Convert
/// the shard directory to a queryable image with
/// `spammass convert --in DIR --format v4`.
fn run_stream(args: &ParsedArgs, dir: &str) -> Result<String, CliError> {
    for flag in ["out", "labels", "truth", "core", "evolve", "journal"] {
        if args.optional(flag).is_some() {
            return Err(CliError::Usage(format!(
                "--stream writes the whole scenario into its directory; --{flag} does not apply"
            )));
        }
    }
    let hosts: u64 = args.parsed_or("hosts", 1_000_000)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let config = StreamConfig::sized(hosts);
    let summary = generate_stream(Path::new(dir), &config, seed)?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "streamed {} hosts / {} edges into {} shard(s) (seed {seed}, {} spam hosts)",
        summary.hosts,
        summary.edges,
        summary.shards,
        summary.hosts - summary.spam_boundary,
    );
    let _ = writeln!(
        report,
        "scenario written to {dir}: manifest.tsv, edges-*.bin, truth.tsv, core.txt ({} core hosts)",
        summary.core_size
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loading::{load_core, load_graph, load_labels};

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("spammass-cli-generate");
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn generates_all_artifacts_round_trippable() {
        let d = tmpdir();
        let graph = d.join("web.graph");
        let labels = d.join("hosts.txt");
        let truth = d.join("truth.tsv");
        let core = d.join("core.txt");
        let args = ParsedArgs::parse(
            &[
                "generate",
                "--hosts",
                "2000",
                "--seed",
                "7",
                "--out",
                graph.to_str().unwrap(),
                "--labels",
                labels.to_str().unwrap(),
                "--truth",
                truth.to_str().unwrap(),
                "--core",
                core.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("graph written"));

        let g = load_graph(&graph).unwrap();
        assert!(g.node_count() >= 1900, "nodes: {}", g.node_count());
        let l = load_labels(&labels).unwrap();
        assert_eq!(l.len(), g.node_count());
        let c = load_core(&core, Some(&l), g.node_count()).unwrap();
        assert!(!c.nodes.is_empty());
        assert!(c.duplicates.is_empty());

        let truth_text = fs::read_to_string(&truth).unwrap();
        // header + one line per node
        assert_eq!(truth_text.lines().count(), g.node_count() + 1);
    }

    #[test]
    fn evolve_writes_a_readable_journal() {
        let d = tmpdir();
        let graph = d.join("evolve.graph");
        let journal = d.join("evolve.journal");
        let args = ParsedArgs::parse(
            &[
                "generate",
                "--hosts",
                "2000",
                "--seed",
                "9",
                "--out",
                graph.to_str().unwrap(),
                "--evolve",
                "2",
                "--journal",
                journal.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("evolution journal written"), "{report}");
        let batches = spammass_delta::read_journal(&fs::read(&journal).unwrap()).unwrap();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn evolve_without_journal_is_a_usage_error() {
        let args = ParsedArgs::parse(
            &["generate", "--hosts", "500", "--out", "/tmp/x.graph", "--evolve", "2"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn stream_mode_writes_a_shard_directory() {
        let d = tmpdir().join("streamed");
        let _ = fs::remove_dir_all(&d);
        let args = ParsedArgs::parse(
            &["generate", "--stream", d.to_str().unwrap(), "--hosts", "4000", "--seed", "3"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("streamed 4000 hosts"), "{report}");
        let manifest = spammass_synth::stream::StreamManifest::read(&d).unwrap();
        assert_eq!(manifest.nodes, 4000);
        assert!(manifest.edges > 4000);
        for path in manifest.shard_paths(&d) {
            assert!(path.is_file(), "missing shard {}", path.display());
        }
        assert!(d.join("truth.tsv").is_file());
        assert!(d.join("core.txt").is_file());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn stream_mode_rejects_materializing_flags() {
        let args = ParsedArgs::parse(
            &["generate", "--stream", "/tmp/x", "--out", "/tmp/y.graph"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_unknown_flags() {
        let args = ParsedArgs::parse(
            &["generate", "--hostz", "10", "--out", "x"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(run(&args).is_err());
    }
}
