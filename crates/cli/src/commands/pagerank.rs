//! `spammass pagerank` — solve PageRank and print the top hosts.

use crate::args::ParsedArgs;
use crate::loading::{display_node, load_graph, load_labels};
use crate::CliError;
use spammass_pagerank::{gauss_seidel, jacobi, parallel, power, JumpVector, PageRankConfig};
use std::fmt::Write as _;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["graph", "solver", "damping", "tolerance", "top", "labels"])?;
    let graph = load_graph(Path::new(args.required("graph")?))?;
    let labels = match args.optional("labels") {
        Some(p) => Some(load_labels(Path::new(p))?),
        None => None,
    };
    let damping: f64 = args.parsed_or("damping", 0.85)?;
    let tolerance: f64 = args.parsed_or("tolerance", 1e-12)?;
    let top: usize = args.parsed_or("top", 20)?;
    let solver = args.optional("solver").unwrap_or("jacobi");

    let cfg = PageRankConfig::with_damping(damping).tolerance(tolerance).max_iterations(500);
    cfg.validate().map_err(|e| CliError::Usage(e.to_string()))?;
    let jump = JumpVector::Uniform;
    let result = match solver {
        "jacobi" => jacobi::solve_jacobi(&graph, &jump, &cfg),
        "gauss-seidel" => gauss_seidel::solve_gauss_seidel(&graph, &jump, &cfg),
        "power" => power::solve_power(&graph, &jump, &cfg),
        "parallel" => parallel::solve_parallel_jacobi(&graph, &jump, &cfg),
        other => {
            return Err(CliError::Usage(format!(
                "unknown solver {other:?} (jacobi, gauss-seidel, power, parallel)"
            )))
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{solver}: {} iterations, residual {:.2e}, converged: {}",
        result.iterations, result.residual, result.converged
    );
    if solver == "power" {
        let _ = writeln!(
            out,
            "note: power iteration returns the normalized stationary distribution;\n\
             the n/(1-c) display scale matches the linear solvers only on\n\
             dangling-free graphs"
        );
    }
    let view = result.scores_view(&cfg);
    let _ = writeln!(out, "{:>6}  {:>12}  host", "rank", "scaled p");
    for (rank, (node, _)) in view.top_k(top).into_iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>6}  {:>12.2}  {}",
            rank + 1,
            view.scaled(node),
            display_node(labels.as_ref(), node)
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{io, GraphBuilder};

    fn graph_file() -> std::path::PathBuf {
        let g = GraphBuilder::from_edges(4, &[(0, 3), (1, 3), (2, 3)]);
        let d = std::env::temp_dir().join("spammass-cli-pagerank");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("g.bin");
        std::fs::write(&p, io::graph_to_bytes(&g)).unwrap();
        p
    }

    fn run_with(extra: &[&str]) -> Result<String, CliError> {
        let p = graph_file();
        let mut v = vec!["pagerank".to_string(), "--graph".to_string(), p.to_str().unwrap().to_string()];
        v.extend(extra.iter().map(|s| s.to_string()));
        run(&ParsedArgs::parse(&v).unwrap())
    }

    #[test]
    fn all_solvers_rank_the_hub_first() {
        for solver in ["jacobi", "gauss-seidel", "power", "parallel"] {
            let out = run_with(&["--solver", solver, "--top", "1"]).unwrap();
            let hub_line = out
                .lines()
                .find(|l| l.trim_start().starts_with("1 "))
                .unwrap_or_else(|| panic!("{solver}: no rank line in {out:?}"));
            assert!(hub_line.trim_end().ends_with('3'), "{solver}: {hub_line}");
        }
    }

    #[test]
    fn rejects_bad_solver_and_damping() {
        assert!(matches!(run_with(&["--solver", "magic"]), Err(CliError::Usage(_))));
        assert!(matches!(run_with(&["--damping", "1.5"]), Err(CliError::Usage(_))));
    }
}
