//! `spammass pagerank` — solve PageRank and print the top hosts.

use crate::args::ParsedArgs;
use crate::loading::{
    display_node, ingest_warning, load_graph_with, load_labels, node_ordering, read_options,
};
use crate::CliError;
use spammass_graph::{NodeOrdering, Permutation};
use spammass_pagerank::{JumpVector, KernelKind, PageRankConfig, SolverChain, SolverKind};
use std::fmt::Write as _;
use std::path::Path;

fn solver_kind(name: &str) -> Result<SolverKind, CliError> {
    match name {
        "jacobi" => Ok(SolverKind::Jacobi),
        "gauss-seidel" => Ok(SolverKind::GaussSeidel),
        "power" => Ok(SolverKind::Power),
        "parallel" => Ok(SolverKind::ParallelJacobi),
        other => Err(CliError::Usage(format!(
            "unknown solver {other:?} (jacobi, gauss-seidel, power, parallel)"
        ))),
    }
}

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "graph",
        "solver",
        "damping",
        "tolerance",
        "top",
        "threads",
        "edges-per-thread",
        "kernel",
        "labels",
        "order",
        "lenient",
        "fallback",
        "trace",
        "metrics-out",
        "serve-metrics",
        "serve-linger",
        "crash-dump",
    ])?;
    let opts = read_options(args)?;
    let (graph, load_report) = load_graph_with(Path::new(args.required("graph")?), &opts)?;
    // Solve in the requested cache-friendly layout; scores are mapped
    // back below so ranks and labels stay in original node ids.
    let ordering = node_ordering(args)?;
    let perm = match ordering {
        NodeOrdering::Natural => None,
        other => Some(Permutation::compute(&graph, other)),
    };
    let graph = match &perm {
        None => graph,
        Some(p) => p.permute_graph(&graph),
    };
    let labels = match args.optional("labels") {
        Some(p) => Some(load_labels(Path::new(p))?),
        None => None,
    };
    let damping: f64 = args.parsed_or("damping", 0.85)?;
    let tolerance: f64 = args.parsed_or("tolerance", 1e-12)?;
    let top: usize = args.parsed_or("top", 20)?;
    let fallback: bool = args.parsed_or("fallback", false)?;
    let threads: usize = args.parsed_or("threads", 0)?;
    let edges_per_thread: usize = args.parsed_or("edges-per-thread", 0)?;
    let kernel: KernelKind = match args.optional("kernel") {
        Some(v) => v.parse().map_err(CliError::Usage)?,
        None => KernelKind::Auto,
    };
    let solver = args.optional("solver").unwrap_or("jacobi");
    let kind = solver_kind(solver)?;

    let cfg = PageRankConfig::with_damping(damping)
        .tolerance(tolerance)
        .max_iterations(500)
        .threads(threads)
        .edges_per_thread(edges_per_thread)
        .kernel(kernel);
    cfg.validate().map_err(|e| CliError::Usage(e.to_string()))?;
    let jump = JumpVector::Uniform;

    let mut out = String::new();
    if let Some(warn) = ingest_warning(load_report.as_ref()) {
        let _ = writeln!(out, "{warn}");
    }

    let mut result = if fallback {
        // Chosen solver first, then the hardened fallback attempts.
        let mut chain = SolverChain::new(kind, cfg);
        for (s, c) in SolverChain::recommended(cfg).attempts().iter().skip(1) {
            chain = chain.then(*s, *c);
        }
        let solve = chain.solve(&graph, &jump)?;
        if solve.degraded() {
            for attempt in &solve.attempts {
                let _ = writeln!(out, "attempt: {attempt}");
            }
        }
        solve.result
    } else {
        kind.solve(&graph, &jump, &cfg).map_err(|e| {
            CliError::Compute(format!("{e}; rerun with --fallback true to retry harder"))
        })?
    };
    if let Some(p) = &perm {
        result.scores = p.restore_values(&result.scores);
    }

    let _ = writeln!(
        out,
        "{solver}: {} iterations, residual {:.2e}, converged: {}",
        result.iterations, result.residual, result.converged
    );
    if solver == "power" {
        let _ = writeln!(
            out,
            "note: power iteration returns the normalized stationary distribution;\n\
             the n/(1-c) display scale matches the linear solvers only on\n\
             dangling-free graphs"
        );
    }
    let view = result.scores_view(&cfg);
    let _ = writeln!(out, "{:>6}  {:>12}  host", "rank", "scaled p");
    for (rank, (node, _)) in view.top_k(top).into_iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>6}  {:>12.2}  {}",
            rank + 1,
            view.scaled(node),
            display_node(labels.as_ref(), node)
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{io, GraphBuilder};

    fn graph_file() -> std::path::PathBuf {
        let g = GraphBuilder::from_edges(4, &[(0, 3), (1, 3), (2, 3)]);
        let d = std::env::temp_dir().join("spammass-cli-pagerank");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("g.bin");
        std::fs::write(&p, io::graph_to_bytes(&g)).unwrap();
        p
    }

    fn run_with(extra: &[&str]) -> Result<String, CliError> {
        let p = graph_file();
        let mut v =
            vec!["pagerank".to_string(), "--graph".to_string(), p.to_str().unwrap().to_string()];
        v.extend(extra.iter().map(|s| s.to_string()));
        run(&ParsedArgs::parse(&v).unwrap())
    }

    #[test]
    fn all_solvers_rank_the_hub_first() {
        for solver in ["jacobi", "gauss-seidel", "power", "parallel"] {
            let out = run_with(&["--solver", solver, "--top", "1"]).unwrap();
            let hub_line = out
                .lines()
                .find(|l| l.trim_start().starts_with("1 "))
                .unwrap_or_else(|| panic!("{solver}: no rank line in {out:?}"));
            assert!(hub_line.trim_end().ends_with('3'), "{solver}: {hub_line}");
        }
    }

    #[test]
    fn rejects_bad_solver_and_damping() {
        assert!(matches!(run_with(&["--solver", "magic"]), Err(CliError::Usage(_))));
        assert!(matches!(run_with(&["--damping", "1.5"]), Err(CliError::Usage(_))));
    }

    fn cycle_file() -> std::path::PathBuf {
        // Bipartite star with unequal sides ({0} vs {1, 2}): the
        // transition matrix has eigenvalue -1 and the uniform jump vector
        // is unbalanced across the bipartition, so the Jacobi residual
        // decays at exactly rate c per iteration. Damping close to 1
        // therefore cannot converge within the command's 500-iteration
        // cap, while the fallback chain's relaxed-damping attempt can.
        let g = GraphBuilder::from_edges(3, &[(0, 1), (0, 2), (1, 0), (2, 0)]);
        let d = std::env::temp_dir().join("spammass-cli-pagerank");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("cycle.bin");
        std::fs::write(&p, io::graph_to_bytes(&g)).unwrap();
        p
    }

    fn run_on(path: &std::path::Path, extra: &[&str]) -> Result<String, CliError> {
        let mut v =
            vec!["pagerank".to_string(), "--graph".to_string(), path.to_str().unwrap().to_string()];
        v.extend(extra.iter().map(|s| s.to_string()));
        run(&ParsedArgs::parse(&v).unwrap())
    }

    #[test]
    fn non_convergence_is_a_typed_failure_with_hint() {
        let err = run_on(&cycle_file(), &["--damping", "0.999999999"]).unwrap_err();
        match err {
            CliError::Compute(m) => {
                assert!(m.contains("did not converge"), "{m}");
                assert!(m.contains("--fallback"), "{m}");
            }
            other => panic!("expected Compute error, got {other:?}"),
        }
    }

    #[test]
    fn fallback_chain_recovers_and_reports_attempts() {
        // The primary and Gauss–Seidel attempts drown at c ≈ 1; the
        // relaxed-damping attempt converges and every attempt is reported.
        let out =
            run_on(&cycle_file(), &["--damping", "0.999999999", "--fallback", "true"]).unwrap();
        assert!(out.contains("attempt:"), "{out}");
        assert!(out.contains("did not converge"), "{out}");
        assert!(out.contains("converged in"), "{out}");
        assert!(out.contains("converged: true"), "{out}");
        // Healthy run with fallback enabled: no attempt chatter.
        let quiet = run_with(&["--fallback", "true"]).unwrap();
        assert!(!quiet.contains("attempt:"), "{quiet}");
        assert!(quiet.contains("converged: true"), "{quiet}");
    }

    #[test]
    fn lenient_flag_surfaces_skipped_lines() {
        let d = std::env::temp_dir().join("spammass-cli-pagerank");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("messy.txt");
        std::fs::write(&p, "0 1\nnot an edge\n1 0\n").unwrap();
        let argv: Vec<String> = ["pagerank", "--graph", p.to_str().unwrap(), "--lenient", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = run(&ParsedArgs::parse(&argv).unwrap()).unwrap();
        assert!(out.contains("warning:"), "{out}");
        assert!(out.contains("1 skipped"), "{out}");
    }
}
