//! `spammass bench-diff` — compare two `BENCH_*.json` documents and
//! report per-bench median deltas.
//!
//! `scripts/bench.sh` writes machine-readable benchmark medians; this
//! subcommand turns two such files (an old baseline and a new run) into
//! a human-readable delta table. A bench whose median regressed by more
//! than `--threshold` percent fails the command (exit nonzero) unless
//! `--report-only true`, which is how CI runs it: the table lands in the
//! log without coupling the gate to the noise floor of a shared runner.

use crate::args::ParsedArgs;
use crate::CliError;
use spammass_obs as obs;
use std::fmt::Write as _;
use std::path::Path;

/// One bench entry: name and median nanoseconds.
type Bench = (String, f64);

fn load_benches(path: &Path) -> Result<Vec<Bench>, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        CliError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))
    })?;
    let doc = obs::Json::parse(&text)
        .map_err(|e| CliError::Format(format!("{}: {e}", path.display())))?;
    let benches = doc
        .get("benches")
        .and_then(obs::Json::as_arr)
        .ok_or_else(|| CliError::Format(format!("{}: no \"benches\" array", path.display())))?;
    let mut out = Vec::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(obs::Json::as_str)
            .ok_or_else(|| CliError::Format(format!("{}: bench without a name", path.display())))?;
        let median = b.get("median_ns").and_then(obs::Json::as_f64).ok_or_else(|| {
            CliError::Format(format!("{}: bench {name:?} without median_ns", path.display()))
        })?;
        out.push((name.to_string(), median));
    }
    Ok(out)
}

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["old", "new", "threshold", "report-only", "trace", "metrics-out"])?;
    let threshold: f64 = args.parsed_or("threshold", 10.0)?;
    if !threshold.is_finite() || threshold < 0.0 {
        return Err(CliError::Usage(format!("--threshold {threshold} must be >= 0")));
    }
    let report_only: bool = args.parsed_or("report-only", false)?;
    let old_path = Path::new(args.required("old")?);
    let new_path = Path::new(args.required("new")?);
    let old = load_benches(old_path)?;
    let new = load_benches(new_path)?;

    let width = new.iter().chain(&old).map(|(n, _)| n.len()).max().unwrap_or(5).max(5);
    let mut out = String::new();
    let _ = writeln!(out, "{:<width$} {:>10} {:>10} {:>8}", "bench", "old", "new", "delta");
    let mut regressions = Vec::new();
    for (name, new_ns) in &new {
        let Some((_, old_ns)) = old.iter().find(|(n, _)| n == name) else {
            let _ = writeln!(
                out,
                "{name:<width$} {:>10} {:>10} {:>8}",
                "-",
                obs::format_ns(*new_ns as u64),
                "new"
            );
            continue;
        };
        let delta_pct = if *old_ns > 0.0 { (new_ns - old_ns) / old_ns * 100.0 } else { 0.0 };
        let marker = if delta_pct > threshold { " REGRESSED" } else { "" };
        let _ = writeln!(
            out,
            "{name:<width$} {:>10} {:>10} {:>+7.1}%{marker}",
            obs::format_ns(*old_ns as u64),
            obs::format_ns(*new_ns as u64),
            delta_pct
        );
        if delta_pct > threshold {
            regressions.push(format!("{name} {delta_pct:+.1}%"));
        }
    }
    for (name, _) in &old {
        if !new.iter().any(|(n, _)| n == name) {
            let _ = writeln!(out, "{name:<width$} {:>10} {:>10} {:>8}", "", "-", "removed");
        }
    }
    if regressions.is_empty() {
        let _ = writeln!(out, "no regressions beyond {threshold}%");
    } else {
        let _ = writeln!(
            out,
            "{} bench(es) regressed beyond {threshold}%: {}",
            regressions.len(),
            regressions.join(", ")
        );
        if !report_only {
            return Err(CliError::Compute(format!(
                "bench regressions beyond {threshold}%: {}",
                regressions.join(", ")
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn write_bench(name: &str, entries: &[(&str, u64)]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("spammass-cli-bench-diff");
        fs::create_dir_all(&dir).unwrap();
        let mut doc = String::from("{\n  \"schema\": \"spammass.bench/v1\",\n  \"benches\": [\n");
        for (i, (bench, ns)) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            doc.push_str(&format!(
                "    {{\"name\":\"{bench}\",\"median_ns\":{ns},\"samples\":5}}{comma}\n"
            ));
        }
        doc.push_str("  ]\n}\n");
        let path = dir.join(name);
        fs::write(&path, doc).unwrap();
        path
    }

    fn parse(args: &[&str]) -> ParsedArgs {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&v).unwrap()
    }

    #[test]
    fn reports_deltas_and_passes_within_threshold() {
        let old = write_bench("old_ok.json", &[("solve/a", 100_000_000), ("solve/b", 50_000)]);
        let new = write_bench("new_ok.json", &[("solve/a", 104_000_000), ("solve/b", 50_000)]);
        let args =
            parse(&["bench-diff", "--old", old.to_str().unwrap(), "--new", new.to_str().unwrap()]);
        let out = run(&args).unwrap();
        assert!(out.contains("solve/a"), "{out}");
        assert!(out.contains("+4.0%"), "{out}");
        assert!(out.contains("no regressions beyond 10%"), "{out}");
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let old = write_bench("old_reg.json", &[("solve/a", 100_000_000)]);
        let new = write_bench("new_reg.json", &[("solve/a", 130_000_000)]);
        let args = parse(&[
            "bench-diff",
            "--old",
            old.to_str().unwrap(),
            "--new",
            new.to_str().unwrap(),
            "--threshold",
            "20",
        ]);
        match run(&args) {
            Err(CliError::Compute(msg)) => assert!(msg.contains("solve/a"), "{msg}"),
            other => panic!("expected a compute error, got {other:?}"),
        }
    }

    #[test]
    fn report_only_downgrades_regressions_to_text() {
        let old = write_bench("old_ro.json", &[("solve/a", 100_000_000)]);
        let new = write_bench("new_ro.json", &[("solve/a", 200_000_000)]);
        let args = parse(&[
            "bench-diff",
            "--old",
            old.to_str().unwrap(),
            "--new",
            new.to_str().unwrap(),
            "--report-only",
            "true",
        ]);
        let out = run(&args).unwrap();
        assert!(out.contains("REGRESSED"), "{out}");
        assert!(out.contains("1 bench(es) regressed"), "{out}");
    }

    #[test]
    fn added_and_removed_benches_are_listed() {
        let old = write_bench("old_ar.json", &[("solve/gone", 1_000)]);
        let new = write_bench("new_ar.json", &[("solve/fresh", 2_000)]);
        let args =
            parse(&["bench-diff", "--old", old.to_str().unwrap(), "--new", new.to_str().unwrap()]);
        let out = run(&args).unwrap();
        assert!(out.contains("solve/fresh"), "{out}");
        assert!(out.contains("new"), "{out}");
        assert!(out.contains("solve/gone"), "{out}");
        assert!(out.contains("removed"), "{out}");
    }

    #[test]
    fn missing_benches_array_is_a_format_error() {
        let dir = std::env::temp_dir().join("spammass-cli-bench-diff");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "{\"schema\": \"x\"}").unwrap();
        let args = parse(&[
            "bench-diff",
            "--old",
            path.to_str().unwrap(),
            "--new",
            path.to_str().unwrap(),
        ]);
        assert!(matches!(run(&args), Err(CliError::Format(_))));
    }
}
