//! # spammass-bench
//!
//! Criterion benchmarks for the spam-mass reproduction. The crate's
//! library part provides shared fixtures; the benches live in `benches/`:
//!
//! * `pagerank` — Jacobi vs Gauss–Seidel vs power iteration vs parallel
//!   Jacobi (validates the paper's "linear solvers are regularly faster"
//!   remark).
//! * `contribution` — single-node and node-set PageRank contributions.
//! * `mass_pipeline` — the two-PageRank mass estimation end to end.
//! * `detection` — Algorithm 2 threshold sweeps.
//! * `graph_build` — edge-list ingestion and CSR layout, plus I/O.
//! * `synth_generation` — synthetic web generation.
//! * `fig4_pipeline`, `fig5_cores`, `fig6_distribution` — regeneration
//!   cost of the corresponding paper figures.

use spammass_core::GoodCore;
use spammass_graph::Graph;
use spammass_synth::scenario::{Scenario, ScenarioConfig};

/// A generated scenario plus its Section 4.2 core, shared by benches.
pub struct Fixture {
    /// The scenario.
    pub scenario: Scenario,
    /// The good core.
    pub core: GoodCore,
}

impl Fixture {
    /// Builds a deterministic fixture with roughly `hosts` hosts.
    pub fn new(hosts: usize) -> Fixture {
        let scenario = Scenario::generate(&ScenarioConfig::sized(hosts), 0xBEEF);
        let core = GoodCore::from_nodes(scenario.section_4_2_core());
        Fixture { scenario, core }
    }

    /// The graph.
    pub fn graph(&self) -> &Graph {
        &self.scenario.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let f = Fixture::new(2_000);
        assert!(f.graph().node_count() >= 2_000);
        assert!(!f.core.is_empty());
    }
}
