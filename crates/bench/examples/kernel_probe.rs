//! Quick kernel A/B probe: times the pooled solve under each gather
//! kernel on the acceptance fixture. Not part of the bench suite —
//! `cargo run --release -p spammass-bench --example kernel_probe [hosts]`.

use spammass_bench::Fixture;
use spammass_pagerank::{parallel, JumpVector, KernelKind, PageRankConfig};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let hosts: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(120_000);
    let reps: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(3);
    let fixture = Fixture::new(hosts);
    let natural = fixture.graph();
    let degree_ordered = spammass_graph::Permutation::compute(
        natural,
        spammass_graph::NodeOrdering::DegreeDescending,
    )
    .permute_graph(natural);
    let g = if std::env::args().any(|a| a == "--degree") { &degree_ordered } else { natural };
    println!(
        "{} nodes, {} edges{}",
        g.node_count(),
        g.edge_count(),
        if std::ptr::eq(g, natural) { "" } else { " (degree-ordered)" }
    );
    let jump = JumpVector::Uniform;
    // Interleave the kernels rep by rep so slow host drift (thermal,
    // cgroup neighbors) cancels out of the comparison.
    for threads in [1usize, 4] {
        let mut scalar = Vec::new();
        let mut unrolled = Vec::new();
        for _ in 0..reps {
            for (kernel, times) in
                [(KernelKind::Scalar, &mut scalar), (KernelKind::Unrolled4, &mut unrolled)]
            {
                let cfg = PageRankConfig::default()
                    .tolerance(1e-10)
                    .max_iterations(200)
                    .threads(threads)
                    .kernel(kernel);
                let t = Instant::now();
                black_box(parallel::solve_parallel_jacobi(g, &jump, &cfg).unwrap());
                times.push(t.elapsed().as_secs_f64() * 1e3);
            }
        }
        scalar.sort_by(f64::total_cmp);
        unrolled.sort_by(f64::total_cmp);
        let (s, u) = (scalar[scalar.len() / 2], unrolled[unrolled.len() / 2]);
        println!("scalar_{threads}t:   median {s:.1} ms  (all: {scalar:.1?})");
        println!("unrolled_{threads}t: median {u:.1} ms  (all: {unrolled:.1?})");
        println!("  -> unrolled vs scalar: {:+.1}%", (u - s) / s * 100.0);
    }
}
