//! PageRank-contribution computation (Theorems 1-2): single node, node
//! set, and the walk-sum reference evaluator.

use criterion::{criterion_group, criterion_main, Criterion};
use spammass_bench::Fixture;
use spammass_graph::NodeId;
use spammass_pagerank::contribution::{
    contribution_of_node, contribution_of_set, walk_sum_truncated,
};
use spammass_pagerank::PageRankConfig;
use std::hint::black_box;

fn config() -> PageRankConfig {
    PageRankConfig::default().tolerance(1e-10).max_iterations(200)
}

fn bench_contributions(c: &mut Criterion) {
    let fixture = Fixture::new(10_000);
    let g = fixture.graph();
    let n = g.node_count();
    let cfg = config();
    let v_x = 1.0 / n as f64;

    c.bench_function("contribution_single_node_10k", |b| {
        b.iter(|| black_box(contribution_of_node(g, NodeId(0), v_x, &cfg)))
    });

    let set: Vec<NodeId> = fixture.core.as_vec();
    c.bench_function("contribution_core_set_10k", |b| {
        b.iter(|| black_box(contribution_of_set(g, &set, &cfg)))
    });

    c.bench_function("walk_sum_truncated_10k_len100", |b| {
        b.iter(|| black_box(walk_sum_truncated(g, NodeId(0), v_x, 0.85, 100)))
    });
}

criterion_group!(benches, bench_contributions);
criterion_main!(benches);
