//! Cache-aware layout: node reordering and zero-copy image loading.
//!
//! The acceptance workload of the graph layout subsystem: on a ~120k-host
//! / ≥1M-edge synthetic web, the fused gather kernel is measured on the
//! natural layout versus the degree-descending and hub-first BFS
//! permutations, and loading a v3 image through the memory-mapped
//! zero-copy path is measured against the owned v2 decode. One
//! verification pass prints a `BENCH_LAYOUT {...}` JSON line for
//! `scripts/bench.sh` to collect and asserts:
//!
//! * reordered solves reproduce natural-order scores exactly (≤1e-12
//!   after inverse mapping) — always;
//! * the best reordering beats natural order by ≥15% median, and 4
//!   configured threads are not slower than 1 — only in timed runs on
//!   hosts with ≥4 hardware threads (the auto-sizer may resolve both
//!   requests to one worker, and an oversubscribed 1-core host
//!   legitimately pays for 4 workers), never in `--test` mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spammass_bench::Fixture;
use spammass_graph::io::{graph_from_bytes, graph_to_bytes, graph_to_bytes_v3, map_graph_file};
use spammass_graph::{Graph, NodeOrdering, Permutation};
use spammass_pagerank::{parallel, JumpVector, PageRankConfig};
use std::hint::black_box;
use std::time::Instant;

fn config() -> PageRankConfig {
    PageRankConfig::default().tolerance(1e-10).max_iterations(200)
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn solve(g: &Graph, cfg: &PageRankConfig) -> Vec<f64> {
    parallel::solve_parallel_jacobi(g, &JumpVector::Uniform, cfg)
        .expect("layout bench solve converges")
        .scores
}

struct Layout {
    order_ms: f64,
    solve_ms: f64,
}

fn verify_and_report(g: &Graph) {
    let reps = if smoke_mode() { 1 } else { 5 };
    let cfg = config().threads(1);
    let baseline = solve(g, &cfg);
    let natural_ms = median_ms(reps, || {
        black_box(solve(g, &cfg));
    });

    let mut layouts = Vec::new();
    for (name, ordering) in
        [("degree", NodeOrdering::DegreeDescending), ("bfs", NodeOrdering::BfsFromHubs)]
    {
        let t = Instant::now();
        let perm = Permutation::compute(g, ordering);
        let permuted = perm.permute_graph(g);
        let order_ms = t.elapsed().as_secs_f64() * 1e3;
        // Correctness first: the permuted solve must reproduce the
        // natural-order fixed point exactly after inverse mapping.
        let restored = perm.restore_values(&solve(&permuted, &cfg));
        let max_diff =
            restored.iter().zip(&baseline).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(max_diff <= 1e-12, "{name}: scores diverge after inverse mapping: {max_diff:e}");
        let solve_ms = median_ms(reps, || {
            black_box(solve(&permuted, &cfg));
        });
        layouts.push(Layout { order_ms, solve_ms });
    }

    // Thread-scaling clause: 4 configured workers must not lose to 1 —
    // on a host that actually has 4 cores. The auto-sizer may still
    // resolve both requests to one worker on small graphs, and a 1-core
    // host runs 4 workers oversubscribed, so both cases are exempt.
    let cfg4 = config().threads(4);
    let fused_4t_ms = median_ms(reps, || {
        black_box(solve(g, &cfg4));
    });
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sweeps = parallel::estimated_sweeps(cfg4.tolerance, cfg4.damping);
    let pool_threads_4t =
        parallel::pool_threads(4, 0, hardware, g.node_count(), g.edge_count(), sweeps);

    // Zero-copy mmap load vs the owned v2 decode of the same graph.
    let dir = std::env::temp_dir().join("spammass-bench-layout");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let v3_path = dir.join("web.v3.spamgrph");
    std::fs::write(&v3_path, graph_to_bytes_v3(g)).expect("write v3 image");
    let v2_bytes = graph_to_bytes(g);
    let (mapped, stats) = map_graph_file(&v3_path).expect("v3 image maps");
    assert!(stats.is_zero_copy(), "aligned v3 image must map zero-copy: {stats:?}");
    assert_eq!(mapped.edge_count(), g.edge_count());
    let mmap_load_ms = median_ms(reps, || {
        black_box(map_graph_file(&v3_path).expect("v3 image maps"));
    });
    let owned_load_ms = median_ms(reps, || {
        black_box(graph_from_bytes(&v2_bytes).expect("v2 image decodes"));
    });

    let best = layouts.iter().map(|l| l.solve_ms).fold(f64::INFINITY, f64::min);
    let best_speedup_pct = (natural_ms - best) / natural_ms * 100.0;
    println!(
        "BENCH_LAYOUT {{\"hosts\": {}, \"edges\": {}, \"natural_ms\": {:.3}, \
         \"degree_ms\": {:.3}, \"bfs_ms\": {:.3}, \"degree_order_ms\": {:.3}, \
         \"bfs_order_ms\": {:.3}, \"best_speedup_pct\": {:.1}, \
         \"fused_1t_ms\": {:.3}, \"fused_4t_ms\": {:.3}, \"pool_threads_4t\": {}, \
         \"mmap_load_ms\": {:.3}, \"owned_load_ms\": {:.3}, \"zero_copy\": {}}}",
        g.node_count(),
        g.edge_count(),
        natural_ms,
        layouts[0].solve_ms,
        layouts[1].solve_ms,
        layouts[0].order_ms,
        layouts[1].order_ms,
        best_speedup_pct,
        natural_ms,
        fused_4t_ms,
        pool_threads_4t,
        mmap_load_ms,
        owned_load_ms,
        stats.is_zero_copy(),
    );

    if !smoke_mode() {
        assert!(
            best_speedup_pct >= 15.0,
            "best reordering saves only {best_speedup_pct:.1}% over natural order"
        );
        assert!(
            pool_threads_4t == 1 || hardware < 4 || fused_4t_ms <= natural_ms * 1.05,
            "4 configured threads slower than 1 ({fused_4t_ms:.1}ms vs {natural_ms:.1}ms) \
             on a {hardware}-thread host (resolved {pool_threads_4t} workers)"
        );
    }
}

fn bench_layout(c: &mut Criterion) {
    let hosts: usize =
        std::env::var("LAYOUT_HOSTS").ok().and_then(|v| v.parse().ok()).unwrap_or(120_000);
    let fixture = Fixture::new(hosts);
    let g = fixture.graph();
    println!("layout: {} nodes, {} edges", g.node_count(), g.edge_count());
    verify_and_report(g);

    let cfg = config().threads(1);
    let mut group = c.benchmark_group("layout");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("fused_natural_1t", hosts), &hosts, |b, _| {
        b.iter(|| black_box(solve(g, &cfg)))
    });
    for (name, ordering) in [
        ("fused_degree_1t", NodeOrdering::DegreeDescending),
        ("fused_bfs_1t", NodeOrdering::BfsFromHubs),
    ] {
        let permuted = Permutation::compute(g, ordering).permute_graph(g);
        group.bench_with_input(BenchmarkId::new(name, hosts), &hosts, |b, _| {
            b.iter(|| black_box(solve(&permuted, &cfg)))
        });
    }

    let dir = std::env::temp_dir().join("spammass-bench-layout");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let v3_path = dir.join("web.v3.spamgrph");
    std::fs::write(&v3_path, graph_to_bytes_v3(g)).expect("write v3 image");
    let v2_bytes = graph_to_bytes(g);
    group.bench_with_input(BenchmarkId::new("load_mmap_v3", hosts), &hosts, |b, _| {
        b.iter(|| black_box(map_graph_file(&v3_path).expect("v3 image maps")))
    });
    group.bench_with_input(BenchmarkId::new("load_owned_v2", hosts), &hosts, |b, _| {
        b.iter(|| black_box(graph_from_bytes(&v2_bytes).expect("v2 image decodes")))
    });
    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
