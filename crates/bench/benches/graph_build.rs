//! Graph substrate costs: CSR construction, reversal, statistics, and the
//! binary/text I/O round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use spammass_bench::Fixture;
use spammass_graph::stats::GraphStats;
use spammass_graph::{io, GraphBuilder, NodeId};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let fixture = Fixture::new(20_000);
    let edges: Vec<(u32, u32)> = fixture.graph().edges().map(|(f, t)| (f.0, t.0)).collect();
    let n = fixture.graph().node_count();

    c.bench_function("csr_build_20k_hosts", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::with_capacity(n, edges.len());
            for &(f, t) in &edges {
                builder.add_edge(NodeId(f), NodeId(t));
            }
            black_box(builder.build())
        })
    });

    c.bench_function("graph_reverse_20k", |b| b.iter(|| black_box(fixture.graph().reversed())));

    c.bench_function("graph_stats_20k", |b| {
        b.iter(|| black_box(GraphStats::compute(fixture.graph())))
    });
}

fn bench_io(c: &mut Criterion) {
    let fixture = Fixture::new(20_000);
    let bytes = io::graph_to_bytes(fixture.graph());

    c.bench_function("binary_encode_20k", |b| {
        b.iter(|| black_box(io::graph_to_bytes(fixture.graph())))
    });
    c.bench_function("binary_decode_20k", |b| {
        b.iter(|| black_box(io::graph_from_bytes(&bytes).unwrap()))
    });

    let mut text = Vec::new();
    io::write_edge_list(fixture.graph(), &mut text).unwrap();
    c.bench_function("text_decode_20k", |b| {
        b.iter(|| black_box(io::read_edge_list(&text[..]).unwrap()))
    });
}

criterion_group!(benches, bench_build, bench_io);
criterion_main!(benches);
