//! Regeneration cost of Figure 4: judged sample, group-derived threshold
//! grid, and the two precision curves.

use criterion::{criterion_group, criterion_main, Criterion};
use spammass_eval::context::{Context, ExperimentOptions};
use spammass_eval::experiments::fig4;
use spammass_eval::groups::{split_into_groups, thresholds_from_groups};
use spammass_eval::precision::precision_curve;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut opts = ExperimentOptions::test_scale();
    opts.hosts = 20_000;
    opts.rho = 10.0;
    let ctx = Context::build(opts);

    c.bench_function("fig4_full_curve_20k", |b| b.iter(|| black_box(fig4::curve(&ctx))));

    let groups = split_into_groups(&ctx.sample, 20);
    let taus = thresholds_from_groups(&groups);
    let pool_masses = ctx.pool_masses();
    c.bench_function("fig4_precision_only_20k", |b| {
        b.iter(|| black_box(precision_curve(&ctx.sample, &taus, &pool_masses)))
    });

    c.bench_function("fig4_grouping_20k", |b| {
        b.iter(|| black_box(split_into_groups(&ctx.sample, 20)))
    });
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
