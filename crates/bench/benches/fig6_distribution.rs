//! Regeneration cost of Figure 6: the signed log-binned mass histogram and
//! the positive-branch power-law fit.

use criterion::{criterion_group, criterion_main, Criterion};
use spammass_eval::context::{Context, ExperimentOptions};
use spammass_eval::histogram::SignedMassHistogram;
use spammass_graph::powerlaw::fit_exponent_mle;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut opts = ExperimentOptions::test_scale();
    opts.hosts = 20_000;
    let ctx = Context::build(opts);
    let scale = ctx.estimate.scale();
    let scaled: Vec<f64> = ctx.estimate.absolute.iter().map(|&m| m * scale).collect();

    c.bench_function("fig6_histogram_20k", |b| {
        b.iter(|| black_box(SignedMassHistogram::build(scaled.iter().copied(), 1.0, 2.0)))
    });

    c.bench_function("fig6_powerlaw_fit_20k", |b| {
        b.iter(|| black_box(fit_exponent_mle(scaled.iter().copied().filter(|&v| v > 0.0), 5.0)))
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
