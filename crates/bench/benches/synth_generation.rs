//! Synthetic web generation cost by scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spammass_synth::scenario::{Scenario, ScenarioConfig};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_generation");
    group.sample_size(10);
    for hosts in [5_000usize, 20_000, 60_000] {
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter(|| black_box(Scenario::generate(&ScenarioConfig::sized(hosts), 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
