//! Million-host scale: v4 compressed storage and the out-of-core solve.
//!
//! The acceptance workload of the scale subsystem. On a degree-ordered
//! ~120k-host synthetic web from the streaming generator — the
//! template-locality model whose nav chains the v4 interval coder
//! exploits (override the size with `SCALE_HOSTS`):
//!
//! * the v4 delta-varint image is encoded next to the v3 aligned image
//!   and its bits/edge (both orientations, all framing included) and
//!   compression ratio are measured;
//! * the streamed (out-of-core) batched solve runs from the v4 file
//!   under a byte budget **smaller than the raw CSR working set** and is
//!   timed against the same solve on the fully resident graph;
//! * correctness gates: the streamed scores must match the resident
//!   single-worker solve bit-for-bit, and — in timed (non `--test`)
//!   runs — the degree-ordered v4 image must encode at ≤ 8 bits/edge.
//!
//! One verification pass prints a `BENCH_SCALE {...}` JSON line for
//! `scripts/bench.sh` to collect into `BENCH_scale.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spammass_graph::io::graph_to_bytes_v3;
use spammass_graph::{
    graph_to_bytes_v4, CompressedImage, Graph, GraphBuilder, NodeId, NodeOrdering, Orientation,
    Permutation,
};
use spammass_pagerank::stream::resident_bytes_needed;
use spammass_pagerank::{solve_batch, solve_batch_streamed, JumpVector, PageRankConfig};
use spammass_synth::stream::{generate_stream, StreamConfig, StreamManifest};
use std::hint::black_box;
use std::time::Instant;

/// Materializes the streaming generator's scenario at `hosts` via its
/// on-disk shard format — the same path `generate --stream` + `convert`
/// take, minus the v4 encode.
fn stream_graph(hosts: usize) -> Graph {
    let dir = std::env::temp_dir().join(format!("spammass-scale-web-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    generate_stream(&dir, &StreamConfig::sized(hosts as u64), 0x5CA1E).expect("stream generation");
    let manifest = StreamManifest::read(&dir).expect("manifest");
    let mut edges = Vec::with_capacity(manifest.edges as usize);
    for path in manifest.shard_paths(&dir) {
        let bytes = std::fs::read(&path).expect("shard");
        for pair in bytes.chunks_exact(8) {
            edges.push((
                u32::from_le_bytes(pair[..4].try_into().unwrap()),
                u32::from_le_bytes(pair[4..].try_into().unwrap()),
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    GraphBuilder::from_edges(hosts, &edges)
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn config() -> PageRankConfig {
    // Single pooled worker on both sides: the streamed solve replicates
    // its summation order, so the comparison is bit-exact, not just
    // tolerance-close.
    PageRankConfig::default().tolerance(1e-10).max_iterations(200).threads(1).edges_per_thread(1)
}

fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Peak resident set of this process in MiB, from `VmHWM` — the honest
/// "did we actually stay small" number for the whole bench process.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|kb| kb.parse::<f64>().ok()))
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(-1.0)
}

fn jumps(g: &Graph) -> Vec<JumpVector> {
    // Uniform PageRank + a core-style jump: the same two-column batch the
    // mass estimator runs.
    let core: Vec<NodeId> = (0..g.node_count() as u32).step_by(500).map(NodeId).collect();
    vec![JumpVector::Uniform, JumpVector::core(core, g.node_count())]
}

/// Raw CSR working set of the resident solve: both orientations' offsets
/// and endpoints at 4 bytes each.
fn csr_bytes(g: &Graph) -> u64 {
    2 * ((g.node_count() as u64 + 1) * 4 + g.edge_count() as u64 * 4)
}

fn verify_and_report(g: &Graph) {
    let reps = if smoke_mode() { 1 } else { 5 };
    let cfg = config();

    // Degree ordering packs hubs first, shrinking both the in-row gaps of
    // popular nodes and the varint widths of low ids — the layout the
    // bits/edge acceptance number is defined on.
    let t = Instant::now();
    let ordered = Permutation::compute(g, NodeOrdering::DegreeDescending).permute_graph(g);
    let order_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let v4_bytes = graph_to_bytes_v4(&ordered);
    let encode_ms = t.elapsed().as_secs_f64() * 1e3;
    let v3_bytes_len = graph_to_bytes_v3(&ordered).len() as u64;
    let bits_per_edge = v4_bytes.len() as f64 * 8.0 / (2.0 * ordered.edge_count() as f64);
    let compression_ratio = v3_bytes_len as f64 / v4_bytes.len() as f64;

    let dir = std::env::temp_dir().join("spammass-bench-scale");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let v4_path = dir.join("web.v4.spamgrph");
    std::fs::write(&v4_path, &v4_bytes).expect("write v4 image");
    let image = CompressedImage::open(&v4_path).expect("v4 image maps");
    assert_eq!(image.edge_count(), ordered.edge_count() as u64);

    // Budget: what the streamed solve actually needs, rounded up to the
    // next MiB — deliberately below the raw CSR footprint it displaces.
    let jump_set = jumps(&ordered);
    let (max_rows, max_edges) = image.max_block_dims();
    let blocks = image.block_count(Orientation::Out) + image.block_count(Orientation::In);
    let needed =
        resident_bytes_needed(image.node_count(), jump_set.len(), max_rows, max_edges, blocks);
    let budget = needed;
    let csr = csr_bytes(&ordered);
    // On toy smoke graphs the fixed score-vector overhead can exceed the
    // tiny CSR, so the undercut claim is only checked at real scale.
    if !smoke_mode() {
        assert!(
            budget < csr,
            "streamed budget {budget} should undercut the {csr}-byte raw CSR working set"
        );
    }

    let resident = solve_batch(&ordered, &jump_set, &cfg).expect("resident solve converges");
    let streamed =
        solve_batch_streamed(&image, &jump_set, &cfg, budget).expect("streamed solve converges");
    // Below the auto-sizer's serial cutoff the resident batch runs the
    // scatter solver, whose summation order differs — only the pooled
    // gather path is the bit-exact twin of the streamed solve.
    let pooled = ordered.edge_count() >= spammass_pagerank::parallel::SERIAL_CUTOFF_EDGES;
    for (r, s) in resident.iter().zip(&streamed) {
        if pooled {
            assert_eq!(r.scores, s.scores, "streamed scores must be bit-exact vs resident");
            assert_eq!(r.iterations, s.iterations);
        } else {
            let max_diff =
                r.scores.iter().zip(&s.scores).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
            assert!(max_diff <= 1e-12, "streamed scores drifted by {max_diff:e}");
        }
    }

    let resident_solve_ms = median_ms(reps, || {
        black_box(solve_batch(&ordered, &jump_set, &cfg).expect("resident solve converges"));
    });
    let streamed_solve_ms = median_ms(reps, || {
        black_box(
            solve_batch_streamed(&image, &jump_set, &cfg, budget)
                .expect("streamed solve converges"),
        );
    });

    println!(
        "BENCH_SCALE {{\"hosts\": {}, \"edges\": {}, \"v3_bytes\": {}, \"v4_bytes\": {}, \
         \"bits_per_edge\": {:.3}, \"compression_ratio\": {:.3}, \"encode_ms\": {:.3}, \
         \"order_ms\": {:.3}, \"budget_bytes\": {}, \"csr_bytes\": {}, \
         \"resident_solve_ms\": {:.3}, \"streamed_solve_ms\": {:.3}, \
         \"streamed_overhead_pct\": {:.1}, \"blocks\": {}, \"peak_rss_mb\": {:.1}}}",
        ordered.node_count(),
        ordered.edge_count(),
        v3_bytes_len,
        v4_bytes.len(),
        bits_per_edge,
        compression_ratio,
        encode_ms,
        order_ms,
        budget,
        csr,
        resident_solve_ms,
        streamed_solve_ms,
        (streamed_solve_ms - resident_solve_ms) / resident_solve_ms * 100.0,
        blocks,
        peak_rss_mb(),
    );

    if !smoke_mode() {
        assert!(
            bits_per_edge <= 8.0,
            "degree-ordered v4 image costs {bits_per_edge:.2} bits/edge (cap: 8)"
        );
        assert!(
            compression_ratio > 1.0,
            "v4 ({} bytes) must be smaller than v3 ({v3_bytes_len} bytes)",
            v4_bytes.len()
        );
    }
}

fn bench_scale(c: &mut Criterion) {
    let hosts: usize =
        std::env::var("SCALE_HOSTS").ok().and_then(|v| v.parse().ok()).unwrap_or(120_000);
    let g = &stream_graph(hosts);
    println!("scale: {} nodes, {} edges", g.node_count(), g.edge_count());
    verify_and_report(g);

    let ordered = Permutation::compute(g, NodeOrdering::DegreeDescending).permute_graph(g);
    let cfg = config();
    let jump_set = jumps(&ordered);
    let dir = std::env::temp_dir().join("spammass-bench-scale");
    let v4_path = dir.join("web.v4.spamgrph");
    let image = CompressedImage::open(&v4_path).expect("v4 image maps");
    let (max_rows, max_edges) = image.max_block_dims();
    let blocks = image.block_count(Orientation::Out) + image.block_count(Orientation::In);
    let budget =
        resident_bytes_needed(image.node_count(), jump_set.len(), max_rows, max_edges, blocks);

    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("encode_v4", hosts), &hosts, |b, _| {
        b.iter(|| black_box(graph_to_bytes_v4(&ordered)))
    });
    group.bench_with_input(BenchmarkId::new("solve_resident", hosts), &hosts, |b, _| {
        b.iter(|| black_box(solve_batch(&ordered, &jump_set, &cfg).expect("converges")))
    });
    group.bench_with_input(BenchmarkId::new("solve_streamed", hosts), &hosts, |b, _| {
        b.iter(|| {
            black_box(solve_batch_streamed(&image, &jump_set, &cfg, budget).expect("converges"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
