//! End-to-end spam-mass estimation: the two PageRank runs plus the
//! absolute/relative mass derivation (Definition 3 + Section 3.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spammass_bench::Fixture;
use spammass_core::estimate::{EstimatorConfig, MassEstimator};
use spammass_core::mass::ExactMass;
use spammass_core::Partition;
use spammass_pagerank::{parallel, solve_batch, JumpVector, PageRankConfig};
use std::hint::black_box;

fn estimator() -> MassEstimator {
    MassEstimator::new(
        EstimatorConfig::scaled(0.85)
            .with_pagerank(PageRankConfig::default().tolerance(1e-10).max_iterations(200)),
    )
}

fn bench_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mass_estimation");
    group.sample_size(10);
    for hosts in [10_000usize, 40_000] {
        let fixture = Fixture::new(hosts);
        let core = fixture.core.as_vec();
        group.bench_with_input(BenchmarkId::new("estimate", hosts), &hosts, |b, _| {
            b.iter(|| black_box(estimator().estimate(fixture.graph(), &core)))
        });
    }
    group.finish();
}

/// One batched multi-RHS run (uniform + core jump through a single
/// traversal per iteration) against two sequential parallel solves — the
/// batching half of the tentpole. Measured twice: through `MassEstimator`
/// (batched vs chain-per-run config), and at the solver layer directly
/// (`solve_batch` vs back-to-back `solve_parallel_jacobi`), which holds
/// everything but the batching constant.
fn bench_batched_vs_sequential(c: &mut Criterion) {
    let hosts = 120_000usize;
    let fixture = Fixture::new(hosts);
    let core = fixture.core.as_vec();
    let mut group = c.benchmark_group("mass_estimation_engine");
    group.sample_size(10);
    let jumps = [JumpVector::Uniform, JumpVector::scaled_core(core.clone(), 0.85)];
    for threads in [1usize, 4] {
        let pr = PageRankConfig::default().tolerance(1e-10).max_iterations(200).threads(threads);
        group.bench_with_input(
            BenchmarkId::new(format!("estimator_batched_{threads}t"), hosts),
            &hosts,
            |b, _| {
                let est = MassEstimator::new(EstimatorConfig::scaled(0.85).with_pagerank(pr));
                b.iter(|| black_box(est.estimate(fixture.graph(), &core)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("estimator_chained_{threads}t"), hosts),
            &hosts,
            |b, _| {
                let est = MassEstimator::new(
                    EstimatorConfig::scaled(0.85).with_pagerank(pr).with_batching(false),
                );
                b.iter(|| black_box(est.estimate(fixture.graph(), &core)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("solve_batch_{threads}t"), hosts),
            &hosts,
            |b, _| b.iter(|| black_box(solve_batch(fixture.graph(), &jumps, &pr))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("two_parallel_solves_{threads}t"), hosts),
            &hosts,
            |b, _| {
                b.iter(|| {
                    for jump in &jumps {
                        black_box(parallel::solve_parallel_jacobi(fixture.graph(), jump, &pr)).ok();
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_exact_mass(c: &mut Criterion) {
    let fixture = Fixture::new(10_000);
    let spam = fixture.scenario.spam_nodes();
    let partition = Partition::from_spam_nodes(fixture.graph().node_count(), &spam);
    let cfg = PageRankConfig::default().tolerance(1e-10).max_iterations(200);
    c.bench_function("exact_mass_10k", |b| {
        b.iter(|| black_box(ExactMass::compute(fixture.graph(), &partition, &cfg)))
    });
}

fn bench_reused_pagerank(c: &mut Criterion) {
    // The Section 4.5 pattern: recompute only p' for a new core.
    let fixture = Fixture::new(10_000);
    let core = fixture.core.as_vec();
    let est = estimator().estimate(fixture.graph(), &core).unwrap().into_mass();
    let small_core = fixture.core.sample_fraction(0.1, 1).as_vec();
    c.bench_function("estimate_with_reused_pagerank_10k", |b| {
        b.iter(|| {
            black_box(estimator().estimate_with_pagerank(
                fixture.graph(),
                &small_core,
                est.pagerank.clone(),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_estimation,
    bench_batched_vs_sequential,
    bench_exact_mass,
    bench_reused_pagerank
);
criterion_main!(benches);
