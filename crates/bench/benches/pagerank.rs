//! Solver comparison: Jacobi (Algorithm 1), Gauss–Seidel, power iteration
//! (eigen formulation), and the pooled parallel Jacobi.
//!
//! Backs the paper's Section 2.2 remark that linear solvers "are regularly
//! faster than the algorithms available for solving eigensystems", and
//! measures the fused pooled engine against the legacy two-pass kernel on
//! a ≥1M-edge synthetic web at several thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spammass_bench::Fixture;
use spammass_pagerank::{
    gauss_seidel, jacobi, parallel, power, JumpVector, KernelKind, PageRankConfig,
};
use std::hint::black_box;

fn config() -> PageRankConfig {
    PageRankConfig::default().tolerance(1e-10).max_iterations(200)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagerank_solvers");
    group.sample_size(10);
    for hosts in [10_000usize, 40_000] {
        let fixture = Fixture::new(hosts);
        let g = fixture.graph();
        let jump = JumpVector::Uniform;
        let cfg = config();
        group.bench_with_input(BenchmarkId::new("jacobi", hosts), &hosts, |b, _| {
            b.iter(|| black_box(jacobi::solve_jacobi(g, &jump, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("gauss_seidel", hosts), &hosts, |b, _| {
            b.iter(|| black_box(gauss_seidel::solve_gauss_seidel(g, &jump, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("power_iteration", hosts), &hosts, |b, _| {
            b.iter(|| black_box(power::solve_power(g, &jump, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("parallel_jacobi", hosts), &hosts, |b, _| {
            b.iter(|| black_box(parallel::solve_parallel_jacobi(g, &jump, &cfg)))
        });
    }
    group.finish();
}

/// Fused pooled kernel vs the legacy two-pass kernel at matched thread
/// counts on a million-edge graph — the tentpole comparison. Both paths
/// use the same partitioner and convergence machinery, so the delta is
/// the kernel itself (one traversal + coefficient table vs shares pass
/// plus gather pass).
fn bench_engine(c: &mut Criterion) {
    let hosts = 120_000usize;
    let fixture = Fixture::new(hosts);
    let g = fixture.graph();
    assert!(
        g.edge_count() >= 1_000_000,
        "engine benchmark needs a >=1M-edge graph, got {}",
        g.edge_count()
    );
    println!("pagerank_engine: {} nodes, {} edges", g.node_count(), g.edge_count());
    let jump = JumpVector::Uniform;
    let mut group = c.benchmark_group("pagerank_engine");
    group.sample_size(10);
    for threads in [1usize, 4] {
        // `fused_*` pins the scalar kernel: it is the historical fused
        // gather, kept comparable across PRs; the unrolled kernel is
        // measured separately in the `pagerank_scaling` group.
        let cfg = config().threads(threads).kernel(KernelKind::Scalar);
        group.bench_with_input(
            BenchmarkId::new(format!("two_pass_{threads}t"), hosts),
            &hosts,
            |b, _| b.iter(|| black_box(parallel::solve_parallel_jacobi_two_pass(g, &jump, &cfg))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("fused_{threads}t"), hosts),
            &hosts,
            |b, _| b.iter(|| black_box(parallel::solve_parallel_jacobi(g, &jump, &cfg))),
        );
    }
    group.finish();
}

/// The scaling acceptance workload: scalar fused baselines vs the
/// unrolled (SIMD-shaped) kernel at one thread and the full edge-parallel
/// path at four, all on the 120k-host / ≥1M-edge graph. Medians land in
/// `BENCH_pagerank.json` via `scripts/bench.sh`; thread counts are
/// encoded in the benchmark names (`_1t` / `_4t`) and annotated into the
/// JSON's `"threads"` field.
fn bench_scaling(c: &mut Criterion) {
    let hosts = 120_000usize;
    let fixture = Fixture::new(hosts);
    let g = fixture.graph();
    println!("pagerank_scaling: {} nodes, {} edges", g.node_count(), g.edge_count());
    let jump = JumpVector::Uniform;
    let mut group = c.benchmark_group("pagerank_scaling");
    group.sample_size(10);
    let cases = [
        ("fused_1t", 1usize, KernelKind::Scalar),
        ("fused_4t", 4, KernelKind::Scalar),
        ("simd_1t", 1, KernelKind::Unrolled4),
        ("edge_parallel_4t", 4, KernelKind::Unrolled4),
    ];
    for (name, threads, kernel) in cases {
        let cfg = config().threads(threads).kernel(kernel);
        group.bench_with_input(BenchmarkId::new(name, hosts), &hosts, |b, _| {
            b.iter(|| black_box(parallel::solve_parallel_jacobi(g, &jump, &cfg)))
        });
    }
    group.finish();
}

fn bench_core_jump(c: &mut Criterion) {
    // The second PageRank run of the method: γ-scaled core jump vector.
    let fixture = Fixture::new(20_000);
    let g = fixture.graph();
    let jump = JumpVector::scaled_core(fixture.core.as_vec(), 0.85);
    let cfg = config();
    c.bench_function("pagerank_core_jump_20k", |b| {
        b.iter(|| black_box(jacobi::solve_jacobi(g, &jump, &cfg)))
    });
}

criterion_group!(benches, bench_solvers, bench_engine, bench_scaling, bench_core_jump);
criterion_main!(benches);
