//! Baseline-detector throughput: degree-outlier scan and reciprocity scan
//! versus the mass-based detector they are compared against.

use criterion::{criterion_group, criterion_main, Criterion};
use spammass_bench::Fixture;
use spammass_core::baselines::degree_outlier::{degree_outliers_both, DegreeOutlierConfig};
use spammass_core::baselines::reciprocity::{high_reciprocity_nodes, ReciprocityConfig};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let fixture = Fixture::new(40_000);
    let g = fixture.graph();

    c.bench_function("degree_outliers_40k", |b| {
        b.iter(|| black_box(degree_outliers_both(g, &DegreeOutlierConfig::default())))
    });

    c.bench_function("reciprocity_scan_40k", |b| {
        b.iter(|| black_box(high_reciprocity_nodes(g, &ReciprocityConfig::default())))
    });
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
