//! Query-daemon throughput: QPS and request latency against a live
//! `spammass-serve` instance.
//!
//! A synth scenario is estimated, published into a state directory, and
//! served by a real [`Server`] (thread-per-core accept loop, keep-alive
//! HTTP). The measured client is plain blocking `TcpStream`s — the same
//! thing a scraper or a sidecar would use — so the numbers include the
//! full parse → route → snapshot-pin → render → write path.
//!
//! Two layers of numbers:
//!
//! * a `BENCH_SERVE {...}` line with client-side QPS and p50/p99
//!   latency at 1 thread and at N threads (collected by
//!   `scripts/bench.sh` into `BENCH_serve.json`), with correctness
//!   asserts (every response 200, parseable, right generation) before
//!   anything is timed;
//! * criterion benches (`serve_qps/score_1t`, ...) for the per-request
//!   latency of each endpoint on a persistent connection.
//!
//! `SERVE_HOSTS` scales the graph (default 20 000).

use criterion::{criterion_group, criterion_main, Criterion};
use spammass_core::detector::DetectorConfig;
use spammass_core::estimate::{EstimatorConfig, MassEstimator};
use spammass_delta::StateDir;
use spammass_obs::json::Json;
use spammass_serve::{Reloader, ServeOptions, Server};
use spammass_synth::scenario::{Scenario, ScenarioConfig};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

fn state_dir() -> PathBuf {
    std::env::temp_dir().join(format!("spammass-bench-serve-{}", std::process::id()))
}

/// Publishes an estimated synth scenario and starts the daemon.
fn start_server() -> (Server, usize, usize) {
    let hosts: usize =
        std::env::var("SERVE_HOSTS").ok().and_then(|v| v.parse().ok()).unwrap_or(20_000);
    let config = ScenarioConfig::sized(hosts);
    let scenario = Scenario::generate(&config, 0xFEED);
    let core = scenario.section_4_2_core();
    let est = MassEstimator::new(EstimatorConfig::scaled(0.85))
        .estimate(&scenario.graph, &core)
        .expect("estimate converges");

    let dir = state_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let state = StateDir::new(&dir);
    state.save(&scenario.graph, &core, &est.pagerank, &est.core_pagerank).unwrap();

    let nodes = scenario.graph.node_count();
    let edges = scenario.graph.edge_count();
    let reloader =
        Reloader::new(state, None, DetectorConfig { rho: 10.0, tau: 0.98 }, 0.85, 0.85, 0);
    let server = Server::start(ServeOptions::default(), reloader).expect("server starts");
    (server, nodes, edges)
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    BufReader::new(stream)
}

/// One keep-alive GET; returns (status, body).
fn get(reader: &mut BufReader<TcpStream>, path: &str) -> (u16, String) {
    let request = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
    reader.get_mut().write_all(request.as_bytes()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let status: u16 = line.split_whitespace().nth(1).expect("status line").parse().unwrap();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        if header == "\r\n" || header == "\n" {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap())
}

struct LoadReport {
    qps: f64,
    p50_ns: u64,
    p99_ns: u64,
}

/// `threads` clients, each `requests` keep-alive `/score` lookups over
/// its own connection; client-side QPS and latency percentiles.
fn run_load(addr: SocketAddr, nodes: usize, threads: usize, requests: usize) -> LoadReport {
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|worker| {
            std::thread::spawn(move || {
                let mut reader = connect(addr);
                let mut latencies = Vec::with_capacity(requests);
                for i in 0..requests {
                    let node = (worker * 7919 + i * 31) % nodes;
                    let path = format!("/score?node={node}");
                    let sent = Instant::now();
                    let (status, body) = get(&mut reader, &path);
                    latencies.push(sent.elapsed().as_nanos() as u64);
                    assert_eq!(status, 200, "{body}");
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> =
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    LoadReport {
        qps: latencies.len() as f64 / elapsed.as_secs_f64(),
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
    }
}

/// Correctness before speed: responses parse, carry the right schema and
/// generation, and agree between /score and /batch.
fn verify(addr: SocketAddr, nodes: usize) {
    let mut reader = connect(addr);
    let (status, body) = get(&mut reader, "/score?node=0");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("score parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("spammass.score_response/v1"));
    assert_eq!(doc.get("generation").and_then(Json::as_f64), Some(1.0));
    let single = doc.get("score").unwrap().get("pagerank").and_then(Json::as_f64).unwrap();

    let (status, body) = get(&mut reader, "/batch?nodes=0,1,2");
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("batch parses");
    let batched = doc.get("results").and_then(Json::as_arr).unwrap()[0]
        .get("pagerank")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(single, batched, "score and batch disagree on node 0");

    let (status, body) = get(&mut reader, "/topk?k=5");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        Json::parse(&body).unwrap().get("count").and_then(Json::as_f64),
        Some(5.0),
        "{body}"
    );
    let (status, body) = get(&mut reader, &format!("/explain?node={}", nodes - 1));
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        Json::parse(&body).unwrap().get("schema").and_then(Json::as_str),
        Some("spammass.explain_response/v1")
    );
}

fn bench_serve(c: &mut Criterion) {
    let (server, nodes, edges) = start_server();
    let addr = server.local_addr();
    verify(addr, nodes);

    let fan_out = std::thread::available_parallelism().map_or(2, |n| n.get()).min(8);
    let per_thread: usize =
        std::env::var("SERVE_REQS").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000);
    let single = run_load(addr, nodes, 1, per_thread);
    let multi = run_load(addr, nodes, fan_out, per_thread);
    println!(
        "BENCH_SERVE {{\"hosts\": {nodes}, \"edges\": {edges}, \
         \"accept_threads\": {}, \"client_threads\": {fan_out}, \
         \"requests_per_thread\": {per_thread}, \
         \"qps_1t\": {:.0}, \"p50_ns_1t\": {}, \"p99_ns_1t\": {}, \
         \"qps_nt\": {:.0}, \"p50_ns_nt\": {}, \"p99_ns_nt\": {}}}",
        server.accept_threads(),
        single.qps,
        single.p50_ns,
        single.p99_ns,
        multi.qps,
        multi.p50_ns,
        multi.p99_ns,
    );

    let mut group = c.benchmark_group("serve_qps");
    group.sample_size(10);
    {
        let mut reader = connect(addr);
        group.bench_function("score_1t", |b| {
            b.iter(|| black_box(get(&mut reader, "/score?node=42")))
        });
    }
    {
        let mut reader = connect(addr);
        let nodes_param =
            (0..32).map(|i| (i * 613) % nodes).map(|n| n.to_string()).collect::<Vec<_>>().join(",");
        let path = format!("/batch?nodes={nodes_param}");
        group.bench_function("batch32_1t", |b| b.iter(|| black_box(get(&mut reader, &path))));
    }
    {
        let mut reader = connect(addr);
        group.bench_function("topk_1t", |b| b.iter(|| black_box(get(&mut reader, "/topk?k=10"))));
    }
    {
        let mut reader = connect(addr);
        group.bench_function("explain_1t", |b| {
            b.iter(|| black_box(get(&mut reader, "/explain?node=7")))
        });
    }
    group.finish();

    // Client connections are all dropped by now, so the daemon's accept
    // threads join promptly instead of waiting out a read timeout.
    drop(server);
    let _ = std::fs::remove_dir_all(state_dir());
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
