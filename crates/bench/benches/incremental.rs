//! Incremental re-estimation vs full cold re-estimate.
//!
//! The acceptance workload of the delta subsystem: a ~60k-host synth
//! scenario evolves by ~1% of its edges (farm growth emitted as a
//! `SPAMDLT` journal), and the warm-started `MassEstimator::update` is
//! compared against a cold `estimate` of the patched graph — for wall
//! time (criterion) and for the correctness contract (one verification
//! pass printed as a `BENCH_INCR` JSON line and asserted here):
//!
//! * the flagged sets are identical,
//! * scores agree within 1e-9,
//! * the warm solve uses strictly fewer iterations.

use criterion::{criterion_group, criterion_main, Criterion};
use spammass_core::detector::{detect, DetectorConfig};
use spammass_core::estimate::{EstimatorConfig, MassEstimator};
use spammass_delta::{DeltaRecord, GraphDelta, SavedState};
use spammass_graph::{Graph, NodeId};
use spammass_pagerank::PageRankConfig;
use spammass_synth::scenario::{Scenario, ScenarioConfig};
use std::hint::black_box;

struct Workload {
    base_graph: Graph,
    base_core: Vec<NodeId>,
    records: Vec<DeltaRecord>,
    cold_graph: Graph,
    cold_core: Vec<NodeId>,
    estimator: MassEstimator,
    detector: DetectorConfig,
    base_pagerank: Vec<f64>,
    base_core_pagerank: Vec<f64>,
}

fn workload() -> Workload {
    let hosts: usize =
        std::env::var("INCR_HOSTS").ok().and_then(|v| v.parse().ok()).unwrap_or(60_000);
    let config = ScenarioConfig::sized(hosts).with_evolve_steps(1);
    let scenario = Scenario::generate(&config, 0xBEEF);
    let core = scenario.section_4_2_core();
    // One evolve step is ~1% of the base edges in new booster links.
    let records = scenario.evolve(&config, 0xBEEF).all_records();

    // 1e-12 keeps both paths well inside the 1e-9 agreement budget
    // (L1 residual ~1e-12 bounds the fixed-point error by ~6e-12).
    let estimator = MassEstimator::new(
        EstimatorConfig::scaled(0.85)
            .with_pagerank(PageRankConfig::default().tolerance(1e-12).max_iterations(1_000)),
    );
    let base = estimator.estimate(&scenario.graph, &core).expect("base estimate converges");

    let mut cold_graph = scenario.graph.clone();
    let mut cold_core = core.clone();
    let delta = GraphDelta::from_records(&records);
    delta.apply(&mut cold_graph);
    delta.apply_to_core(&mut cold_core);

    Workload {
        base_pagerank: base.pagerank.clone(),
        base_core_pagerank: base.core_pagerank.clone(),
        base_graph: scenario.graph,
        base_core: core,
        records,
        cold_graph,
        cold_core,
        estimator,
        detector: DetectorConfig { rho: 10.0, tau: 0.98 },
    }
}

fn saved_state(w: &Workload) -> SavedState {
    SavedState {
        graph: w.base_graph.clone(),
        core: w.base_core.clone(),
        pagerank: w.base_pagerank.clone(),
        core_pagerank: w.base_core_pagerank.clone(),
    }
}

/// One verification pass: warm update vs cold re-estimate, printed as a
/// `BENCH_INCR {...}` line for `scripts/bench.sh` to collect.
fn verify_and_report(w: &Workload) {
    let cold =
        w.estimator.estimate(&w.cold_graph, &w.cold_core).expect("cold re-estimate converges");
    let cold_det = detect(&cold.mass, &w.detector);
    let warm =
        w.estimator.update(saved_state(w), &w.records, &w.detector).expect("warm update converges");

    let max_diff = warm
        .estimate
        .pagerank
        .iter()
        .zip(&cold.pagerank)
        .chain(warm.estimate.core_pagerank.iter().zip(&cold.core_pagerank))
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let warm_iters = warm.estimate.pagerank_diag.as_ref().map_or(0, |d| d.iterations);
    let cold_iters = cold.pagerank_diag.as_ref().map_or(0, |d| d.iterations);
    let warm_core_iters = warm.estimate.core_diag.iterations;
    let cold_core_iters = cold.core_diag.iterations;
    let flagged_identical = warm.detection.candidates == cold_det.candidates;

    println!(
        "BENCH_INCR {{\"hosts\": {}, \"edges\": {}, \"delta_records\": {}, \
         \"warm_iterations\": {}, \"cold_iterations\": {}, \
         \"warm_core_iterations\": {}, \"cold_core_iterations\": {}, \
         \"flagged_identical\": {}, \
         \"flagged\": {}, \"newly_flagged\": {}, \"max_score_diff\": {:e}}}",
        w.base_graph.node_count(),
        w.base_graph.edge_count(),
        w.records.len(),
        warm_iters,
        cold_iters,
        warm_core_iters,
        cold_core_iters,
        flagged_identical,
        cold_det.len(),
        warm.diff.newly_flagged.len(),
        max_diff
    );

    assert!(warm.warm, "warm path must not fall back");
    assert!(flagged_identical, "warm and cold flagged sets differ");
    assert!(max_diff <= 1e-9, "scores diverge: {max_diff:e}");
    assert!(
        warm_iters < cold_iters,
        "warm solve must save iterations ({warm_iters} vs {cold_iters})"
    );
}

fn bench_incremental(c: &mut Criterion) {
    let w = workload();
    verify_and_report(&w);

    let hosts = w.base_graph.node_count();
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.bench_function(format!("cold_full_estimate/{hosts}"), |b| {
        b.iter(|| black_box(w.estimator.estimate(&w.cold_graph, &w.cold_core)))
    });
    group.bench_function(format!("warm_update/{hosts}"), |b| {
        // The clone of the saved state (graph + two vectors) is part of
        // what a real update pays to keep its input, so it stays in the
        // measured body.
        b.iter(|| black_box(w.estimator.update(saved_state(&w), &w.records, &w.detector)))
    });
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
