//! Algorithm 2 filtering/labelling throughput (the cheap part the paper
//! runs once the mass estimates exist), plus threshold sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use spammass_bench::Fixture;
use spammass_core::detector::{candidate_pool, detect, DetectorConfig};
use spammass_core::estimate::{EstimatorConfig, MassEstimator};
use spammass_pagerank::PageRankConfig;
use std::hint::black_box;

fn bench_detection(c: &mut Criterion) {
    let fixture = Fixture::new(40_000);
    let estimate = MassEstimator::new(
        EstimatorConfig::scaled(0.85)
            .with_pagerank(PageRankConfig::default().tolerance(1e-10).max_iterations(200)),
    )
    .estimate(fixture.graph(), &fixture.core.as_vec())
    .unwrap()
    .into_mass();

    c.bench_function("detect_single_threshold_40k", |b| {
        b.iter(|| black_box(detect(&estimate, &DetectorConfig { rho: 10.0, tau: 0.98 })))
    });

    c.bench_function("detect_tau_sweep_40k", |b| {
        b.iter(|| {
            for tau in [0.99, 0.95, 0.9, 0.8, 0.7, 0.5, 0.3, 0.0] {
                black_box(detect(&estimate, &DetectorConfig { rho: 10.0, tau }));
            }
        })
    });

    c.bench_function("candidate_pool_40k", |b| {
        b.iter(|| black_box(candidate_pool(&estimate, 10.0)))
    });
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
