//! Regeneration cost of Figure 5: the five core-ablation arms (the
//! dominant cost is one extra core-based PageRank per arm).

use criterion::{criterion_group, criterion_main, Criterion};
use spammass_core::estimate::{EstimatorConfig, MassEstimator};
use spammass_eval::context::{Context, ExperimentOptions};
use spammass_eval::experiments::fig5;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut opts = ExperimentOptions::test_scale();
    opts.hosts = 12_000;
    let ctx = Context::build(opts);

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("all_arms_12k", |b| b.iter(|| black_box(fig5::arms(&ctx))));

    // The marginal cost of one additional core arm.
    let estimator =
        MassEstimator::new(EstimatorConfig::scaled(0.85).with_pagerank(Context::pagerank_config()));
    let small = ctx.core.sample_fraction(0.1, 9).as_vec();
    group.bench_function("one_arm_12k", |b| {
        b.iter(|| {
            black_box(estimator.estimate_with_pagerank(
                &ctx.scenario.graph,
                &small,
                ctx.estimate.pagerank.clone(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
