//! Swap-consistency pin: reader threads hammer `/score` over keep-alive
//! connections while the snapshot is republished and swapped repeatedly.
//! Every response must be **internally consistent** — the score and flag
//! it reports must be exactly the ones belonging to the generation it
//! claims — i.e. no torn reads across an epoch swap, ever.

use spammass_core::detector::DetectorConfig;
use spammass_delta::StateDir;
use spammass_graph::{GraphBuilder, NodeId};
use spammass_obs::json::Json;
use spammass_serve::{Reloader, ServeOptions, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DAMPING: f64 = 0.85;
const NODES: usize = 4;

/// Per-generation ground truth for node 0: stored `p`, stored `p′`, and
/// whether Algorithm 2 (ρ = 1, τ = 0.5) flags it. Generation g uses row
/// g − 1. Flags alternate so a torn (generation, flag) pair is loud.
const TABLE: &[(f64, f64, bool)] = &[
    (0.40, 0.10, true),  // m̃ = 0.750
    (0.35, 0.30, false), // m̃ ≈ 0.143
    (0.30, 0.05, true),  // m̃ ≈ 0.833
    (0.25, 0.20, false), // m̃ = 0.200
    (0.45, 0.10, true),  // m̃ ≈ 0.778
    (0.50, 0.40, false), // m̃ = 0.200
];

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spammass-serve-swap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn publish(state: &StateDir, row: usize) -> u64 {
    let (p0, pc0, _) = TABLE[row];
    let g = GraphBuilder::from_edges(NODES, &[(1, 0), (2, 0), (2, 3)]);
    let p = [p0, 0.1, 0.3, 0.2];
    let pc = [pc0, 0.0, 0.3, 0.05];
    state.save(&g, &[NodeId(2)], &p, &pc).unwrap()
}

/// One keep-alive HTTP GET; returns (status, body).
fn get(reader: &mut BufReader<TcpStream>, path: &str) -> (u16, String) {
    let request = format!("GET {path} HTTP/1.1\r\nHost: swap-test\r\n\r\n");
    reader.get_mut().write_all(request.as_bytes()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let status: u16 = line.split_whitespace().nth(1).expect("status line").parse().unwrap();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        if header == "\r\n" || header == "\n" {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap())
}

fn connect(addr: std::net::SocketAddr) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    BufReader::new(stream)
}

#[test]
fn responses_stay_consistent_across_repeated_swaps() {
    let dir = tmpdir();
    let state = StateDir::new(&dir);
    assert_eq!(publish(&state, 0), 1);

    let detector = DetectorConfig { rho: 1.0, tau: 0.5 };
    let reloader = Reloader::new(state.clone(), None, detector, 0.85, DAMPING, 1);
    // Long poll: every swap in this test is driven by GET /reload, so
    // the sequence of generations is deterministic.
    let options = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        poll: Duration::from_secs(600),
    };
    let server = Server::start(options, reloader).expect("server starts");
    let addr = server.local_addr();
    assert_eq!(server.current_generation(), 1);

    let scale = NODES as f64 / (1.0 - DAMPING);
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut reader = connect(addr);
                let mut checked = 0usize;
                let mut generations_seen = std::collections::BTreeSet::new();
                while !stop.load(Ordering::Acquire) {
                    let (status, body) = get(&mut reader, "/score?node=0");
                    assert_eq!(status, 200, "{body}");
                    let doc = Json::parse(&body).unwrap();
                    let generation = doc.get("generation").and_then(Json::as_f64).unwrap() as usize;
                    assert!(
                        (1..=TABLE.len()).contains(&generation),
                        "generation {generation} was never published"
                    );
                    let (p0, _, flag) = TABLE[generation - 1];
                    let score = doc.get("score").unwrap();
                    let pagerank = score.get("pagerank").and_then(Json::as_f64).unwrap();
                    let flagged = score.get("flagged") == Some(&Json::Bool(true));
                    // The consistency pin: score and flag must belong to
                    // the generation the response claims.
                    assert!(
                        (pagerank - p0 * scale).abs() < 1e-6,
                        "generation {generation} reported pagerank {pagerank}, expected {}",
                        p0 * scale
                    );
                    assert_eq!(flagged, flag, "generation {generation} reported flag {flagged}");
                    checked += 1;
                    generations_seen.insert(generation);
                }
                (checked, generations_seen)
            })
        })
        .collect();

    // Publish the remaining generations, triggering a swap after each.
    let mut control = connect(addr);
    for row in 1..TABLE.len() {
        let generation = publish(&state, row);
        assert_eq!(generation as usize, row + 1);
        let (status, body) = get(&mut control, "/reload");
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("reloaded"), Some(&Json::Bool(true)), "{body}");
        assert_eq!(doc.get("generation").and_then(Json::as_f64), Some(generation as f64));
        // Let the readers observe this generation for a moment.
        std::thread::sleep(Duration::from_millis(30));
    }

    stop.store(true, Ordering::Release);
    let mut total_checked = 0usize;
    let mut all_generations = std::collections::BTreeSet::new();
    for reader in readers {
        let (checked, generations) = reader.join().expect("no reader panicked");
        assert!(checked > 0, "a reader never completed a request");
        total_checked += checked;
        all_generations.extend(generations);
    }
    // The readers collectively hammered through the swap sequence and
    // saw it progress: multiple generations, hundreds of responses.
    assert!(total_checked >= 50, "only {total_checked} responses checked");
    assert!(all_generations.len() >= 2, "readers only ever saw generations {all_generations:?}");

    // After the last swap the daemon serves the final generation.
    let (_, body) = get(&mut control, "/score?node=0");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("generation").and_then(Json::as_f64), Some(TABLE.len() as f64));
    let (_, body) = get(&mut control, "/stats");
    let doc = Json::parse(&body).unwrap();
    assert_eq!(doc.get("generation").and_then(Json::as_f64), Some(TABLE.len() as f64));

    // Close the keep-alive control connection before stopping: an open
    // connection would hold its accept thread in read_request until the
    // idle timeout.
    drop(control);
    drop(server);
    assert!(spammass_serve::serving_addr().is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}
