//! Staleness detection and snapshot production for the daemon.
//!
//! A [`Reloader`] owns the two refresh paths:
//!
//! 1. **External publish** — some other process (a `spammass update`
//!    cron job, a migration) published a newer generation through the
//!    crash-safe manifest. The reloader sees the higher generation
//!    number and just loads it.
//! 2. **Journal tail** — the watched `SPAMDLT` journal has records past
//!    what this daemon already consumed. The reloader replays exactly
//!    the `spammass update` flow in-process: lenient state load, warm
//!    [`MassEstimator::update`] over the fresh records, crash-safe
//!    `StateDir::save`, then a load of the generation it just
//!    published. Consumed-record accounting is positional (the journal
//!    is append-only), so a journal that starts existing only after the
//!    daemon is already up replays from its first record.
//!
//! Either path ends in a brand-new [`Snapshot`]; the caller owns the
//! actual swap. `check` holds no lock shared with readers — the daemon
//! keeps answering from the old snapshot for the whole solve.

use crate::snapshot::Snapshot;
use crate::ServeError;
use spammass_core::detector::DetectorConfig;
use spammass_core::estimate::{EstimatorConfig, MassEstimator};
use spammass_delta::{read_journal_with, DeltaRecord, StateDir};
use spammass_graph::io::ReadOptions;
use spammass_pagerank::PageRankConfig;
use std::fs;
use std::path::PathBuf;

/// Everything a reload pass needs to re-estimate and re-snapshot.
pub struct Reloader {
    state: StateDir,
    journal: Option<PathBuf>,
    consumed: usize,
    detector: DetectorConfig,
    gamma: f64,
    damping: f64,
    threads: usize,
}

impl Reloader {
    /// A reloader over `state`, optionally tailing `journal`.
    /// `threads = 0` auto-sizes the solver pool.
    pub fn new(
        state: StateDir,
        journal: Option<PathBuf>,
        detector: DetectorConfig,
        gamma: f64,
        damping: f64,
        threads: usize,
    ) -> Reloader {
        Reloader { state, journal, consumed: 0, detector, gamma, damping, threads }
    }

    /// Loads the manifest's current generation as the daemon's first
    /// snapshot.
    pub fn initial_snapshot(&self) -> Result<Snapshot, ServeError> {
        Snapshot::load(&self.state, &self.detector, self.damping)
    }

    /// Journal records consumed so far (for tests and stats).
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// One staleness check against the snapshot currently serving as
    /// generation `current`. Returns a replacement snapshot when either
    /// refresh path produced one, `Ok(None)` when everything is fresh.
    pub fn check(&mut self, current: u64) -> Result<Option<Snapshot>, ServeError> {
        // Path 1: a newer externally published generation. A transient
        // or corrupt manifest read is "nothing new yet" — the watcher
        // must outlive a publisher mid-crash.
        if let Ok(Some(g)) = self.state.read_manifest() {
            if g > current {
                return Snapshot::load(&self.state, &self.detector, self.damping).map(Some);
            }
        }

        // Path 2: fresh journal records.
        let Some(journal) = self.journal.clone() else { return Ok(None) };
        let data = match fs::read(&journal) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let (batches, _report) = read_journal_with(&data, &ReadOptions::default())?;
        let records: Vec<DeltaRecord> = batches.into_iter().flatten().collect();
        if records.len() <= self.consumed {
            return Ok(None);
        }
        let fresh = &records[self.consumed..];

        // The spammass-update flow, in-process: lenient load → warm
        // update → crash-safe publish → snapshot the new generation.
        let (saved, _recovery) = self.state.load_with_recovery()?;
        let config = EstimatorConfig::scaled(self.gamma)
            .with_pagerank(PageRankConfig::with_damping(self.damping).threads(self.threads))
            .with_batching(true);
        let report = MassEstimator::new(config).update(saved, fresh, &self.detector)?;
        self.state.save(
            &report.graph,
            &report.core,
            &report.estimate.pagerank,
            &report.estimate.core_pagerank,
        )?;
        self.consumed = records.len();
        Snapshot::load(&self.state, &self.detector, self.damping).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_delta::journal_to_bytes;
    use spammass_graph::{GraphBuilder, NodeId};
    use std::path::Path;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("spammass-serve-reload-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed_state(dir: &Path) -> StateDir {
        // A real estimate so the warm update has solver-consistent
        // vectors: 5 hosts, boosters 2..=4 → 0, good pair 1 ↔ 3, core {3}.
        let edges: Vec<(u32, u32)> = vec![(2, 0), (3, 0), (4, 0), (0, 2), (1, 3), (3, 1), (3, 4)];
        let g = GraphBuilder::from_edges(5, &edges);
        let est =
            MassEstimator::new(EstimatorConfig::scaled(0.85)).estimate(&g, &[NodeId(3)]).unwrap();
        let state = StateDir::new(dir);
        state.save(&g, &[NodeId(3)], &est.pagerank, &est.core_pagerank).unwrap();
        state
    }

    #[test]
    fn fresh_state_is_a_no_op() {
        let dir = tmpdir("noop");
        let state = seed_state(&dir);
        let mut r = Reloader::new(
            state,
            Some(dir.join("missing.dlt")),
            DetectorConfig { rho: 1.0, tau: 0.5 },
            0.85,
            0.85,
            1,
        );
        let snap = r.initial_snapshot().unwrap();
        assert_eq!(snap.generation, 1);
        assert!(r.check(snap.generation).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn external_publish_is_picked_up() {
        let dir = tmpdir("external");
        let state = seed_state(&dir);
        let mut r = Reloader::new(
            state.clone(),
            None,
            DetectorConfig { rho: 1.0, tau: 0.5 },
            0.85,
            0.85,
            1,
        );
        let snap = r.initial_snapshot().unwrap();
        // Someone else publishes generation 2.
        let loaded = state.load().unwrap();
        state.save(&loaded.graph, &loaded.core, &loaded.pagerank, &loaded.core_pagerank).unwrap();
        let next = r.check(snap.generation).unwrap().expect("new generation seen");
        assert_eq!(next.generation, 2);
        assert!(r.check(next.generation).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_growth_updates_and_publishes() {
        let dir = tmpdir("journal");
        let state = seed_state(&dir);
        let journal = dir.join("delta.dlt");
        let mut r = Reloader::new(
            state.clone(),
            Some(journal.clone()),
            DetectorConfig { rho: 1.0, tau: 0.5 },
            0.85,
            0.85,
            1,
        );
        let snap = r.initial_snapshot().unwrap();
        assert_eq!(snap.node_count(), 5);

        // The journal appears only now — all of it is new.
        let batch = vec![
            DeltaRecord::AddNode { node: NodeId(5) },
            DeltaRecord::AddEdge { from: NodeId(5), to: NodeId(0) },
        ];
        fs::write(&journal, journal_to_bytes(&[batch])).unwrap();
        let next = r.check(snap.generation).unwrap().expect("journal records consumed");
        assert_eq!(next.generation, 2);
        assert_eq!(next.node_count(), 6);
        assert_eq!(r.consumed(), 2);
        // Same journal again: nothing new.
        assert!(r.check(next.generation).unwrap().is_none());

        // Append a second batch: only the tail is replayed.
        let more = vec![vec![DeltaRecord::AddEdge { from: NodeId(1), to: NodeId(0) }]];
        spammass_delta::append_to_file(&journal, &more).unwrap();
        let third = r.check(next.generation).unwrap().expect("appended batch consumed");
        assert_eq!(third.generation, 3);
        assert_eq!(third.edge_count(), next.edge_count() + 1);
        assert_eq!(r.consumed(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
