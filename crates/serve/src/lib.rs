//! # spammass-serve
//!
//! A long-lived spam-mass query daemon over published state
//! generations.
//!
//! The batch pipeline (`estimate` → journal → `update`) publishes
//! immutable snapshot generations through the crash-safe
//! [`spammass_delta::StateDir`] manifest. This crate turns one of those
//! directories into an online service: it mmaps the `SPAMGRPH` graph
//! image and reads the `SPAMSCRS` score vectors of the current
//! generation into an immutable [`snapshot::Snapshot`], then answers
//! HTTP/JSON queries — single score lookups, batched lookups, top-k
//! spam mass, and a per-node explanation of which in-neighbors carry
//! the core PageRank `p′` — from it.
//!
//! ## Snapshot lifecycle and the epoch swap
//!
//! Readers never lock anything for longer than one pointer clone: the
//! current snapshot lives in an `Arc` slot, every request clones the
//! `Arc` once and answers entirely from that clone, so a response can
//! never mix scores from two generations. A background reload pass
//! (periodic, and on demand via `GET /reload`) watches for two kinds of
//! staleness:
//!
//! * a **newer published generation** (another process ran
//!   `spammass update`) — load it and swap;
//! * **fresh journal records** past what the daemon already consumed —
//!   run the warm [`spammass_core::estimate::MassEstimator::update`]
//!   path in-process, publish the result through the crash-safe
//!   `StateDir::save`, and swap to the generation it produced.
//!
//! The swap itself is a single `Arc` store; in-flight requests keep
//! their old snapshot alive until they finish, then the last clone
//! drops and (for mmapped graphs) the mapping unmaps.
//!
//! The HTTP plumbing is the shared zero-dependency
//! [`spammass_obs::http`] module, served keep-alive by a thread-per-core
//! accept loop ([`server::Server`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod reload;
pub mod server;
pub mod service;
pub mod snapshot;

pub use reload::Reloader;
pub use server::{serving_addr, ServeOptions, Server};
pub use snapshot::Snapshot;

use spammass_core::estimate::EstimateError;
use spammass_delta::StateError;
use spammass_graph::GraphError;
use std::fmt;

/// Typed failures of the serving plane.
#[derive(Debug)]
pub enum ServeError {
    /// The state directory (manifest or generation payload) failed to
    /// load.
    State(StateError),
    /// A graph or journal image failed to decode.
    Graph(GraphError),
    /// The in-process warm re-estimation failed.
    Estimate(EstimateError),
    /// A socket or filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::State(e) => write!(f, "state: {e}"),
            ServeError::Graph(e) => write!(f, "graph: {e}"),
            ServeError::Estimate(e) => write!(f, "estimate: {e}"),
            ServeError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::State(e) => Some(e),
            ServeError::Graph(e) => Some(e),
            ServeError::Estimate(e) => Some(e),
            ServeError::Io(e) => Some(e),
        }
    }
}

impl From<StateError> for ServeError {
    fn from(e: StateError) -> Self {
        match e {
            StateError::Io(io) => ServeError::Io(io),
            other => ServeError::State(other),
        }
    }
}

impl From<GraphError> for ServeError {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::Io(io) => ServeError::Io(io),
            other => ServeError::Graph(other),
        }
    }
}

impl From<EstimateError> for ServeError {
    fn from(e: EstimateError) -> Self {
        ServeError::Estimate(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
