//! The thread-per-core accept loop and the epoch snapshot slot.
//!
//! One `TcpListener` is shared by N blocking accept threads (N =
//! available parallelism by default); each accepted connection is
//! served keep-alive on the thread that accepted it via the shared
//! [`spammass_obs::http`] plumbing. There is no async machinery and no
//! cross-thread handoff: a request's whole life is one thread, one
//! snapshot `Arc` clone, one response write.
//!
//! The **swap protocol**: the current [`Snapshot`] lives behind a
//! mutex-guarded `Arc` slot. Readers lock only long enough to clone the
//! `Arc`; the reload pass builds the replacement snapshot entirely
//! outside that lock and then stores it with a single assignment.
//! In-flight requests finish on the generation they started on — a
//! response can never mix scores across a swap, pinned by the
//! swap-consistency integration test.

use crate::reload::Reloader;
use crate::service::{self, QueryError};
use crate::snapshot::Snapshot;
use crate::ServeError;
use spammass_obs as obs;
use spammass_obs::http::{read_request, write_response, Request};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const TEXT: &str = "text/plain; charset=utf-8";
const JSON: &str = "application/json";

static SERVING: Mutex<Option<SocketAddr>> = Mutex::new(None);

/// The address the process's query daemon is bound to, if one is
/// running. Lets tests and siblings discover an ephemeral `:0` port.
pub fn serving_addr() -> Option<SocketAddr> {
    *SERVING.lock().unwrap_or_else(|e| e.into_inner())
}

/// Configuration of a [`Server`].
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Accept threads; `0` = available parallelism.
    pub threads: usize,
    /// How often the background pass checks for staleness.
    pub poll: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { addr: "127.0.0.1:0".to_string(), threads: 0, poll: Duration::from_secs(1) }
    }
}

pub(crate) struct Shared {
    slot: Mutex<Arc<Snapshot>>,
    reloader: Mutex<Reloader>,
    stop: AtomicBool,
}

impl Shared {
    /// One pointer clone under a short lock: the reader-side epoch pin.
    fn snapshot(&self) -> Arc<Snapshot> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn swap(&self, snapshot: Arc<Snapshot>) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = snapshot;
        obs::counter(obs::names::SERVE_SWAPS, 1.0);
    }

    /// One full staleness check; swaps and reports the new generation
    /// when a refresh path produced a snapshot.
    fn reload_now(&self) -> Result<Option<u64>, ServeError> {
        // The reloader mutex serializes concurrent /reload requests with
        // the background pass; readers never touch it.
        let mut reloader = self.reloader.lock().unwrap_or_else(|e| e.into_inner());
        let current = self.snapshot().generation;
        let started = Instant::now();
        match reloader.check(current)? {
            Some(snapshot) => {
                let generation = snapshot.generation;
                self.swap(Arc::new(snapshot));
                obs::observe(obs::names::SERVE_RELOAD_NS, started.elapsed().as_nanos() as f64);
                Ok(Some(generation))
            }
            None => Ok(None),
        }
    }
}

/// A running query daemon. Dropping it stops the accept threads and the
/// background reload pass.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    accept_threads: usize,
}

impl Server {
    /// Binds, loads the initial snapshot through `reloader`, and starts
    /// serving.
    pub fn start(options: ServeOptions, reloader: Reloader) -> Result<Server, ServeError> {
        let initial = Arc::new(reloader.initial_snapshot()?);
        let listener = TcpListener::bind(&options.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            slot: Mutex::new(initial),
            reloader: Mutex::new(reloader),
            stop: AtomicBool::new(false),
        });
        let accept_threads = if options.threads == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            options.threads
        };

        let listener = Arc::new(listener);
        let mut handles = Vec::with_capacity(accept_threads + 1);
        for worker in 0..accept_threads {
            let listener = listener.clone();
            let shared = shared.clone();
            handles.push(
                std::thread::Builder::new().name(format!("spammass-serve-{worker}")).spawn(
                    move || loop {
                        let Ok((stream, _peer)) = listener.accept() else { continue };
                        if shared.stop.load(Ordering::Acquire) {
                            break;
                        }
                        let _ = handle_connection(&shared, stream);
                    },
                )?,
            );
        }
        {
            let shared = shared.clone();
            let poll = options.poll;
            handles.push(
                std::thread::Builder::new().name("spammass-serve-reload".to_string()).spawn(
                    move || loop {
                        // Sleep in short slices so shutdown is prompt even
                        // under long poll intervals.
                        let wake = Instant::now() + poll;
                        while Instant::now() < wake {
                            if shared.stop.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(25).min(poll));
                        }
                        if shared.stop.load(Ordering::Acquire) {
                            return;
                        }
                        if let Err(e) = shared.reload_now() {
                            obs::event(
                                "serve.reload.error",
                                vec![("message".to_string(), obs::json::Json::str(e.to_string()))],
                            );
                        }
                    },
                )?,
            );
        }
        *SERVING.lock().unwrap_or_else(|e| e.into_inner()) = Some(addr);
        Ok(Server { addr, shared, handles, accept_threads })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept threads actually started.
    pub fn accept_threads(&self) -> usize {
        self.accept_threads
    }

    /// Generation currently serving.
    pub fn current_generation(&self) -> u64 {
        self.shared.snapshot().generation
    }

    /// Runs a staleness check right now (what `GET /reload` does).
    pub fn reload_now(&self) -> Result<Option<u64>, ServeError> {
        self.shared.reload_now()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // One nudge per accept thread so every blocking accept() returns
        // and observes the flag; the reload thread wakes on its own.
        for _ in 0..self.accept_threads {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let mut serving = SERVING.lock().unwrap_or_else(|e| e.into_inner());
        if *serving == Some(self.addr) {
            *serving = None;
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    // Small request/response pairs on a keep-alive connection are the
    // worst case for Nagle + delayed ACK; latency is the product here.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            Err(e) => {
                // Malformed/oversized requests get a typed error; clean
                // closes and transport failures end the connection.
                if let Some((status, message)) = e.response() {
                    obs::counter(obs::names::SERVE_REQUESTS, 1.0);
                    obs::counter(obs::names::SERVE_ERRORS, 1.0);
                    write_response(reader.get_mut(), status, TEXT, &message, false)?;
                }
                return Ok(());
            }
        };
        obs::counter(obs::names::SERVE_REQUESTS, 1.0);
        let started = Instant::now();
        let (status, content_type, body, latency_metric) = route(shared, &request);
        if let Some(name) = latency_metric {
            obs::observe(name, started.elapsed().as_nanos() as f64);
        }
        if !status.starts_with("200") {
            obs::counter(obs::names::SERVE_ERRORS, 1.0);
        }
        let keep_alive = request.keep_alive;
        write_response(reader.get_mut(), status, content_type, &body, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

type Routed = (&'static str, &'static str, String, Option<&'static str>);

fn respond(result: Result<spammass_obs::json::Json, QueryError>, metric: &'static str) -> Routed {
    match result {
        Ok(doc) => {
            let mut body = doc.render();
            body.push('\n');
            ("200 OK", JSON, body, Some(metric))
        }
        Err(e) => (e.status(), TEXT, e.message(), Some(metric)),
    }
}

fn route(shared: &Shared, request: &Request) -> Routed {
    if request.method != "GET" {
        return ("405 Method Not Allowed", TEXT, "only GET is served\n".to_string(), None);
    }
    // One snapshot pin per request: every number in the response comes
    // from the same generation, whatever the reload pass does meanwhile.
    let snapshot = shared.snapshot();
    match request.path.as_str() {
        "/score" => respond(service::score(&snapshot, request), obs::names::SERVE_SCORE_NS),
        "/batch" => respond(service::batch(&snapshot, request), obs::names::SERVE_BATCH_NS),
        "/topk" => respond(service::topk(&snapshot, request), obs::names::SERVE_TOPK_NS),
        "/explain" => respond(service::explain(&snapshot, request), obs::names::SERVE_EXPLAIN_NS),
        "/stats" => {
            let mut body = service::stats(&snapshot).render();
            body.push('\n');
            ("200 OK", JSON, body, None)
        }
        "/reload" => match shared.reload_now() {
            Ok(swapped) => {
                let generation = match swapped {
                    Some(g) => g,
                    None => snapshot.generation,
                };
                let mut body = service::reload_response(swapped.is_some(), generation).render();
                body.push('\n');
                ("200 OK", JSON, body, None)
            }
            Err(e) => ("500 Internal Server Error", TEXT, format!("reload failed: {e}\n"), None),
        },
        _ => (
            "404 Not Found",
            TEXT,
            "routes: /score /batch /topk /explain /stats /reload\n".to_string(),
            None,
        ),
    }
}
