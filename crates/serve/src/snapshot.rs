//! An immutable, queryable view of one published state generation.
//!
//! A [`Snapshot`] is loaded once and never mutated: the graph comes in
//! through the zero-copy `SPAMGRPH` mmap path where the platform
//! supports it, the score vectors through the checksummed `SPAMSCRS`
//! images, and everything derived — absolute mass, relative mass, the
//! Algorithm 2 flag set — is computed eagerly at load time with exactly
//! the conventions of `spammass_core` (`M̃ = p − p′` unclamped,
//! `m̃ = M̃/p` with `p = 0 → 0`, flag when `p̂ ≥ ρ` and `m̃ ≥ τ`), so a
//! daemon answer and a `spammass detect` run over the same generation
//! can never disagree.

use crate::ServeError;
use spammass_core::detector::{detect_raw, Detection, DetectorConfig};
use spammass_core::top_k_by;
use spammass_delta::{StateDir, StateError};
use spammass_graph::{io, Graph, GraphError, NodeId};
use std::fs;
use std::io::{BufRead, BufReader};

/// All per-node numbers the service reports for one host, in the scaled
/// (`· n/(1−c)`) convention of the paper's Section 4 — except
/// `relative`, which is the dimensionless `m̃ ∈ (−∞, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeScore {
    /// The host id.
    pub node: u32,
    /// Scaled PageRank `p̂`.
    pub pagerank: f64,
    /// Scaled core-biased PageRank `p̂′`.
    pub core_pagerank: f64,
    /// Scaled estimated absolute mass `M̃` (may be negative under γ
    /// overshoot).
    pub absolute: f64,
    /// Estimated relative mass `m̃`.
    pub relative: f64,
    /// Whether Algorithm 2 flags the host under the snapshot's ρ/τ.
    pub flagged: bool,
}

/// One in-neighbor's share of a node's core PageRank `p′`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contribution {
    /// The linking host.
    pub from: u32,
    /// The linker's own scaled `p̂′`.
    pub core_pagerank: f64,
    /// The scaled flow `c · p′_y / out(y)` it pushes over the link.
    pub contribution: f64,
}

/// Where a node's core PageRank comes from: the per-in-neighbor link
/// flows plus the residual (random jump and dangling redistribution)
/// that no single link accounts for.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The explained host.
    pub node: u32,
    /// Its scaled `p̂′`.
    pub core_pagerank: f64,
    /// Total in-degree (the contribution list may be truncated).
    pub in_degree: usize,
    /// The strongest link flows, descending.
    pub contributions: Vec<Contribution>,
    /// Scaled sum of `c · p′_y / out(y)` over **all** in-neighbors, not
    /// just the listed ones.
    pub linked_total: f64,
    /// `p̂′ − linked_total`: jump mass plus dangling redistribution.
    pub residual: f64,
}

/// Ranking axes of the top-k endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankBy {
    /// Scaled estimated absolute mass `M̃` (the default: "most spam
    /// mass").
    Absolute,
    /// Estimated relative mass `m̃`.
    Relative,
    /// Scaled PageRank `p̂`.
    Pagerank,
}

impl RankBy {
    /// Parses the `by=` query value.
    pub fn parse(s: &str) -> Option<RankBy> {
        match s {
            "absolute" | "mass" => Some(RankBy::Absolute),
            "relative" => Some(RankBy::Relative),
            "pagerank" => Some(RankBy::Pagerank),
            _ => None,
        }
    }

    /// The canonical name echoed back in responses.
    pub fn name(self) -> &'static str {
        match self {
            RankBy::Absolute => "absolute",
            RankBy::Relative => "relative",
            RankBy::Pagerank => "pagerank",
        }
    }
}

/// An immutable, fully cross-validated view of one state generation.
#[derive(Debug)]
pub struct Snapshot {
    /// The generation this snapshot was loaded from (`0`: the pre-PR-6
    /// legacy flat layout, which has no generation number).
    pub generation: u64,
    graph: Graph,
    pagerank: Vec<f64>,
    core_pagerank: Vec<f64>,
    relative: Vec<f64>,
    detection: Detection,
    core_len: usize,
    damping: f64,
    mapped: bool,
}

impl Snapshot {
    /// Loads the generation the manifest currently names (or the legacy
    /// flat layout when there is no manifest), mmapping the graph image
    /// where possible, and derives the mass vectors and flag set under
    /// `detector` and `damping`.
    pub fn load(
        state: &StateDir,
        detector: &DetectorConfig,
        damping: f64,
    ) -> Result<Snapshot, ServeError> {
        let generation = state.read_manifest()?;
        let dir = match generation {
            Some(g) => {
                let dir = state.generation_path(g);
                if !dir.is_dir() {
                    return Err(StateError::MissingGeneration { generation: g }.into());
                }
                dir
            }
            None => state.path().to_path_buf(),
        };
        let (graph, _stats) = io::map_graph_file(&dir.join(StateDir::GRAPH_FILE))?;
        let n = graph.node_count();
        let pagerank =
            spammass_delta::scores_from_bytes(&fs::read(dir.join(StateDir::PAGERANK_FILE))?)?;
        let core_pagerank =
            spammass_delta::scores_from_bytes(&fs::read(dir.join(StateDir::CORE_PAGERANK_FILE))?)?;
        for (name, v) in [("p", &pagerank), ("p_core", &core_pagerank)] {
            if v.len() != n {
                return Err(GraphError::Corrupt(format!(
                    "state mismatch: {name} has {} scores for a {n}-node graph",
                    v.len()
                ))
                .into());
            }
        }
        let mut core_len = 0usize;
        let core_file = fs::File::open(dir.join(StateDir::CORE_FILE))?;
        for (lineno, line) in BufReader::new(core_file).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let id: u32 = line.parse().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad core node id {line:?}"),
            })?;
            if id as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: id, node_count: n }.into());
            }
            core_len += 1;
        }

        // Derived vectors, exactly as spammass-core computes them:
        // absolute = p − p′ (no clamping), relative = absolute/p with
        // p = 0 → 0, flags via detect_raw under scale n/(1−c).
        let relative: Vec<f64> = pagerank
            .iter()
            .zip(&core_pagerank)
            .map(|(&p, &pc)| if p > 0.0 { (p - pc) / p } else { 0.0 })
            .collect();
        let scale = n as f64 / (1.0 - damping);
        let detection = detect_raw(&pagerank, &relative, scale, detector);
        let mapped = graph.is_zero_copy();
        Ok(Snapshot {
            generation: generation.unwrap_or(0),
            graph,
            pagerank,
            core_pagerank,
            relative,
            detection,
            core_len,
            damping,
            mapped,
        })
    }

    /// Number of hosts.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of links.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Size of the good core.
    pub fn core_len(&self) -> usize {
        self.core_len
    }

    /// Damping factor the flag set was derived under.
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// The `n/(1−c)` factor mapping stored scores onto the paper's
    /// scaled convention.
    pub fn scale(&self) -> f64 {
        self.graph.node_count() as f64 / (1.0 - self.damping)
    }

    /// Whether the graph image is served zero-copy from an mmap.
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// The Algorithm 2 run this snapshot derived at load time.
    pub fn detection(&self) -> &Detection {
        &self.detection
    }

    /// All reported numbers for `node`; `None` when out of range.
    pub fn score(&self, node: u32) -> Option<NodeScore> {
        if node as usize >= self.graph.node_count() {
            return None;
        }
        let i = node as usize;
        let scale = self.scale();
        Some(NodeScore {
            node,
            pagerank: self.pagerank[i] * scale,
            core_pagerank: self.core_pagerank[i] * scale,
            absolute: (self.pagerank[i] - self.core_pagerank[i]) * scale,
            relative: self.relative[i],
            flagged: self.detection.is_candidate(NodeId(node)),
        })
    }

    /// The `k` hosts ranking highest on `by`, descending.
    pub fn top_k(&self, by: RankBy, k: usize) -> Vec<NodeScore> {
        let scale = self.scale();
        let scores = top_k_by(0..self.graph.node_count() as u32, k, |&x| {
            let i = x as usize;
            match by {
                RankBy::Absolute => (self.pagerank[i] - self.core_pagerank[i]) * scale,
                RankBy::Relative => self.relative[i],
                RankBy::Pagerank => self.pagerank[i] * scale,
            }
        });
        scores.into_iter().filter_map(|x| self.score(x)).collect()
    }

    /// Which in-neighbors (and what residual jump share) drive `p′` at
    /// `node`; `limit` caps the listed contributions. `None` when out of
    /// range.
    pub fn explain(&self, node: u32, limit: usize) -> Option<Explanation> {
        if node as usize >= self.graph.node_count() {
            return None;
        }
        let x = NodeId(node);
        let scale = self.scale();
        let c = self.damping;
        let ins = self.graph.in_neighbors(x);
        let mut linked_raw = 0.0f64;
        let flows: Vec<Contribution> = ins
            .iter()
            .map(|&y| {
                let out = self.graph.out_degree(y);
                let raw =
                    if out > 0 { c * self.core_pagerank[y.index()] / out as f64 } else { 0.0 };
                linked_raw += raw;
                Contribution {
                    from: y.0,
                    core_pagerank: self.core_pagerank[y.index()] * scale,
                    contribution: raw * scale,
                }
            })
            .collect();
        let contributions = top_k_by(flows, limit, |f| f.contribution);
        let core_pagerank = self.core_pagerank[node as usize] * scale;
        let linked_total = linked_raw * scale;
        Some(Explanation {
            node,
            core_pagerank,
            in_degree: ins.len(),
            contributions,
            linked_total,
            residual: core_pagerank - linked_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spammass-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// 4 hosts: 1→0, 2→0, 2→3; core = {2}. Handcrafted score vectors.
    fn publish(dir: &PathBuf, p: &[f64], pc: &[f64]) -> (StateDir, u64) {
        let g = GraphBuilder::from_edges(4, &[(1, 0), (2, 0), (2, 3)]);
        let state = StateDir::new(dir);
        let generation = state.save(&g, &[NodeId(2)], p, pc).unwrap();
        (state, generation)
    }

    #[test]
    fn snapshot_matches_core_conventions() {
        let dir = tmpdir("conventions");
        let p = [0.4, 0.1, 0.3, 0.2];
        let pc = [0.1, 0.0, 0.3, 0.05];
        let (state, generation) = publish(&dir, &p, &pc);
        let detector = DetectorConfig { rho: 1.0, tau: 0.5 };
        let snap = Snapshot::load(&state, &detector, 0.85).unwrap();
        assert_eq!(snap.generation, generation);
        assert_eq!(snap.node_count(), 4);
        assert_eq!(snap.edge_count(), 3);
        assert_eq!(snap.core_len(), 1);
        let scale = 4.0 / 0.15;
        assert!((snap.scale() - scale).abs() < 1e-12);

        let s0 = snap.score(0).unwrap();
        assert!((s0.pagerank - 0.4 * scale).abs() < 1e-9);
        assert!((s0.absolute - 0.3 * scale).abs() < 1e-9);
        assert!((s0.relative - 0.75).abs() < 1e-12);
        // rho = 1 → raw_rho = 1/scale = 0.0375: all four pass the pool;
        // tau = 0.5 flags 0 (m̃ 0.75), 1 (1.0), 3 (0.75) but not 2 (0).
        assert!(s0.flagged);
        assert!(snap.score(1).unwrap().flagged);
        assert!(!snap.score(2).unwrap().flagged);
        assert!(snap.score(3).unwrap().flagged);
        assert!(snap.score(4).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn top_k_ranks_on_the_requested_axis() {
        let dir = tmpdir("topk");
        let p = [0.4, 0.1, 0.3, 0.2];
        let pc = [0.1, 0.0, 0.3, 0.05];
        let (state, _) = publish(&dir, &p, &pc);
        let snap = Snapshot::load(&state, &DetectorConfig { rho: 1.0, tau: 0.5 }, 0.85).unwrap();

        // Absolute mass: 0.3, 0.1, 0.0, 0.15 → nodes 0, 3, 1, 2.
        let by_mass: Vec<u32> =
            snap.top_k(RankBy::Absolute, 3).into_iter().map(|s| s.node).collect();
        assert_eq!(by_mass, vec![0, 3, 1]);
        // Relative: 0.75, 1.0, 0.0, 0.75 → 1 first, then 0 before 3 (tie
        // breaks to the earlier node).
        let by_rel: Vec<u32> =
            snap.top_k(RankBy::Relative, 4).into_iter().map(|s| s.node).collect();
        assert_eq!(by_rel, vec![1, 0, 3, 2]);
        let by_pr: Vec<u32> = snap.top_k(RankBy::Pagerank, 2).into_iter().map(|s| s.node).collect();
        assert_eq!(by_pr, vec![0, 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explain_splits_links_from_residual() {
        let dir = tmpdir("explain");
        let p = [0.4, 0.1, 0.3, 0.2];
        let pc = [0.1, 0.02, 0.3, 0.05];
        let (state, _) = publish(&dir, &p, &pc);
        let snap = Snapshot::load(&state, &DetectorConfig { rho: 1.0, tau: 0.5 }, 0.85).unwrap();
        let scale = snap.scale();

        // Node 0 has in-neighbors 1 (out-degree 1) and 2 (out-degree 2):
        // flows 0.85·0.02/1 = 0.017 and 0.85·0.3/2 = 0.1275.
        let ex = snap.explain(0, 10).unwrap();
        assert_eq!(ex.in_degree, 2);
        assert_eq!(ex.contributions.len(), 2);
        assert_eq!(ex.contributions[0].from, 2);
        assert!((ex.contributions[0].contribution - 0.1275 * scale).abs() < 1e-9);
        assert_eq!(ex.contributions[1].from, 1);
        assert!((ex.linked_total - (0.017 + 0.1275) * scale).abs() < 1e-9);
        assert!((ex.residual - (0.1 - 0.1445) * scale).abs() < 1e-9);

        // limit truncates but linked_total still covers every link.
        let ex1 = snap.explain(0, 1).unwrap();
        assert_eq!(ex1.contributions.len(), 1);
        assert!((ex1.linked_total - ex.linked_total).abs() < 1e-12);
        assert!(snap.explain(99, 1).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_vectors_are_rejected() {
        let dir = tmpdir("mismatch");
        let p = [0.25, 0.25, 0.25, 0.25];
        let pc = [0.1, 0.1, 0.1, 0.1];
        let (state, generation) = publish(&dir, &p, &pc);
        let gen_dir = state.generation_path(generation);
        std::fs::write(
            gen_dir.join(StateDir::PAGERANK_FILE),
            spammass_delta::scores_to_bytes(&[0.5; 9]),
        )
        .unwrap();
        assert!(Snapshot::load(&state, &DetectorConfig::default(), 0.85).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
