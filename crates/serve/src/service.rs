//! Endpoint logic: query parameters in, versioned JSON documents out.
//!
//! Every response document carries a `schema` tag
//! (`spammass.<endpoint>_response/v1`) and the `generation` of the
//! snapshot it was answered from, so clients can pin formats and detect
//! swaps. The functions here are pure — snapshot plus parsed request in,
//! `Json` out — which keeps them unit-testable without sockets; the
//! accept loop in [`crate::server`] owns transport concerns.

use crate::snapshot::{NodeScore, RankBy, Snapshot};
use spammass_obs::http::Request;
use spammass_obs::json::Json;

/// Schema tag of `/score` responses.
pub const SCORE_SCHEMA: &str = "spammass.score_response/v1";
/// Schema tag of `/batch` responses.
pub const BATCH_SCHEMA: &str = "spammass.batch_response/v1";
/// Schema tag of `/topk` responses.
pub const TOPK_SCHEMA: &str = "spammass.topk_response/v1";
/// Schema tag of `/explain` responses.
pub const EXPLAIN_SCHEMA: &str = "spammass.explain_response/v1";
/// Schema tag of `/stats` responses.
pub const STATS_SCHEMA: &str = "spammass.stats_response/v1";
/// Schema tag of `/reload` responses.
pub const RELOAD_SCHEMA: &str = "spammass.reload_response/v1";

/// Most node ids one `/batch` request may ask for.
pub const BATCH_LIMIT: usize = 1024;
/// Largest accepted `/topk` k.
pub const TOPK_LIMIT: usize = 10_000;
/// Default `/explain` contribution count.
pub const EXPLAIN_DEFAULT_LIMIT: usize = 10;

/// A client-side request problem, mapped onto an HTTP status.
#[derive(Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Missing or unparseable parameter → 400.
    BadParam(String),
    /// A node id outside the snapshot's range → 404.
    UnknownNode(u32),
}

impl QueryError {
    /// The HTTP status line this error maps to.
    pub fn status(&self) -> &'static str {
        match self {
            QueryError::BadParam(_) => "400 Bad Request",
            QueryError::UnknownNode(_) => "404 Not Found",
        }
    }

    /// The plain-text body.
    pub fn message(&self) -> String {
        match self {
            QueryError::BadParam(m) => format!("{m}\n"),
            QueryError::UnknownNode(node) => format!("node {node} out of range\n"),
        }
    }
}

fn parse_node(value: &str) -> Result<u32, QueryError> {
    value
        .parse()
        .map_err(|_| QueryError::BadParam(format!("bad node id {value:?} (numeric ids only)")))
}

fn require_node(request: &Request) -> Result<u32, QueryError> {
    let raw = request
        .query_param("node")
        .ok_or_else(|| QueryError::BadParam("missing node=<id> parameter".to_string()))?;
    parse_node(raw)
}

fn score_fields(s: &NodeScore) -> Json {
    Json::obj([
        ("node", Json::uint(u64::from(s.node))),
        ("pagerank", Json::num(s.pagerank)),
        ("core_pagerank", Json::num(s.core_pagerank)),
        ("absolute_mass", Json::num(s.absolute)),
        ("relative_mass", Json::num(s.relative)),
        ("flagged", Json::Bool(s.flagged)),
    ])
}

fn tagged(schema: &str, snapshot: &Snapshot, rest: Vec<(String, Json)>) -> Json {
    let mut fields = vec![
        ("schema".to_string(), Json::str(schema)),
        ("generation".to_string(), Json::uint(snapshot.generation)),
    ];
    fields.extend(rest);
    Json::Obj(fields)
}

/// `GET /score?node=N` — one host's full score row.
pub fn score(snapshot: &Snapshot, request: &Request) -> Result<Json, QueryError> {
    let node = require_node(request)?;
    let s = snapshot.score(node).ok_or(QueryError::UnknownNode(node))?;
    Ok(tagged(SCORE_SCHEMA, snapshot, vec![("score".to_string(), score_fields(&s))]))
}

/// `GET /batch?nodes=N,N,...` — up to [`BATCH_LIMIT`] score rows in
/// request order. Unknown ids fail the whole batch (a partial answer
/// would be ambiguous to diff against).
pub fn batch(snapshot: &Snapshot, request: &Request) -> Result<Json, QueryError> {
    let raw = request
        .query_param("nodes")
        .ok_or_else(|| QueryError::BadParam("missing nodes=<id,id,...> parameter".to_string()))?;
    let ids: Vec<&str> = raw.split(',').filter(|s| !s.is_empty()).collect();
    if ids.is_empty() {
        return Err(QueryError::BadParam("nodes= lists no ids".to_string()));
    }
    if ids.len() > BATCH_LIMIT {
        return Err(QueryError::BadParam(format!(
            "{} ids exceed the batch limit of {BATCH_LIMIT}",
            ids.len()
        )));
    }
    let mut results = Vec::with_capacity(ids.len());
    for raw_id in ids {
        let node = parse_node(raw_id)?;
        let s = snapshot.score(node).ok_or(QueryError::UnknownNode(node))?;
        results.push(score_fields(&s));
    }
    Ok(tagged(
        BATCH_SCHEMA,
        snapshot,
        vec![
            ("count".to_string(), Json::uint(results.len() as u64)),
            ("results".to_string(), Json::Arr(results)),
        ],
    ))
}

/// `GET /topk?k=K[&by=absolute|relative|pagerank]` — the K hosts with
/// the most (estimated, scaled) spam mass, or another axis via `by=`.
pub fn topk(snapshot: &Snapshot, request: &Request) -> Result<Json, QueryError> {
    let k: usize = match request.query_param("k") {
        Some(raw) => raw.parse().map_err(|_| QueryError::BadParam(format!("bad k {raw:?}")))?,
        None => 10,
    };
    if k > TOPK_LIMIT {
        return Err(QueryError::BadParam(format!("k {k} exceeds the limit of {TOPK_LIMIT}")));
    }
    let by = match request.query_param("by") {
        Some(raw) => RankBy::parse(raw).ok_or_else(|| {
            QueryError::BadParam(format!("bad by {raw:?} (absolute, relative, pagerank)"))
        })?,
        None => RankBy::Absolute,
    };
    let results: Vec<Json> = snapshot.top_k(by, k).iter().map(score_fields).collect();
    Ok(tagged(
        TOPK_SCHEMA,
        snapshot,
        vec![
            ("by".to_string(), Json::str(by.name())),
            ("k".to_string(), Json::uint(k as u64)),
            ("count".to_string(), Json::uint(results.len() as u64)),
            ("results".to_string(), Json::Arr(results)),
        ],
    ))
}

/// `GET /explain?node=N[&limit=L]` — which in-neighbors and what
/// core-PageRank share drive `p′` at N.
pub fn explain(snapshot: &Snapshot, request: &Request) -> Result<Json, QueryError> {
    let node = require_node(request)?;
    let limit: usize = match request.query_param("limit") {
        Some(raw) => raw.parse().map_err(|_| QueryError::BadParam(format!("bad limit {raw:?}")))?,
        None => EXPLAIN_DEFAULT_LIMIT,
    };
    let ex = snapshot.explain(node, limit).ok_or(QueryError::UnknownNode(node))?;
    let contributions: Vec<Json> = ex
        .contributions
        .iter()
        .map(|f| {
            Json::obj([
                ("from", Json::uint(u64::from(f.from))),
                ("core_pagerank", Json::num(f.core_pagerank)),
                ("contribution", Json::num(f.contribution)),
            ])
        })
        .collect();
    Ok(tagged(
        EXPLAIN_SCHEMA,
        snapshot,
        vec![
            ("node".to_string(), Json::uint(u64::from(ex.node))),
            ("core_pagerank".to_string(), Json::num(ex.core_pagerank)),
            ("in_degree".to_string(), Json::uint(ex.in_degree as u64)),
            ("linked_total".to_string(), Json::num(ex.linked_total)),
            ("residual".to_string(), Json::num(ex.residual)),
            ("damping".to_string(), Json::num(snapshot.damping())),
            ("contributions".to_string(), Json::Arr(contributions)),
        ],
    ))
}

/// `GET /stats` — the serving snapshot's shape and detector settings.
pub fn stats(snapshot: &Snapshot) -> Json {
    let detection = snapshot.detection();
    tagged(
        STATS_SCHEMA,
        snapshot,
        vec![
            ("nodes".to_string(), Json::uint(snapshot.node_count() as u64)),
            ("edges".to_string(), Json::uint(snapshot.edge_count() as u64)),
            ("core_size".to_string(), Json::uint(snapshot.core_len() as u64)),
            ("candidates".to_string(), Json::uint(detection.candidates.len() as u64)),
            ("considered".to_string(), Json::uint(detection.considered as u64)),
            ("rho".to_string(), Json::num(detection.config.rho)),
            ("tau".to_string(), Json::num(detection.config.tau)),
            ("damping".to_string(), Json::num(snapshot.damping())),
            ("mapped".to_string(), Json::Bool(snapshot.is_mapped())),
        ],
    )
}

/// The `/reload` response document.
pub fn reload_response(reloaded: bool, generation: u64) -> Json {
    Json::obj([
        ("schema", Json::str(RELOAD_SCHEMA)),
        ("reloaded", Json::Bool(reloaded)),
        ("generation", Json::uint(generation)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_core::detector::DetectorConfig;
    use spammass_delta::StateDir;
    use spammass_graph::{GraphBuilder, NodeId};
    use std::io::BufReader;

    fn request(path_and_query: &str) -> Request {
        let text = format!("GET {path_and_query} HTTP/1.1\r\n\r\n");
        spammass_obs::http::read_request(&mut BufReader::new(text.as_bytes())).unwrap()
    }

    fn snapshot() -> Snapshot {
        let dir =
            std::env::temp_dir().join(format!("spammass-serve-service-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = GraphBuilder::from_edges(4, &[(1, 0), (2, 0), (2, 3)]);
        let state = StateDir::new(&dir);
        state.save(&g, &[NodeId(2)], &[0.4, 0.1, 0.3, 0.2], &[0.1, 0.0, 0.3, 0.05]).unwrap();
        let snap = Snapshot::load(&state, &DetectorConfig { rho: 1.0, tau: 0.5 }, 0.85).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        snap
    }

    #[test]
    fn score_responses_are_tagged_and_complete() {
        let snap = snapshot();
        let doc = score(&snap, &request("/score?node=0")).unwrap();
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCORE_SCHEMA));
        assert_eq!(parsed.get("generation").and_then(Json::as_f64), Some(1.0));
        let s = parsed.get("score").unwrap();
        assert_eq!(s.get("node").and_then(Json::as_f64), Some(0.0));
        let scale = 4.0 / 0.15;
        let pr = s.get("pagerank").and_then(Json::as_f64).unwrap();
        assert!((pr - 0.4 * scale).abs() < 1e-6, "{pr}");
        assert_eq!(s.get("flagged"), Some(&Json::Bool(true)));

        assert_eq!(
            score(&snap, &request("/score")).unwrap_err(),
            QueryError::BadParam("missing node=<id> parameter".to_string())
        );
        assert!(matches!(
            score(&snap, &request("/score?node=banana")).unwrap_err(),
            QueryError::BadParam(_)
        ));
        assert_eq!(
            score(&snap, &request("/score?node=99")).unwrap_err(),
            QueryError::UnknownNode(99)
        );
    }

    #[test]
    fn batch_preserves_request_order_and_fails_whole() {
        let snap = snapshot();
        let doc = batch(&snap, &request("/batch?nodes=3,0,3")).unwrap();
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(BATCH_SCHEMA));
        assert_eq!(parsed.get("count").and_then(Json::as_f64), Some(3.0));
        let nodes: Vec<f64> = parsed
            .get("results")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|r| r.get("node").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(nodes, vec![3.0, 0.0, 3.0]);

        assert!(matches!(
            batch(&snap, &request("/batch?nodes=0,99")).unwrap_err(),
            QueryError::UnknownNode(99)
        ));
        assert!(matches!(
            batch(&snap, &request("/batch?nodes=")).unwrap_err(),
            QueryError::BadParam(_)
        ));
        let oversized = format!("/batch?nodes={}", vec!["0"; BATCH_LIMIT + 1].join(","));
        assert!(matches!(batch(&snap, &request(&oversized)).unwrap_err(), QueryError::BadParam(_)));
    }

    #[test]
    fn topk_ranks_and_validates() {
        let snap = snapshot();
        let doc = topk(&snap, &request("/topk?k=2")).unwrap();
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("by").and_then(Json::as_str), Some("absolute"));
        let nodes: Vec<f64> = parsed
            .get("results")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|r| r.get("node").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(nodes, vec![0.0, 3.0]);

        let doc = topk(&snap, &request("/topk?k=1&by=relative")).unwrap();
        let parsed = Json::parse(&doc.render()).unwrap();
        let first = parsed.get("results").and_then(Json::as_arr).unwrap()[0]
            .get("node")
            .and_then(Json::as_f64);
        assert_eq!(first, Some(1.0));

        assert!(matches!(
            topk(&snap, &request("/topk?by=banana")).unwrap_err(),
            QueryError::BadParam(_)
        ));
        assert!(matches!(
            topk(&snap, &request(&format!("/topk?k={}", TOPK_LIMIT + 1))).unwrap_err(),
            QueryError::BadParam(_)
        ));
    }

    #[test]
    fn explain_lists_contributions() {
        let snap = snapshot();
        let doc = explain(&snap, &request("/explain?node=0&limit=1")).unwrap();
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(EXPLAIN_SCHEMA));
        assert_eq!(parsed.get("in_degree").and_then(Json::as_f64), Some(2.0));
        let contributions = parsed.get("contributions").and_then(Json::as_arr).unwrap();
        assert_eq!(contributions.len(), 1);
        assert_eq!(contributions[0].get("from").and_then(Json::as_f64), Some(2.0));
        assert!(matches!(
            explain(&snap, &request("/explain?node=7")).unwrap_err(),
            QueryError::UnknownNode(7)
        ));
    }

    #[test]
    fn stats_and_reload_documents() {
        let snap = snapshot();
        let parsed = Json::parse(&stats(&snap).render()).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(STATS_SCHEMA));
        assert_eq!(parsed.get("nodes").and_then(Json::as_f64), Some(4.0));
        assert_eq!(parsed.get("edges").and_then(Json::as_f64), Some(3.0));
        assert_eq!(parsed.get("candidates").and_then(Json::as_f64), Some(3.0));

        let parsed = Json::parse(&reload_response(true, 7).render()).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(RELOAD_SCHEMA));
        assert_eq!(parsed.get("reloaded"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("generation").and_then(Json::as_f64), Some(7.0));
    }
}
