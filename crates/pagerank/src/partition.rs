//! Work partitioning for the pooled gather kernels.
//!
//! Two strategies live here:
//!
//! * [`EdgePartition`] — the engine's partitioner. The in-CSR edge array
//!   is cut into `parts` **exactly equal edge ranges**; a worker owns
//!   every row fully contained in its range (its *interior*, written
//!   directly) plus up to two *partial rows* whose edges straddle a cut.
//!   Partial sums land in per-worker scratch slots and the control
//!   thread's merge phase combines them in worker order — at most
//!   `parts − 1` boundary rows per sweep. Unlike node cuts weighted by
//!   in-degree, an edge cut cannot be skewed by hubs: a row wider than a
//!   whole worker quota is simply shared by several workers.
//! * [`NodePartition`] — the previous node-range partitioner, kept for
//!   the legacy two-pass baseline and for kernels whose per-node work is
//!   uniform. Cuts `0..n` by the monotone cumulative weight
//!   `in_offsets[y] + y` (node weight `in_degree + 1`).
//!
//! Both are pure functions of `(graph, parts)`, so the fixed-partition
//! determinism guarantee of the solvers reduces to reusing one partition
//! per solve.

use spammass_graph::Graph;
use std::ops::Range;

/// A partition of the destination range `0..n` into contiguous,
/// disjoint, exhaustive chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePartition {
    /// Chunk boundaries: chunk `k` is `starts[k]..starts[k + 1]`.
    /// Always `starts[0] == 0` and `*starts.last() == n`, non-decreasing.
    starts: Vec<usize>,
}

impl NodePartition {
    /// Cuts `0..node_count` into `parts` chunks of (nearly) equal
    /// **in-edge** weight, using the graph's in-CSR offsets.
    ///
    /// Chunk boundaries land on the smallest node whose cumulative
    /// weight reaches `k/parts` of the total, so every chunk's weight is
    /// below `total/parts + w_max + 1` where `w_max` is the heaviest
    /// single node — the best a contiguous cut can do, since one node
    /// cannot be split.
    pub fn edge_balanced(graph: &Graph, parts: usize) -> NodePartition {
        let n = graph.node_count();
        let parts = parts.max(1);
        let offsets = graph.in_offsets();
        // Cumulative weight of the prefix 0..y with node weight
        // in_degree + 1; monotone strictly increasing in y.
        let cum = |y: usize| offsets[y] as usize + y;
        let total = cum(n);
        let mut starts = Vec::with_capacity(parts + 1);
        starts.push(0usize);
        for k in 1..parts {
            let target = total * k / parts;
            let prev = *starts.last().expect("starts is non-empty");
            // First y in [prev, n] with cum(y) >= target.
            let (mut lo, mut hi) = (prev, n);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if cum(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            starts.push(lo);
        }
        starts.push(n);
        NodePartition { starts }
    }

    /// Cuts `0..node_count` into `parts` chunks of (nearly) equal node
    /// count, ignoring edge weight. The legacy strategy, kept for
    /// comparison and for kernels whose per-node work is uniform.
    pub fn uniform(node_count: usize, parts: usize) -> NodePartition {
        let parts = parts.max(1);
        let mut starts = Vec::with_capacity(parts + 1);
        for k in 0..=parts {
            starts.push(node_count * k / parts);
        }
        NodePartition { starts }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// Whether the partition has no chunks (never true for constructed
    /// partitions; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The destination range of chunk `k`.
    #[inline]
    pub fn range(&self, k: usize) -> Range<usize> {
        self.starts[k]..self.starts[k + 1]
    }

    /// Iterator over all chunk ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.len()).map(move |k| self.range(k))
    }

    /// In-edge count of each chunk (diagnostic; used by skew tests and
    /// benchmarks).
    pub fn chunk_in_edges(&self, graph: &Graph) -> Vec<usize> {
        let offsets = graph.in_offsets();
        self.ranges().map(|r| (offsets[r.end] - offsets[r.start]) as usize).collect()
    }
}

/// A piece of a destination row whose in-edges straddle an edge-range
/// cut: worker-local gathers over `edges` produce a partial sum the
/// merge phase combines with the row's other pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialRow {
    /// The destination node the piece belongs to.
    pub node: usize,
    /// The sub-range of the in-CSR edge array this piece covers.
    pub edges: Range<usize>,
}

/// One boundary row's merge recipe: the scratch slots holding its
/// partial sums, in worker (= edge) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeEntry {
    /// The boundary destination node.
    pub node: usize,
    /// `(worker, slot)` pairs in ascending worker order; `slot` is 0 for
    /// the worker's head piece, 1 for its tail piece (see
    /// [`EdgePartition::pieces`]).
    pub parts: Vec<(usize, usize)>,
}

/// A partition of the in-CSR edge array `0..m` into `parts` contiguous
/// equal ranges, with the induced row ownership: per worker an interior
/// node range (rows fully inside its edge range, written directly) and
/// up to two [`PartialRow`] pieces, plus the [`MergeEntry`] plan that
/// reassembles the boundary rows.
///
/// Invariants (pinned by unit and property tests):
///
/// * edge ranges are contiguous, disjoint and cover `0..m`, each of size
///   `⌊m/parts⌋` or `⌈m/parts⌉`;
/// * every node lands in exactly one worker's interior **or** exactly
///   one merge entry (never both, never neither);
/// * a merge entry's pieces tile its row's edge range exactly, in edge
///   order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgePartition {
    node_count: usize,
    /// Edge-range boundaries: worker `w` owns edges `cuts[w]..cuts[w+1]`.
    cuts: Vec<usize>,
    /// Per-worker fully-owned destination rows.
    interiors: Vec<Range<usize>>,
    /// Per-worker partial pieces: `[head, tail]`. The head piece belongs
    /// to a row that began in an earlier worker's range; the tail piece
    /// to a row that begins here and spills into a later range. A worker
    /// buried inside one huge row has only a head piece.
    pieces: Vec<[Option<PartialRow>; 2]>,
    /// Boundary rows in ascending node order.
    merge: Vec<MergeEntry>,
}

impl EdgePartition {
    /// Cuts the graph's in-CSR edge array into `parts` equal ranges and
    /// derives row ownership. Pure in `(graph, parts)`.
    pub fn balanced(graph: &Graph, parts: usize) -> EdgePartition {
        let n = graph.node_count();
        let m = graph.edge_count();
        let parts = parts.max(1);
        let offsets = graph.in_offsets();
        let off = |y: usize| offsets[y] as usize;
        let cuts: Vec<usize> = (0..=parts).map(|w| m * w / parts).collect();
        let mut interiors = Vec::with_capacity(parts);
        let mut pieces: Vec<[Option<PartialRow>; 2]> = vec![[None, None]; parts];
        // (node, worker, slot) in construction order, which is ascending
        // by node and, within a node, by worker — see the cursor
        // argument below.
        let mut triples: Vec<(usize, usize, usize)> = Vec::new();
        // `node` is the first row not yet fully assigned; every edge
        // below the current worker's `lo` already belongs to an earlier
        // worker, so the cursor only moves forward.
        let mut node = 0usize;
        for w in 0..parts {
            let (lo, hi) = (cuts[w], cuts[w + 1]);
            if node < n && off(node) < lo {
                // Row `node` began in an earlier range: this worker owns
                // a head piece of it (empty when lo == hi).
                let row_end = off(node + 1);
                let piece_end = row_end.min(hi);
                if piece_end > lo {
                    pieces[w][0] = Some(PartialRow { node, edges: lo..piece_end });
                    triples.push((node, w, 0));
                }
                if row_end > hi {
                    // The row swallows this worker's whole range; the
                    // next worker continues it.
                    interiors.push(node..node);
                    continue;
                }
                node += 1;
            }
            let start = node;
            while node < n && off(node + 1) <= hi {
                node += 1;
            }
            interiors.push(start..node);
            if node < n && off(node) < hi {
                // Row `node` begins here and spills past `hi`.
                pieces[w][1] = Some(PartialRow { node, edges: off(node)..hi });
                triples.push((node, w, 1));
            }
        }
        debug_assert_eq!(node, n, "row cursor must consume every node");
        let mut merge: Vec<MergeEntry> = Vec::new();
        for (node, w, slot) in triples {
            match merge.last_mut() {
                Some(e) if e.node == node => e.parts.push((w, slot)),
                _ => merge.push(MergeEntry { node, parts: vec![(w, slot)] }),
            }
        }
        EdgePartition { node_count: n, cuts, interiors, pieces, merge }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.cuts.len() - 1
    }

    /// Whether the partition has no workers (never true for constructed
    /// partitions; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The node count the partition was built for.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Worker `w`'s edge range.
    #[inline]
    pub fn edge_range(&self, w: usize) -> Range<usize> {
        self.cuts[w]..self.cuts[w + 1]
    }

    /// Worker `w`'s fully-owned destination rows.
    #[inline]
    pub fn interior(&self, w: usize) -> Range<usize> {
        self.interiors[w].clone()
    }

    /// Worker `w`'s partial pieces, `[head, tail]`.
    #[inline]
    pub fn pieces(&self, w: usize) -> &[Option<PartialRow>; 2] {
        &self.pieces[w]
    }

    /// The merge plan: boundary rows in ascending node order.
    #[inline]
    pub fn merge_entries(&self) -> &[MergeEntry] {
        &self.merge
    }

    /// Edges per worker (diagnostic; equal to within one by
    /// construction).
    pub fn chunk_edges(&self) -> Vec<usize> {
        self.cuts.windows(2).map(|c| c[1] - c[0]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{Graph, GraphBuilder};

    /// A star graph: every node 1..n points at node 0, so node 0 holds
    /// all in-edges.
    fn star(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (1..n).map(|x| (x, 0)).collect();
        GraphBuilder::from_edges(n as usize, &edges)
    }

    fn assert_covers(p: &NodePartition, n: usize) {
        let mut next = 0usize;
        for r in p.ranges() {
            assert_eq!(r.start, next, "ranges must be contiguous");
            assert!(r.end >= r.start);
            next = r.end;
        }
        assert_eq!(next, n, "ranges must cover 0..n");
    }

    #[test]
    fn covers_disjointly_on_various_shapes() {
        for (graph, parts) in [
            (star(50), 4),
            (star(1), 3),
            (GraphBuilder::from_edges(0, &[]), 2),
            (GraphBuilder::from_edges(10, &[(0, 1), (1, 2), (9, 0)]), 16),
        ] {
            let p = NodePartition::edge_balanced(&graph, parts);
            assert_eq!(p.len(), parts);
            assert_covers(&p, graph.node_count());
        }
    }

    #[test]
    fn star_hub_chunk_stays_isolated() {
        // Node 0 carries every in-edge (~half the total weight), so the
        // cut isolates it in its own chunk — it may absorb more than one
        // quota (an unsplittable node can), but the edge-free tail must
        // still be spread over the remaining chunks, not lumped into one.
        let g = star(1000);
        let p = NodePartition::edge_balanced(&g, 4);
        assert_covers(&p, 1000);
        let edges = p.chunk_in_edges(&g);
        assert_eq!(edges.iter().sum::<usize>(), g.edge_count());
        assert_eq!(p.range(0), 0..1, "hub sits alone in chunk 0");
        assert_eq!(edges[0], 999, "hub chunk holds all edges");
        let tail_sizes: Vec<usize> =
            p.ranges().skip(1).map(|r| r.len()).filter(|&s| s > 0).collect();
        assert!(tail_sizes.len() >= 2, "tail must be split: {tail_sizes:?}");
        let (min, max) = (tail_sizes.iter().min().unwrap(), tail_sizes.iter().max().unwrap());
        assert!(max - min <= 1, "nonempty tail chunks balanced: {tail_sizes:?}");
    }

    #[test]
    fn uniform_splits_by_node_count() {
        let p = NodePartition::uniform(10, 3);
        let sizes: Vec<usize> = p.ranges().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        assert_covers(&p, 10);
    }

    #[test]
    fn deterministic_for_fixed_inputs() {
        let g = star(256);
        let a = NodePartition::edge_balanced(&g, 5);
        let b = NodePartition::edge_balanced(&g, 5);
        assert_eq!(a, b);
    }

    /// Full structural audit of an [`EdgePartition`]: edge ranges tile
    /// `0..m`, every node is owned exactly once (interior xor merge),
    /// and each merge entry's pieces tile its row in edge order.
    fn assert_edge_partition_sound(p: &EdgePartition, g: &Graph) {
        let n = g.node_count();
        let m = g.edge_count();
        let offs = g.in_offsets();
        let mut next_edge = 0usize;
        for w in 0..p.len() {
            let r = p.edge_range(w);
            assert_eq!(r.start, next_edge, "edge ranges must be contiguous");
            next_edge = r.end;
        }
        assert_eq!(next_edge, m, "edge ranges must cover 0..m");
        let mut owner = vec![0u32; n];
        for w in 0..p.len() {
            for y in p.interior(w) {
                owner[y] += 1;
                // An interior row's edges sit inside the worker's range.
                let r = p.edge_range(w);
                assert!(offs[y] as usize >= r.start && offs[y + 1] as usize <= r.end);
            }
        }
        for e in p.merge_entries() {
            owner[e.node] += 1;
            assert!(e.parts.len() >= 2, "boundary row {} has {} piece(s)", e.node, e.parts.len());
            let mut cursor = offs[e.node] as usize;
            let mut last_worker = None;
            for &(w, slot) in &e.parts {
                assert!(last_worker.is_none_or(|lw| w > lw), "pieces in worker order");
                last_worker = Some(w);
                let piece = p.pieces(w)[slot].as_ref().expect("piece slot populated");
                assert_eq!(piece.node, e.node);
                assert_eq!(piece.edges.start, cursor, "pieces must tile the row");
                cursor = piece.edges.end;
            }
            assert_eq!(cursor, offs[e.node + 1] as usize, "pieces must end the row");
        }
        for (y, &count) in owner.iter().enumerate() {
            assert_eq!(count, 1, "node {y} owned {count} times");
        }
    }

    #[test]
    fn edge_partition_is_sound_on_varied_shapes() {
        for (graph, parts) in [
            (star(50), 4),
            (star(1), 3),
            (star(3), 8),
            (GraphBuilder::from_edges(0, &[]), 2),
            (GraphBuilder::from_edges(10, &[(0, 1), (1, 2), (9, 0)]), 16),
            (GraphBuilder::from_edges(6, &[(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]), 2),
        ] {
            let p = EdgePartition::balanced(&graph, parts);
            assert_eq!(p.len(), parts);
            assert_edge_partition_sound(&p, &graph);
        }
    }

    #[test]
    fn edge_partition_shares_a_hub_row_across_workers() {
        // The star's hub holds all 999 in-edges; node cuts would give one
        // worker the whole row, the edge cut splits it across all four.
        let g = star(1000);
        let p = EdgePartition::balanced(&g, 4);
        assert_edge_partition_sound(&p, &g);
        let edges = p.chunk_edges();
        let (min, max) = (edges.iter().min().unwrap(), edges.iter().max().unwrap());
        assert!(max - min <= 1, "edge ranges must be equal to within one: {edges:?}");
        assert_eq!(p.merge_entries().len(), 1, "only the hub row straddles cuts");
        assert_eq!(p.merge_entries()[0].node, 0);
        assert_eq!(p.merge_entries()[0].parts.len(), 4, "all four workers contribute");
    }

    #[test]
    fn edge_partition_single_worker_has_no_boundaries() {
        let g = star(100);
        let p = EdgePartition::balanced(&g, 1);
        assert_edge_partition_sound(&p, &g);
        assert_eq!(p.interior(0), 0..100);
        assert!(p.merge_entries().is_empty());
        assert_eq!(p.pieces(0), &[None, None]);
    }

    #[test]
    fn edge_partition_is_deterministic() {
        let g = star(256);
        assert_eq!(EdgePartition::balanced(&g, 5), EdgePartition::balanced(&g, 5));
    }

    #[test]
    fn weight_bound_holds() {
        // Chunk weight (in-edges + nodes) must stay below
        // total/parts + w_max + 1.
        let edges: Vec<(u32, u32)> =
            (1..400u32).flat_map(|x| (0..(x % 7)).map(move |k| (x, k))).collect();
        let g = GraphBuilder::from_edges(400, &edges);
        let parts = 6;
        let p = NodePartition::edge_balanced(&g, parts);
        assert_covers(&p, 400);
        let total = g.edge_count() + g.node_count();
        let w_max = g.nodes().map(|y| g.in_degree(y) + 1).max().unwrap_or(1);
        for (k, r) in p.ranges().enumerate() {
            let weight = p.chunk_in_edges(&g)[k] + r.len();
            assert!(weight <= total / parts + w_max + 1, "chunk {k} weight {weight} exceeds bound");
        }
    }
}
