//! Edge-balanced destination-range partitioning for gather kernels.
//!
//! The gather sweep assigns each worker a contiguous range of
//! destination nodes; the work per node is its in-degree. Web host
//! graphs are power-law, so equal-*node* chunks can be wildly
//! edge-imbalanced — one chunk holding a hub does almost all the work
//! while the others idle at the barrier. This module cuts `0..n` so
//! every chunk carries (nearly) the same number of in-edges instead,
//! using the in-CSR offsets the graph already stores: the cumulative
//! in-edge count of the prefix `0..y` is just `in_offsets[y]`.
//!
//! Each node's weight is `in_degree + 1` (the `+1` accounts for the
//! per-destination constant work and keeps huge edge-free tails from
//! collapsing into one chunk). Weights are integers and cut points are
//! found by binary search on the monotone cumulative weight
//! `in_offsets[y] + y`, so a partition is a pure function of
//! `(graph, parts)` — the fixed-partition determinism guarantee of the
//! solvers reduces to reusing one `NodePartition` per solve.

use spammass_graph::Graph;
use std::ops::Range;

/// A partition of the destination range `0..n` into contiguous,
/// disjoint, exhaustive chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePartition {
    /// Chunk boundaries: chunk `k` is `starts[k]..starts[k + 1]`.
    /// Always `starts[0] == 0` and `*starts.last() == n`, non-decreasing.
    starts: Vec<usize>,
}

impl NodePartition {
    /// Cuts `0..node_count` into `parts` chunks of (nearly) equal
    /// **in-edge** weight, using the graph's in-CSR offsets.
    ///
    /// Chunk boundaries land on the smallest node whose cumulative
    /// weight reaches `k/parts` of the total, so every chunk's weight is
    /// below `total/parts + w_max + 1` where `w_max` is the heaviest
    /// single node — the best a contiguous cut can do, since one node
    /// cannot be split.
    pub fn edge_balanced(graph: &Graph, parts: usize) -> NodePartition {
        let n = graph.node_count();
        let parts = parts.max(1);
        let offsets = graph.in_offsets();
        // Cumulative weight of the prefix 0..y with node weight
        // in_degree + 1; monotone strictly increasing in y.
        let cum = |y: usize| offsets[y] as usize + y;
        let total = cum(n);
        let mut starts = Vec::with_capacity(parts + 1);
        starts.push(0usize);
        for k in 1..parts {
            let target = total * k / parts;
            let prev = *starts.last().expect("starts is non-empty");
            // First y in [prev, n] with cum(y) >= target.
            let (mut lo, mut hi) = (prev, n);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if cum(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            starts.push(lo);
        }
        starts.push(n);
        NodePartition { starts }
    }

    /// Cuts `0..node_count` into `parts` chunks of (nearly) equal node
    /// count, ignoring edge weight. The legacy strategy, kept for
    /// comparison and for kernels whose per-node work is uniform.
    pub fn uniform(node_count: usize, parts: usize) -> NodePartition {
        let parts = parts.max(1);
        let mut starts = Vec::with_capacity(parts + 1);
        for k in 0..=parts {
            starts.push(node_count * k / parts);
        }
        NodePartition { starts }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// Whether the partition has no chunks (never true for constructed
    /// partitions; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The destination range of chunk `k`.
    #[inline]
    pub fn range(&self, k: usize) -> Range<usize> {
        self.starts[k]..self.starts[k + 1]
    }

    /// Iterator over all chunk ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.len()).map(move |k| self.range(k))
    }

    /// In-edge count of each chunk (diagnostic; used by skew tests and
    /// benchmarks).
    pub fn chunk_in_edges(&self, graph: &Graph) -> Vec<usize> {
        let offsets = graph.in_offsets();
        self.ranges().map(|r| (offsets[r.end] - offsets[r.start]) as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{Graph, GraphBuilder};

    /// A star graph: every node 1..n points at node 0, so node 0 holds
    /// all in-edges.
    fn star(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (1..n).map(|x| (x, 0)).collect();
        GraphBuilder::from_edges(n as usize, &edges)
    }

    fn assert_covers(p: &NodePartition, n: usize) {
        let mut next = 0usize;
        for r in p.ranges() {
            assert_eq!(r.start, next, "ranges must be contiguous");
            assert!(r.end >= r.start);
            next = r.end;
        }
        assert_eq!(next, n, "ranges must cover 0..n");
    }

    #[test]
    fn covers_disjointly_on_various_shapes() {
        for (graph, parts) in [
            (star(50), 4),
            (star(1), 3),
            (GraphBuilder::from_edges(0, &[]), 2),
            (GraphBuilder::from_edges(10, &[(0, 1), (1, 2), (9, 0)]), 16),
        ] {
            let p = NodePartition::edge_balanced(&graph, parts);
            assert_eq!(p.len(), parts);
            assert_covers(&p, graph.node_count());
        }
    }

    #[test]
    fn star_hub_chunk_stays_isolated() {
        // Node 0 carries every in-edge (~half the total weight), so the
        // cut isolates it in its own chunk — it may absorb more than one
        // quota (an unsplittable node can), but the edge-free tail must
        // still be spread over the remaining chunks, not lumped into one.
        let g = star(1000);
        let p = NodePartition::edge_balanced(&g, 4);
        assert_covers(&p, 1000);
        let edges = p.chunk_in_edges(&g);
        assert_eq!(edges.iter().sum::<usize>(), g.edge_count());
        assert_eq!(p.range(0), 0..1, "hub sits alone in chunk 0");
        assert_eq!(edges[0], 999, "hub chunk holds all edges");
        let tail_sizes: Vec<usize> =
            p.ranges().skip(1).map(|r| r.len()).filter(|&s| s > 0).collect();
        assert!(tail_sizes.len() >= 2, "tail must be split: {tail_sizes:?}");
        let (min, max) = (tail_sizes.iter().min().unwrap(), tail_sizes.iter().max().unwrap());
        assert!(max - min <= 1, "nonempty tail chunks balanced: {tail_sizes:?}");
    }

    #[test]
    fn uniform_splits_by_node_count() {
        let p = NodePartition::uniform(10, 3);
        let sizes: Vec<usize> = p.ranges().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        assert_covers(&p, 10);
    }

    #[test]
    fn deterministic_for_fixed_inputs() {
        let g = star(256);
        let a = NodePartition::edge_balanced(&g, 5);
        let b = NodePartition::edge_balanced(&g, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn weight_bound_holds() {
        // Chunk weight (in-edges + nodes) must stay below
        // total/parts + w_max + 1.
        let edges: Vec<(u32, u32)> =
            (1..400u32).flat_map(|x| (0..(x % 7)).map(move |k| (x, k))).collect();
        let g = GraphBuilder::from_edges(400, &edges);
        let parts = 6;
        let p = NodePartition::edge_balanced(&g, parts);
        assert_covers(&p, 400);
        let total = g.edge_count() + g.node_count();
        let w_max = g.nodes().map(|y| g.in_degree(y) + 1).max().unwrap_or(1);
        for (k, r) in p.ranges().enumerate() {
            let weight = p.chunk_in_edges(&g)[k] + r.len();
            assert!(weight <= total / parts + w_max + 1, "chunk {k} weight {weight} exceeds bound");
        }
    }
}
