//! Blocked out-of-core Jacobi: PageRank over a compressed image larger
//! than RAM.
//!
//! The resident working set is only what the iteration mathematically
//! needs: the interleaved jump/front/back score matrices (`3·n·K` f64),
//! the per-node damping coefficients (`n` f64), and **one** decoded
//! block's scratch CSR. The edge structure itself never materializes —
//! each sweep streams the in-orientation blocks of a
//! [`CompressedImage`] through the same gather kernels the in-memory
//! engine dispatches ([`crate::kernel`]), decoding block-at-a-time into
//! a reusable [`BlockScratch`].
//!
//! ## Exactness
//!
//! A streamed sweep visits rows in ascending order, accumulates each
//! row with the identical kernel and coefficient vector, and folds the
//! per-column residual in the same row order as the pooled engine's
//! single-worker path ([`crate::engine`] with `threads = 1`, which has
//! no boundary pieces and therefore no merge step). The two paths are
//! therefore **bit-for-bit identical** — the streamed solver is not an
//! approximation, just a different edge-delivery mechanism. Against a
//! multi-worker in-memory solve the scores agree to the usual
//! re-association noise (≤1e-12 per node on converged solves), and the
//! flagged set is identical; `crates/core/tests/stream_parity.rs` pins
//! both claims.
//!
//! ## Budget
//!
//! Callers pass an explicit byte budget (the CLI's
//! `--max-resident-mb`). The solve computes its worst-case resident
//! footprint up front and refuses with
//! [`PageRankError::ResidentBudget`] rather than quietly overshooting —
//! an out-of-core path that silently allocates past its contract is
//! worse than none.

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::jump::JumpVector;
use crate::kernel;
use crate::PageRankResult;
use spammass_graph::compress::{BlockScratch, CompressedImage, Orientation};
use spammass_obs as obs;

/// Widest fused column chunk, matching [`crate::batch`].
const MAX_FUSED_COLUMNS: usize = 4;

/// Bytes the streamed solve keeps resident for `n` nodes, `k` total
/// columns, and an image whose largest block decodes to
/// `(max_rows, max_edges)`: score matrices for the widest chunk, the
/// coefficient vector, one block scratch, and the per-block index
/// bookkeeping.
pub fn resident_bytes_needed(
    n: usize,
    k: usize,
    max_rows: usize,
    max_edges: usize,
    blocks: usize,
) -> u64 {
    let k_chunk = k.clamp(1, MAX_FUSED_COLUMNS);
    let score_matrices = 3 * (n as u64) * (k_chunk as u64) * 8; // vmat + front + back
    let coef = n as u64 * 8;
    let scratch = BlockScratch::bytes_for(max_rows, max_edges) as u64;
    let index = blocks as u64 * 40; // entry + first-row + verified bit, rounded up
    score_matrices + coef + scratch + index
}

/// Solves `(I − c·Tᵀ)pⱼ = (1 − c)vⱼ` for every jump vector in `jumps`
/// by streaming the compressed image's in-blocks through the gather
/// kernel each sweep — the out-of-core counterpart of
/// [`crate::batch::solve_batch`], bit-identical to its
/// single-worker pooled path.
///
/// `max_resident_bytes` bounds the solve's own working set (scores,
/// coefficients, block scratch — not the mmap'd image, which the OS
/// pages in and out freely).
///
/// # Errors
/// [`PageRankError::ResidentBudget`] when the working set cannot fit;
/// otherwise the same contract as [`crate::batch::solve_batch`]
/// (validation, guard trips, the iteration cap). Mid-solve block
/// corruption — the file changed under the mmap, or the medium is
/// failing — surfaces as [`PageRankError::InvalidJumpVector`] carrying
/// the decode error's message.
pub fn solve_batch_streamed(
    image: &CompressedImage,
    jumps: &[JumpVector],
    config: &PageRankConfig,
    max_resident_bytes: u64,
) -> Result<Vec<PageRankResult>, PageRankError> {
    config.validate()?;
    let n = image.node_count();
    let k = jumps.len();
    let mut vs = Vec::with_capacity(k);
    for jump in jumps {
        vs.push(jump.materialize(n)?);
    }
    if k == 0 {
        return Ok(Vec::new());
    }
    if n == 0 {
        return Ok(vs
            .iter()
            .map(|_| PageRankResult {
                scores: Vec::new(),
                iterations: 0,
                residual: 0.0,
                converged: true,
                residual_history: ResidualHistory::new(),
            })
            .collect());
    }

    let (max_rows, max_edges) = image.max_block_dims();
    let blocks = image.block_count(Orientation::Out) + image.block_count(Orientation::In);
    let required = resident_bytes_needed(n, k, max_rows, max_edges, blocks);
    if required > max_resident_bytes {
        return Err(PageRankError::ResidentBudget { required, budget: max_resident_bytes });
    }

    let mut span = obs::span("pagerank.solve.streamed");
    span.record("columns", k as f64);
    span.record("nodes", n as f64);
    span.record("resident_budget_bytes", max_resident_bytes as f64);
    let encoded_before = image.encoded_bytes_read();

    // One streaming pass over the out-blocks builds the damping
    // coefficients — the only out-orientation state a sweep needs.
    let c = config.damping;
    let mut coef = vec![0.0f64; n];
    {
        let mut scratch = BlockScratch::default();
        for idx in 0..image.block_count(Orientation::Out) {
            image.decode_block(Orientation::Out, idx, &mut scratch).map_err(corruption)?;
            for i in 0..scratch.rows {
                let d = (scratch.offsets[i + 1] - scratch.offsets[i]) as f64;
                if d > 0.0 {
                    coef[scratch.first_row + i] = c / d;
                }
            }
        }
    }

    let mut results = Vec::with_capacity(k);
    let mut blocks_decoded = 0u64;
    for chunk in vs.chunks(MAX_FUSED_COLUMNS) {
        results.extend(match chunk.len() {
            1 => solve_streamed_fixed::<1>(image, chunk, &coef, config, &mut blocks_decoded)?,
            2 => solve_streamed_fixed::<2>(image, chunk, &coef, config, &mut blocks_decoded)?,
            3 => solve_streamed_fixed::<3>(image, chunk, &coef, config, &mut blocks_decoded)?,
            _ => solve_streamed_fixed::<4>(image, chunk, &coef, config, &mut blocks_decoded)?,
        });
    }

    let decoded_bytes = image.encoded_bytes_read() - encoded_before;
    span.record("blocks_decoded", blocks_decoded as f64);
    span.record("decoded_bytes", decoded_bytes as f64);
    obs::counter(obs::names::ESTIMATE_IO_BLOCKS_DECODED, blocks_decoded as f64);
    obs::counter(obs::names::ESTIMATE_IO_DECODED_BYTES, decoded_bytes as f64);
    Ok(results)
}

/// Converts a decode-time corruption error into the solver's error
/// domain. The image was fully validated at open; mid-solve corruption
/// means the backing file changed or the medium is failing, which the
/// caller should treat like any other unrecoverable solver failure.
fn corruption(e: spammass_graph::GraphError) -> PageRankError {
    PageRankError::InvalidJumpVector(format!("compressed image decode failed: {e}"))
}

/// One `K`-column streamed solve: the engine's single-worker sweep with
/// edges delivered block-at-a-time.
fn solve_streamed_fixed<const K: usize>(
    image: &CompressedImage,
    vs: &[Vec<f64>],
    coef: &[f64],
    config: &PageRankConfig,
    blocks_decoded: &mut u64,
) -> Result<Vec<PageRankResult>, PageRankError> {
    debug_assert_eq!(vs.len(), K);
    let n = image.node_count();
    let kind = config.kernel.resolve();
    let one_minus_c = 1.0 - config.damping;
    let in_blocks = image.block_count(Orientation::In);

    // Interleaved row-major n×K matrices, exactly as the pooled engine
    // lays them out; `front` is the cold start (the jump vectors).
    let mut vmat = vec![0.0f64; n * K];
    for (j, v) in vs.iter().enumerate() {
        for (y, &vy) in v.iter().enumerate() {
            vmat[y * K + j] = vy;
        }
    }
    let mut front = vmat.clone();
    let mut back = vec![0.0f64; n * K];
    let mut scratch = BlockScratch::default();

    let mut active = [true; K];
    let mut histories: Vec<ResidualHistory> = (0..K).map(|_| ResidualHistory::new()).collect();
    let mut guards: Vec<ConvergenceGuard> = (0..K).map(|_| ConvergenceGuard::new()).collect();
    let mut col_iterations = [0usize; K];
    let mut col_residual = [f64::INFINITY; K];
    let mut completed = 0usize;

    let outcome: Result<(), PageRankError> = loop {
        let iterations = completed + 1;
        // `front` is this sweep's read buffer, `back` its write buffer;
        // the swap below keeps the latest iterate in `front`.
        let read: &[f64] = &front;
        let write: &mut [f64] = &mut back;
        let act = active;
        let mut local_deltas = [0.0f64; K];
        for idx in 0..in_blocks {
            image.decode_block(Orientation::In, idx, &mut scratch).map_err(corruption)?;
            *blocks_decoded += 1;
            for i in 0..scratch.rows {
                let y = scratch.first_row + i;
                let mut acc: [f64; K] =
                    vmat[y * K..(y + 1) * K].try_into().expect("vmat row is K wide");
                for a in &mut acc {
                    *a *= one_minus_c;
                }
                kernel::gather_row(kind, read, coef, scratch.row(i), &mut acc);
                let old: &[f64; K] =
                    read[y * K..(y + 1) * K].try_into().expect("score row is K wide");
                let row = &mut write[y * K..(y + 1) * K];
                for (j, (&a, &o)) in acc.iter().zip(old).enumerate() {
                    if act[j] {
                        local_deltas[j] += (a - o).abs();
                        row[j] = a;
                    } else {
                        // Frozen column: copy through bit-exact.
                        row[j] = o;
                    }
                }
            }
        }
        completed = iterations;
        std::mem::swap(&mut front, &mut back);

        let mut all_frozen = true;
        let mut guard_err = None;
        for j in 0..K {
            if !active[j] {
                continue;
            }
            let residual = local_deltas[j];
            col_residual[j] = residual;
            histories[j].push(residual);
            if let Err(e) = guards[j].observe(iterations, residual) {
                guard_err = Some(e);
                break;
            }
            if residual < config.tolerance {
                active[j] = false;
                col_iterations[j] = iterations;
            } else {
                all_frozen = false;
            }
        }
        if let Some(e) = guard_err {
            break Err(e);
        }
        if all_frozen {
            break Ok(());
        }
        if iterations >= config.max_iterations {
            let worst =
                (0..K).filter(|&j| active[j]).map(|j| col_residual[j]).fold(0.0f64, f64::max);
            break Err(PageRankError::DidNotConverge { iterations, residual: worst });
        }
    };
    outcome?;

    // `front` holds every column's final iterate (frozen columns were
    // copied through each later sweep). Free the sweep-only state before
    // materializing per-column vectors so the de-interleave phase stays
    // under the same budget as the sweeps.
    drop(vmat);
    drop(back);
    drop(scratch);
    let final_buf = front;
    let mut results = Vec::with_capacity(K);
    if K == 1 {
        obs::observe("pagerank.iterations", col_iterations[0] as f64);
        results.push(PageRankResult {
            scores: final_buf,
            iterations: col_iterations[0],
            residual: col_residual[0],
            converged: true,
            residual_history: histories.remove(0),
        });
        return Ok(results);
    }
    for (j, (history, &iterations)) in histories.iter().zip(&col_iterations).enumerate() {
        obs::observe("pagerank.iterations", iterations as f64);
        let mut scores = vec![0.0f64; n];
        for (y, s) in scores.iter_mut().enumerate() {
            *s = final_buf[y * K + j];
        }
        results.push(PageRankResult {
            scores,
            iterations,
            residual: col_residual[j],
            converged: true,
            residual_history: history.clone(),
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::solve_batch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spammass_graph::compress::{graph_to_bytes_v4_with, V4Config};
    use spammass_graph::{GraphBuilder, NodeId};
    use std::sync::Arc;

    fn random_graph(n: usize, m: usize, seed: u64) -> spammass_graph::Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(n, m);
        for _ in 0..m {
            let f = rng.gen_range(0..n as u32);
            let t = rng.gen_range(0..n as u32);
            if f != t {
                b.add_edge(NodeId(f), NodeId(t));
            }
        }
        b.build()
    }

    fn tiny_block_image(g: &spammass_graph::Graph) -> CompressedImage {
        // Blocks far smaller than the graph: each sweep cycles through
        // many decode/gather rounds, the regime the parity claim covers.
        let cfg = V4Config { rows_per_block: 512, edges_per_block: 2048 };
        let bytes = graph_to_bytes_v4_with(g, cfg).unwrap();
        CompressedImage::from_store(Arc::new(bytes)).unwrap()
    }

    fn jumps(n: usize) -> [JumpVector; 2] {
        let core: Vec<NodeId> = (0..(n as u32) / 10).map(NodeId).collect();
        [JumpVector::Uniform, JumpVector::core(core, n)]
    }

    #[test]
    fn streamed_is_bit_identical_to_pooled_single_worker() {
        let g = random_graph(20_000, 300_000, 61);
        let image = tiny_block_image(&g);
        // edges_per_thread(1) pins the pooled engine; threads(1) gives it
        // one worker — the exact path the streamed sweep replicates.
        let config = PageRankConfig::default().threads(1).edges_per_thread(1);
        let js = jumps(g.node_count());
        let pooled = solve_batch(&g, &js, &config).unwrap();
        let streamed = solve_batch_streamed(&image, &js, &config, u64::MAX).unwrap();
        assert_eq!(pooled.len(), streamed.len());
        for (p, s) in pooled.iter().zip(&streamed) {
            assert_eq!(p.scores, s.scores, "scores must be bit-identical");
            assert_eq!(p.iterations, s.iterations);
            assert_eq!(p.residual, s.residual);
        }
    }

    #[test]
    fn budget_violation_is_a_typed_error() {
        let g = random_graph(5_000, 40_000, 67);
        let image = tiny_block_image(&g);
        let config = PageRankConfig::default();
        let err = solve_batch_streamed(&image, &jumps(g.node_count()), &config, 1024).unwrap_err();
        match err {
            PageRankError::ResidentBudget { required, budget } => {
                assert_eq!(budget, 1024);
                assert!(required > budget);
            }
            other => panic!("expected ResidentBudget, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_zero_column_solves() {
        let g = GraphBuilder::from_edges(0, &[]);
        let image = tiny_block_image(&g);
        let config = PageRankConfig::default();
        assert!(solve_batch_streamed(&image, &[], &config, u64::MAX).unwrap().is_empty());
        let r = solve_batch_streamed(&image, &[JumpVector::Custom(Vec::new())], &config, u64::MAX)
            .unwrap();
        assert_eq!(r.len(), 1);
        assert!(r[0].converged);
    }

    #[test]
    fn iteration_cap_fails_the_streamed_solve() {
        let g = random_graph(5_000, 40_000, 71);
        let image = tiny_block_image(&g);
        let tight = PageRankConfig::default().max_iterations(2).tolerance(1e-300);
        assert!(matches!(
            solve_batch_streamed(&image, &jumps(g.node_count()), &tight, u64::MAX),
            Err(PageRankError::DidNotConverge { iterations: 2, .. })
        ));
    }
}
