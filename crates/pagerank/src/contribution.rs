//! PageRank contributions (Section 3.2, Theorems 1–2).
//!
//! The PageRank contribution of `x` to `y` over a walk `W` is
//! `q_y^W = c^{|W|}·π(W)·(1−c)·v_x`, where `π(W) = Π 1/out(x_i)` is the
//! walk weight; the total contribution `q_y^x` sums over all walks
//! `W ∈ W_{xy}`, plus the virtual zero-length circuit for `x = y`
//! (so `q_x^x ≥ (1−c)·v_x`).
//!
//! **Theorem 1**: `p_y = Σ_x q_y^x`.
//! **Theorem 2**: `q^x = PR(v^x)` — the contribution vector of `x` is the
//! PageRank vector under the core-based jump vector concentrated on `x`.
//! By linearity, `q^U = PR(v^U)` for any node set `U`.
//!
//! This module provides:
//!
//! * [`contribution_of_node`] / [`contribution_of_set`] — the efficient
//!   Theorem-2 route used by spam-mass estimation, and
//! * [`walk_sum_truncated`] / [`enumerate_walk_contributions`] — reference
//!   evaluators that compute `q` directly from the walk definition, used by
//!   the test-suite to validate the theorems numerically.

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::jacobi::solve_jacobi_dense;
use crate::jump::JumpVector;
use spammass_graph::{Graph, NodeId};

/// Contribution vector `q^x = PR(v^x)` of node `x` to every node
/// (Theorem 2). `v_x` is the jump probability of `x` under the reference
/// jump vector — `1/n` in the uniform setting.
///
/// # Errors
/// Propagates jump-vector validation failures (e.g. `x` out of range, bad
/// `v_x`) and solver convergence errors.
pub fn contribution_of_node(
    graph: &Graph,
    x: NodeId,
    v_x: f64,
    config: &PageRankConfig,
) -> Result<Vec<f64>, PageRankError> {
    let jump = JumpVector::SingleNode { node: x, mass: v_x };
    let v = jump.materialize(graph.node_count())?;
    Ok(solve_jacobi_dense(graph, &v, config)?.scores)
}

/// Contribution vector `q^U = PR(v^U)` of a node set `U`, where each
/// member keeps its reference jump probability `v_y` (uniform `1/n` here).
///
/// # Errors
/// Same contract as [`contribution_of_node`].
pub fn contribution_of_set(
    graph: &Graph,
    set: &[NodeId],
    config: &PageRankConfig,
) -> Result<Vec<f64>, PageRankError> {
    let n = graph.node_count();
    let jump = JumpVector::core(set.to_vec(), n);
    let v = jump.materialize(n)?;
    Ok(solve_jacobi_dense(graph, &v, config)?.scores)
}

/// Reference evaluator: computes `q^x` by dynamic programming over walk
/// lengths, truncated at `max_len` edges.
///
/// `w_k[y]` accumulates `Σ_{W ∈ W_{xy}, |W| = k} π(W)`, and
/// `q_y = Σ_k c^k·w_k[y]·(1−c)·v_x` (the `k = 0` term is the virtual
/// circuit `Z_x`). Truncation error is bounded by `c^{max_len}`; with
/// `c = 0.85` and `max_len = 300` it is ~4e-22.
pub fn walk_sum_truncated(
    graph: &Graph,
    x: NodeId,
    v_x: f64,
    damping: f64,
    max_len: usize,
) -> Vec<f64> {
    let n = graph.node_count();
    let mut q = vec![0.0f64; n];
    let mut w = vec![0.0f64; n];
    let mut w_next = vec![0.0f64; n];
    w[x.index()] = 1.0; // the empty walk / virtual circuit Z_x

    let base = (1.0 - damping) * v_x;
    let mut c_pow = 1.0f64;
    for _ in 0..=max_len {
        for (slot, &wk) in q.iter_mut().zip(&w) {
            *slot += c_pow * wk * base;
        }
        // advance: w_{k+1}[y] = Σ_{z→y} w_k[z]/out(z)
        w_next.iter_mut().for_each(|s| *s = 0.0);
        for z in graph.nodes() {
            let nbrs = graph.out_neighbors(z);
            if nbrs.is_empty() || w[z.index()] == 0.0 {
                continue;
            }
            let share = w[z.index()] / nbrs.len() as f64;
            for &y in nbrs {
                w_next[y.index()] += share;
            }
        }
        std::mem::swap(&mut w, &mut w_next);
        c_pow *= damping;
    }
    q
}

/// A single walk and its contribution, from the literal definition.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkContribution {
    /// The node sequence `x = x₀, …, x_k = y`.
    pub walk: Vec<NodeId>,
    /// `q_y^W = c^k · π(W) · (1−c) · v_x`.
    pub value: f64,
}

/// Literal walk enumeration from `x`, for **tiny** graphs only: returns
/// every walk of length `1..=max_len` starting at `x` together with its
/// contribution, plus the virtual zero-length circuit.
///
/// Exponential in `max_len`; intended for validating [`walk_sum_truncated`]
/// on hand-built graphs in tests.
pub fn enumerate_walk_contributions(
    graph: &Graph,
    x: NodeId,
    v_x: f64,
    damping: f64,
    max_len: usize,
) -> Vec<WalkContribution> {
    let base = (1.0 - damping) * v_x;
    let mut out = vec![WalkContribution { walk: vec![x], value: base }];
    // DFS over walk prefixes.
    let mut stack: Vec<(Vec<NodeId>, f64)> = vec![(vec![x], 1.0)];
    while let Some((prefix, weight)) = stack.pop() {
        if prefix.len() > max_len {
            continue;
        }
        let last = *prefix.last().expect("non-empty prefix");
        let nbrs = graph.out_neighbors(last);
        if nbrs.is_empty() {
            continue;
        }
        let step = weight / nbrs.len() as f64;
        for &y in nbrs {
            let mut walk = prefix.clone();
            walk.push(y);
            let k = walk.len() - 1;
            out.push(WalkContribution {
                walk: walk.clone(),
                value: damping.powi(k as i32) * step * base,
            });
            if k < max_len {
                stack.push((walk, step));
            }
        }
    }
    out
}

/// Sums enumerated walk contributions into a per-target vector — the
/// definitional `q^x`, truncated at `max_len`.
pub fn walk_contribution_vector(
    graph: &Graph,
    x: NodeId,
    v_x: f64,
    damping: f64,
    max_len: usize,
) -> Vec<f64> {
    let mut q = vec![0.0f64; graph.node_count()];
    for wc in enumerate_walk_contributions(graph, x, v_x, damping, max_len) {
        let y = *wc.walk.last().expect("non-empty walk");
        q[y.index()] += wc.value;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        PageRankConfig::default().tolerance(1e-14).max_iterations(5_000)
    }

    #[test]
    fn self_contribution_without_circuits() {
        // x not on any circuit: q_x^x = (1−c)·v_x.
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let q = contribution_of_node(&g, NodeId(0), 0.5, &cfg()).unwrap();
        assert!((q[0] - 0.15 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn unconnected_contribution_is_zero() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]);
        let q = contribution_of_node(&g, NodeId(0), 1.0 / 3.0, &cfg()).unwrap();
        assert_eq!(q[2], 0.0);
    }

    #[test]
    fn out_of_range_node_is_an_error() {
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        assert!(contribution_of_node(&g, NodeId(7), 0.5, &cfg()).is_err());
    }

    #[test]
    fn theorem1_contributions_sum_to_pagerank() {
        // p_y = Σ_x q_y^x on a cyclic graph with dangling nodes.
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (1, 4)]);
        let n = g.node_count();
        let config = cfg();
        let p = solve_jacobi_dense(&g, &JumpVector::Uniform.materialize(n).unwrap(), &config)
            .unwrap()
            .scores;
        let mut sum = vec![0.0f64; n];
        for x in g.nodes() {
            let q = contribution_of_node(&g, x, 1.0 / n as f64, &config).unwrap();
            for (s, qy) in sum.iter_mut().zip(&q) {
                *s += qy;
            }
        }
        for y in 0..n {
            assert!((p[y] - sum[y]).abs() < 1e-10, "node {y}: p {} vs Σq {}", p[y], sum[y]);
        }
    }

    #[test]
    fn theorem2_set_contribution_is_sum_of_nodes() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let config = cfg();
        let set = [NodeId(0), NodeId(2)];
        let q_set = contribution_of_set(&g, &set, &config).unwrap();
        let q0 = contribution_of_node(&g, NodeId(0), 0.25, &config).unwrap();
        let q2 = contribution_of_node(&g, NodeId(2), 0.25, &config).unwrap();
        for i in 0..4 {
            assert!((q_set[i] - (q0[i] + q2[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn walk_sum_matches_linear_solver() {
        // The DP walk-sum and Theorem 2 route agree on a cyclic graph.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 1)]);
        let config = cfg();
        let q_pr = contribution_of_node(&g, NodeId(0), 0.25, &config).unwrap();
        let q_ws = walk_sum_truncated(&g, NodeId(0), 0.25, config.damping, 400);
        for i in 0..4 {
            assert!(
                (q_pr[i] - q_ws[i]).abs() < 1e-10,
                "node {i}: PR {} vs walk-sum {}",
                q_pr[i],
                q_ws[i]
            );
        }
    }

    #[test]
    fn literal_enumeration_matches_dp_on_dag() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dp = walk_sum_truncated(&g, NodeId(0), 0.25, 0.85, 10);
        let lit = walk_contribution_vector(&g, NodeId(0), 0.25, 0.85, 10);
        for i in 0..4 {
            assert!((dp[i] - lit[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn literal_enumeration_matches_dp_on_cycle() {
        // Finite truncation of an infinite walk family.
        let g = GraphBuilder::from_edges(2, &[(0, 1), (1, 0)]);
        let dp = walk_sum_truncated(&g, NodeId(0), 0.5, 0.85, 15);
        let lit = walk_contribution_vector(&g, NodeId(0), 0.5, 0.85, 15);
        for i in 0..2 {
            assert!((dp[i] - lit[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn enumeration_includes_virtual_circuit() {
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let walks = enumerate_walk_contributions(&g, NodeId(0), 1.0, 0.85, 5);
        // Walks: [0] (virtual) and [0,1].
        assert_eq!(walks.len(), 2);
        assert_eq!(walks[0].walk, vec![NodeId(0)]);
        assert!((walks[0].value - 0.15).abs() < 1e-12);
        assert!((walks[1].value - 0.85 * 0.15).abs() < 1e-12);
    }

    #[test]
    fn walk_weight_splits_over_out_degree() {
        // x -> {a, b}: each length-1 walk has π = 1/2.
        let g = GraphBuilder::from_edges(3, &[(0, 1), (0, 2)]);
        let walks = enumerate_walk_contributions(&g, NodeId(0), 1.0, 0.85, 1);
        let w1: Vec<_> = walks.iter().filter(|w| w.walk.len() == 2).collect();
        assert_eq!(w1.len(), 2);
        for w in w1 {
            assert!((w.value - 0.85 * 0.5 * 0.15).abs() < 1e-12);
        }
    }
}
