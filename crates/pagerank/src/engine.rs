//! The edge-parallel pooled solve engine shared by the single-RHS and
//! batched solvers.
//!
//! One monomorphized function, [`solve_pooled`], carries every pooled
//! Jacobi solve in the crate: `K = 1` is the parallel single-RHS solver,
//! `K ∈ 2..=4` the batched multi-jump solver. The sweep structure:
//!
//! 1. **Gather** — each worker runs the dispatched gather kernel
//!    ([`crate::kernel`]) over its [`EdgePartition`] share: interior rows
//!    (fully inside its edge range) are accumulated and written straight
//!    into the round's write buffer; the up-to-two partial row pieces at
//!    its range boundaries are accumulated into private per-worker
//!    scratch slots. No two workers ever write the same cache line: a
//!    worker's interior rows, delta slot and partial slots are all its
//!    own. The shared *read* buffer is immutable for the whole round.
//! 2. **Handoff** — the single sense-reversing barrier in
//!    [`crate::pool`]; one synchronization point per sweep.
//! 3. **Merge + converge** — the control thread combines the boundary
//!    rows' partial sums in fixed worker order (`(1−c)·v[b]` + pieces,
//!    at most `parts − 1` rows, timed into `pagerank.merge_ns`), then
//!    folds each column's residual from the workers' partial sums — in
//!    worker index order, plus the merge rows' contribution — so the
//!    convergence decision never re-walks the score vectors and is
//!    independent of thread scheduling.
//!
//! Determinism: for a fixed `(graph, threads, kernel)` the partition,
//! the per-row accumulation order, the merge order and the residual
//! reduction order are all fixed, so results are bit-for-bit
//! reproducible across runs — and a batched column is bit-identical to
//! the equivalent `K = 1` solve because the kernel's edge→bank
//! assignment is independent of `K` (see [`crate::kernel`]) and the
//! reduction orders coincide.
//!
//! Everything is allocated before the first sweep; the iteration loop is
//! allocation-free (pinned by `tests/alloc.rs`).

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::kernel;
use crate::partition::EdgePartition;
use crate::pool::{self, SharedSlice};
use crate::profiler::PoolProfiler;
use crate::PageRankResult;
use spammass_graph::Graph;
use spammass_obs as obs;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Runs the pooled edge-parallel Jacobi solve for exactly `K` columns on
/// `threads` workers. Inputs are already validated by the callers
/// (`n > 0`, every slice `n` long, config valid, `threads ≥ 1`).
///
/// Returns one result per column, in order; any column tripping its
/// convergence guard — or the shared iteration cap with any column still
/// active — fails the whole solve.
pub(crate) fn solve_pooled<const K: usize>(
    graph: &Graph,
    vs: [&[f64]; K],
    initial: Option<[&[f64]; K]>,
    config: &PageRankConfig,
    threads: usize,
    span_name: &'static str,
) -> Result<Vec<PageRankResult>, PageRankError> {
    let n = graph.node_count();
    let kind = config.kernel.resolve();
    let mut span = obs::span(span_name);
    span.record("threads", threads as f64);
    span.record("columns", K as f64);

    let c = config.damping;
    let one_minus_c = 1.0 - c;
    // All solve-lifetime state is allocated up front; the iteration loop
    // itself is allocation-free (see tests/alloc.rs).
    let partition = EdgePartition::balanced(graph, threads);
    let profiler = PoolProfiler::from_live(&partition, K);
    let coef: Vec<f64> = graph
        .nodes()
        .map(|x| {
            let d = graph.out_degree(x);
            if d == 0 {
                0.0
            } else {
                c / d as f64
            }
        })
        .collect();

    // Interleaved row-major n×K matrices; vmat holds the jump vectors in
    // the same layout so the kernel streams them with the same stride.
    let mut vmat = vec![0.0f64; n * K];
    for (j, v) in vs.iter().enumerate() {
        for (y, &vy) in v.iter().enumerate() {
            vmat[y * K + j] = vy;
        }
    }
    let mut front = match initial {
        None => vmat.clone(),
        Some(inits) => {
            let mut seed = vec![0.0f64; n * K];
            for (j, p0) in inits.iter().enumerate() {
                for (y, &py) in p0.iter().enumerate() {
                    seed[y * K + j] = py;
                }
            }
            seed
        }
    };
    let mut back = vec![0.0f64; n * K];
    // Per-worker boundary-piece partial sums: slot (w·2 + s)·K holds
    // worker w's piece s (0 = head, 1 = tail), K columns wide.
    let mut partials = vec![0.0f64; threads * 2 * K];
    // Per-(worker, column) interior residual contributions, flat
    // threads×K.
    let mut chunk_deltas = vec![0.0f64; threads * K];
    // Columns still iterating. Written only by control between rounds;
    // Relaxed suffices because the pool handoff orders rounds.
    let active: Vec<AtomicBool> = (0..K).map(|_| AtomicBool::new(true)).collect();

    let mut histories: Vec<ResidualHistory> = (0..K).map(|_| ResidualHistory::new()).collect();
    let mut guards: Vec<ConvergenceGuard> = (0..K).map(|_| ConvergenceGuard::new()).collect();
    let mut col_iterations = vec![0usize; K];
    let mut col_residual = vec![f64::INFINITY; K];
    let mut completed = 0usize;

    let outcome: Result<(), PageRankError> = {
        let bufs = [SharedSlice::new(&mut front), SharedSlice::new(&mut back)];
        let deltas = SharedSlice::new(&mut chunk_deltas);
        let partials = SharedSlice::new(&mut partials);
        let partition = &partition;
        let coef = &coef[..];
        let vmat = &vmat[..];
        let active = &active[..];
        let srcs_all = graph.in_sources();
        let offsets = graph.in_offsets();

        let kernel = |round: usize, worker: usize| {
            // SAFETY: the buffers alternate roles by round parity — every
            // worker reads bufs[round % 2] and writes only its own
            // interior rows of bufs[(round+1) % 2] (interiors are
            // pairwise disjoint and disjoint from the boundary rows the
            // control thread merges); the pool handoff orders rounds, so
            // no location is read while written.
            let read = unsafe { bufs[round % 2].as_slice() };
            let interior = partition.interior(worker);
            let write =
                unsafe { bufs[(round + 1) % 2].range_mut(interior.start * K, interior.end * K) };
            // SAFETY: slots worker·K.. and (worker·2)·K.. are written
            // only by this worker.
            let my_deltas = unsafe { deltas.range_mut(worker * K, (worker + 1) * K) };
            let my_partials = unsafe { partials.range_mut(worker * 2 * K, (worker + 1) * 2 * K) };
            // Active flags only change between rounds; snapshot them once
            // per round so the row loop branches on plain bools.
            let mut act = [false; K];
            for (a, flag) in act.iter_mut().zip(active) {
                *a = flag.load(Ordering::Relaxed);
            }
            let mut local_deltas = [0.0f64; K];
            for y in interior.clone() {
                let mut acc: [f64; K] =
                    vmat[y * K..(y + 1) * K].try_into().expect("vmat row is K wide");
                for a in &mut acc {
                    *a *= one_minus_c;
                }
                let row_srcs = &srcs_all[offsets[y] as usize..offsets[y + 1] as usize];
                kernel::gather_row(kind, read, coef, row_srcs, &mut acc);
                let old: &[f64; K] =
                    read[y * K..(y + 1) * K].try_into().expect("score row is K wide");
                let row = &mut write[(y - interior.start) * K..(y - interior.start + 1) * K];
                for (j, (&a, &o)) in acc.iter().zip(old).enumerate() {
                    if act[j] {
                        local_deltas[j] += (a - o).abs();
                        row[j] = a;
                    } else {
                        // Frozen column: copy through bit-exact.
                        row[j] = o;
                    }
                }
            }
            // Boundary pieces: accumulate into private scratch; the
            // control thread merges after the handoff.
            for (slot, piece) in partition.pieces(worker).iter().enumerate() {
                if let Some(p) = piece {
                    let mut acc = [0.0f64; K];
                    kernel::gather_row(kind, read, coef, &srcs_all[p.edges.clone()], &mut acc);
                    my_partials[slot * K..(slot + 1) * K].copy_from_slice(&acc);
                }
            }
            my_deltas.copy_from_slice(&local_deltas);
        };

        let control = |round: usize| -> ControlFlow<Result<(), PageRankError>> {
            let iterations = round + 1;
            completed = iterations;
            // SAFETY: control runs between rounds; no worker is active,
            // so it may read every scratch slot and write the boundary
            // rows of the round's write buffer.
            let read = unsafe { bufs[round % 2].as_slice() };
            let all_partials = unsafe { partials.as_slice() };
            let deltas = unsafe { deltas.as_slice() };

            // Merge phase: reassemble the rows split across edge ranges.
            // Fixed worker order per row keeps the f64 sum deterministic;
            // per-column independence keeps batched columns bit-identical
            // to single-RHS solves.
            let merge_t0 = profiler.as_ref().map(|_| Instant::now());
            let mut merge_deltas = [0.0f64; K];
            for entry in partition.merge_entries() {
                let b = entry.node;
                let mut acc: [f64; K] =
                    vmat[b * K..(b + 1) * K].try_into().expect("vmat row is K wide");
                for a in &mut acc {
                    *a *= one_minus_c;
                }
                for &(w, slot) in &entry.parts {
                    let part = &all_partials[(w * 2 + slot) * K..(w * 2 + slot + 1) * K];
                    for (a, &p) in acc.iter_mut().zip(part) {
                        *a += p;
                    }
                }
                let old: &[f64; K] =
                    read[b * K..(b + 1) * K].try_into().expect("score row is K wide");
                let row = unsafe { bufs[(round + 1) % 2].range_mut(b * K, (b + 1) * K) };
                for (j, (&a, &o)) in acc.iter().zip(old).enumerate() {
                    if active[j].load(Ordering::Relaxed) {
                        merge_deltas[j] += (a - o).abs();
                        row[j] = a;
                    } else {
                        row[j] = o;
                    }
                }
            }
            if let (Some(p), Some(t0)) = (profiler.as_ref(), merge_t0) {
                p.record_merge(t0.elapsed().as_nanos() as u64);
            }

            let mut all_frozen = true;
            for j in 0..K {
                if !active[j].load(Ordering::Relaxed) {
                    continue;
                }
                // Residual reduction in fixed order — worker index order,
                // then the merge rows — so the f64 sum (and therefore
                // convergence) is independent of thread scheduling and
                // identical between batched and single-RHS solves.
                let residual: f64 =
                    (0..threads).map(|w| deltas[w * K + j]).sum::<f64>() + merge_deltas[j];
                col_residual[j] = residual;
                histories[j].push(residual);
                if let Err(e) = guards[j].observe(iterations, residual) {
                    return ControlFlow::Break(Err(e));
                }
                if residual < config.tolerance {
                    active[j].store(false, Ordering::Relaxed);
                    col_iterations[j] = iterations;
                } else {
                    all_frozen = false;
                }
            }
            if all_frozen {
                return ControlFlow::Break(Ok(()));
            }
            if iterations >= config.max_iterations {
                let worst = (0..K)
                    .filter(|&j| active[j].load(Ordering::Relaxed))
                    .map(|j| col_residual[j])
                    .fold(0.0f64, f64::max);
                return ControlFlow::Break(Err(PageRankError::DidNotConverge {
                    iterations,
                    residual: worst,
                }));
            }
            ControlFlow::Continue(())
        };

        pool::run_rounds_profiled(threads, profiler.as_ref(), kernel, control)
    };

    // Telemetry on every exit path, including guard errors.
    span.record("iterations", completed as f64);
    outcome?;

    // Round r writes bufs[(r+1) % 2]; frozen columns were copied through
    // every later round, so bufs[completed % 2] holds every column's
    // final iterate.
    let final_buf = if completed.is_multiple_of(2) { front } else { back };
    let mut results = Vec::with_capacity(K);
    if K == 1 {
        // Single column: the interleaved matrix *is* the score vector;
        // move it instead of copying.
        obs::observe("pagerank.iterations", col_iterations[0] as f64);
        results.push(PageRankResult {
            scores: final_buf,
            iterations: col_iterations[0],
            residual: col_residual[0],
            converged: true,
            residual_history: histories.remove(0),
        });
        return Ok(results);
    }
    for (j, (history, &iterations)) in histories.iter().zip(&col_iterations).enumerate() {
        obs::observe("pagerank.iterations", iterations as f64);
        let mut scores = vec![0.0f64; n];
        for (y, s) in scores.iter_mut().enumerate() {
            *s = final_buf[y * K + j];
        }
        results.push(PageRankResult {
            scores,
            iterations,
            residual: col_residual[j],
            converged: true,
            residual_history: history.clone(),
        });
    }
    Ok(results)
}
