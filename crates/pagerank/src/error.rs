//! Error types for PageRank computation.

use std::fmt;

/// Errors from PageRank configuration or jump-vector construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PageRankError {
    /// Damping factor outside `[0, 1)`.
    InvalidDamping(f64),
    /// Non-positive or non-finite tolerance.
    InvalidTolerance(f64),
    /// Zero iteration cap.
    InvalidIterationCap,
    /// A custom jump vector's length did not match the graph.
    JumpVectorLength {
        /// Supplied length.
        got: usize,
        /// Graph node count.
        expected: usize,
    },
    /// A jump vector had negative entries or norm outside `(0, 1]`.
    InvalidJumpVector(String),
    /// A warm-start score vector (or vector set) did not match the solve:
    /// wrong node count, or wrong number of columns for a batched solve.
    InitialScoresLength {
        /// Supplied length (or column count).
        got: usize,
        /// Expected length (or column count).
        expected: usize,
    },
    /// The iteration cap was reached before the residual dropped below the
    /// configured tolerance.
    DidNotConverge {
        /// Iterations performed before giving up.
        iterations: usize,
        /// L1 residual after the last iteration.
        residual: f64,
    },
    /// The residual grew persistently instead of contracting — the iterate
    /// is moving away from the fixed point.
    Diverged {
        /// Iteration at which divergence was declared.
        iterations: usize,
        /// L1 residual at that iteration.
        residual: f64,
    },
    /// A non-finite residual (NaN or ±∞) appeared mid-iteration, meaning the
    /// score vector itself has been poisoned by overflow or NaN input.
    NumericalInstability {
        /// Iteration at which the non-finite value surfaced.
        iterations: usize,
        /// The offending residual (NaN or infinite).
        residual: f64,
    },
    /// A streamed (out-of-core) solve's resident working set — score
    /// vectors, out-degree coefficients, and the block scratch — does not
    /// fit the caller's memory budget.
    ResidentBudget {
        /// Bytes the solve must keep resident.
        required: u64,
        /// The configured budget in bytes.
        budget: u64,
    },
}

impl fmt::Display for PageRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageRankError::InvalidDamping(c) => {
                write!(f, "damping factor {c} outside [0, 1)")
            }
            PageRankError::InvalidTolerance(t) => {
                write!(f, "tolerance {t} must be positive and finite")
            }
            PageRankError::InvalidIterationCap => write!(f, "max_iterations must be nonzero"),
            PageRankError::JumpVectorLength { got, expected } => {
                write!(f, "jump vector length {got} does not match node count {expected}")
            }
            PageRankError::InvalidJumpVector(msg) => write!(f, "invalid jump vector: {msg}"),
            PageRankError::InitialScoresLength { got, expected } => {
                write!(f, "initial score vector length {got} does not match expected {expected}")
            }
            PageRankError::DidNotConverge { iterations, residual } => {
                write!(
                    f,
                    "did not converge within {iterations} iterations (last residual {residual:.3e})"
                )
            }
            PageRankError::Diverged { iterations, residual } => {
                write!(
                    f,
                    "residual diverging after {iterations} iterations (residual {residual:.3e})"
                )
            }
            PageRankError::NumericalInstability { iterations, residual } => {
                write!(f, "numerical instability at iteration {iterations} (residual {residual})")
            }
            PageRankError::ResidentBudget { required, budget } => {
                write!(
                    f,
                    "streamed solve needs {required} resident bytes but the budget is {budget}"
                )
            }
        }
    }
}

impl std::error::Error for PageRankError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PageRankError::InvalidDamping(1.5).to_string().contains("damping"));
        assert!(PageRankError::JumpVectorLength { got: 3, expected: 5 }
            .to_string()
            .contains("length 3"));
        assert!(PageRankError::InvalidJumpVector("neg".into()).to_string().contains("neg"));
        let e = PageRankError::DidNotConverge { iterations: 500, residual: 1e-3 };
        assert!(e.to_string().contains("500 iterations"), "{e}");
        let e = PageRankError::Diverged { iterations: 7, residual: 42.0 };
        assert!(e.to_string().contains("diverging"), "{e}");
        let e = PageRankError::NumericalInstability { iterations: 3, residual: f64::NAN };
        assert!(e.to_string().contains("instability"), "{e}");
    }
}
