//! Error types for PageRank computation.

use std::fmt;

/// Errors from PageRank configuration or jump-vector construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PageRankError {
    /// Damping factor outside `[0, 1)`.
    InvalidDamping(f64),
    /// Non-positive or non-finite tolerance.
    InvalidTolerance(f64),
    /// Zero iteration cap.
    InvalidIterationCap,
    /// A custom jump vector's length did not match the graph.
    JumpVectorLength {
        /// Supplied length.
        got: usize,
        /// Graph node count.
        expected: usize,
    },
    /// A jump vector had negative entries or norm outside `(0, 1]`.
    InvalidJumpVector(String),
}

impl fmt::Display for PageRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageRankError::InvalidDamping(c) => {
                write!(f, "damping factor {c} outside [0, 1)")
            }
            PageRankError::InvalidTolerance(t) => {
                write!(f, "tolerance {t} must be positive and finite")
            }
            PageRankError::InvalidIterationCap => write!(f, "max_iterations must be nonzero"),
            PageRankError::JumpVectorLength { got, expected } => {
                write!(f, "jump vector length {got} does not match node count {expected}")
            }
            PageRankError::InvalidJumpVector(msg) => write!(f, "invalid jump vector: {msg}"),
        }
    }
}

impl std::error::Error for PageRankError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PageRankError::InvalidDamping(1.5).to_string().contains("damping"));
        assert!(PageRankError::JumpVectorLength { got: 3, expected: 5 }
            .to_string()
            .contains("length 3"));
        assert!(PageRankError::InvalidJumpVector("neg".into()).to_string().contains("neg"));
    }
}
