//! Worker-pool profiler: per-worker gather / barrier-wait timing and the
//! control thread's merge-phase timing, fed into the live metrics
//! registry.
//!
//! The pooled solvers are barrier-synchronized, so one slow chunk stalls
//! every worker — but from the outside a solve is just "slow", with no
//! way to tell skew (one hot chunk) from uniform cost (everyone busy).
//! The profiler makes the distinction observable while the solve runs:
//! each worker accumulates the nanoseconds it spent in the gather kernel
//! and at the round handoff into relaxed atomics, and once per round the
//! control thread flushes those into per-worker windowed series on the
//! process-global [`spammass_obs::registry`]:
//!
//! * `pagerank.worker.<w>.gather_ns` — histogram of per-round kernel time;
//! * `pagerank.worker.<w>.barrier_wait_ns` — histogram of per-round wait
//!   time (high values on one worker mean *the others* are slow);
//! * `pagerank.worker.<w>.edges_per_s` — gauge of the worker's gather
//!   throughput over its chunk's edges;
//! * `pagerank.merge_ns` — histogram of the control thread's per-sweep
//!   cost combining partial accumulators for rows split across edge
//!   chunks (the edge-parallel design's only serial section);
//! * `pagerank.partition.imbalance` / `pagerank.partition.chunks` —
//!   gauges describing the edge-range partition itself;
//! * `pagerank.pool.sweeps` — counter whose windowed rate is the live
//!   sweeps/s of the solve.
//!
//! Construction is gated on [`spammass_obs::registry::live`]: without
//! `--serve-metrics` (or another caller enabling the global registry)
//! [`PoolProfiler::from_live`] returns `None` and the pool runs the
//! exact unprofiled code path — no timestamps, no atomics, no overhead.

use crate::partition::EdgePartition;
use spammass_obs::names;
use spammass_obs::registry::{self, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-worker timing accumulators plus the prebuilt series names they
/// flush into. One instance per solve; shared by reference with the
/// pool's workers.
pub(crate) struct PoolProfiler {
    registry: &'static Arc<MetricsRegistry>,
    /// Nanoseconds each worker spent in the kernel since the last flush.
    gather_ns: Vec<AtomicU64>,
    /// Nanoseconds each worker spent blocked at the round handoff since
    /// the last flush.
    barrier_ns: Vec<AtomicU64>,
    /// Nanoseconds the control thread spent merging boundary rows since
    /// the last flush. Written only by the control thread, but kept
    /// atomic so `flush_round` can drain all slots uniformly.
    merge_ns: AtomicU64,
    gather_names: Vec<String>,
    barrier_names: Vec<String>,
    eps_names: Vec<String>,
    /// Edges each worker's chunk traverses per round (edge-range length
    /// × solve columns).
    chunk_edges: Vec<f64>,
    imbalance: f64,
}

impl PoolProfiler {
    /// Builds a profiler for `partition` — or `None` when the global
    /// registry is off, so the solvers pay nothing by default.
    /// `columns` is the number of jump vectors a single round traverses
    /// (1 for the single-RHS solver, K for the batched one).
    pub(crate) fn from_live(partition: &EdgePartition, columns: usize) -> Option<PoolProfiler> {
        let registry = registry::live()?;
        let workers = partition.len();
        let chunk_edges: Vec<f64> =
            partition.chunk_edges().iter().map(|&e| (e * columns.max(1)) as f64).collect();
        Some(PoolProfiler {
            registry,
            gather_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            barrier_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            merge_ns: AtomicU64::new(0),
            gather_names: (0..workers).map(|w| names::worker_series(w, "gather_ns")).collect(),
            barrier_names: (0..workers)
                .map(|w| names::worker_series(w, "barrier_wait_ns"))
                .collect(),
            eps_names: (0..workers).map(|w| names::worker_series(w, "edges_per_s")).collect(),
            chunk_edges,
            imbalance: partition_imbalance(partition),
        })
    }

    /// Adds `ns` of kernel time to worker `w`'s slot. Relaxed: slots are
    /// only reconciled at the per-round flush, which the pool's round
    /// handoff orders against.
    #[inline]
    pub(crate) fn record_gather(&self, worker: usize, ns: u64) {
        self.gather_ns[worker].fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds `ns` of handoff-wait time to worker `w`'s slot.
    #[inline]
    pub(crate) fn record_barrier(&self, worker: usize, ns: u64) {
        self.barrier_ns[worker].fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds `ns` of merge-phase time (control thread only, inside the
    /// control closure — the pool flushes after it so the observation
    /// lands in the same round).
    #[inline]
    pub(crate) fn record_merge(&self, ns: u64) {
        self.merge_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Drains every slot into the registry. Called by the control thread
    /// once per round; a worker's end-of-round wait may land after the
    /// flush and be attributed to the next round, which is fine for
    /// windowed series.
    pub(crate) fn flush_round(&self) {
        for w in 0..self.gather_ns.len() {
            let gather = self.gather_ns[w].swap(0, Ordering::Relaxed);
            let barrier = self.barrier_ns[w].swap(0, Ordering::Relaxed);
            self.registry.observe(&self.gather_names[w], gather as f64);
            self.registry.observe(&self.barrier_names[w], barrier as f64);
            if gather > 0 {
                let eps = self.chunk_edges[w] / (gather as f64 / 1e9);
                self.registry.gauge_set(&self.eps_names[w], eps);
            }
        }
        let merge = self.merge_ns.swap(0, Ordering::Relaxed);
        self.registry.observe(names::PAGERANK_MERGE_NS, merge as f64);
        self.registry.counter_add(names::PAGERANK_POOL_SWEEPS, 1.0);
        self.registry.gauge_set(names::PAGERANK_PARTITION_IMBALANCE, self.imbalance);
        self.registry.gauge_set(names::PAGERANK_PARTITION_CHUNKS, self.gather_ns.len() as f64);
    }
}

/// Heaviest chunk's edge count relative to a perfect split (1.0 =
/// balanced). Edge-range cuts are balanced to within one edge by
/// construction, so values above ~1.0 only appear when there are more
/// workers than edges.
pub(crate) fn partition_imbalance(partition: &EdgePartition) -> f64 {
    let edges = partition.chunk_edges();
    let total: usize = edges.iter().sum();
    let max = edges.iter().copied().max().unwrap_or(0);
    if total == 0 {
        return 1.0;
    }
    max as f64 * edges.len() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::{Graph, GraphBuilder};

    /// Star graph: all in-edges land on node 0.
    fn star(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (1..n).map(|x| (x, 0)).collect();
        GraphBuilder::from_edges(n as usize, &edges)
    }

    #[test]
    fn imbalance_is_one_for_single_chunk() {
        let g = star(100);
        let p = EdgePartition::balanced(&g, 1);
        assert_eq!(partition_imbalance(&p), 1.0);
    }

    #[test]
    fn edge_ranges_stay_balanced_even_on_hub_rows() {
        // The old node partition could not split the star's hub row, so
        // one chunk owned every edge. Edge ranges cut through the row:
        // imbalance stays within one edge of perfect.
        let g = star(10_000);
        let imb = partition_imbalance(&EdgePartition::balanced(&g, 4));
        let n_edges = g.edge_count() as f64;
        assert!(imb <= (n_edges / 4.0).ceil() * 4.0 / n_edges, "imbalance {imb}");
    }

    #[test]
    fn imbalance_handles_empty_graphs() {
        let g = GraphBuilder::from_edges(0, &[]);
        let p = EdgePartition::balanced(&g, 4);
        assert_eq!(partition_imbalance(&p), 1.0);
    }

    #[test]
    fn from_live_is_none_without_a_registry() {
        // Unit tests never enable the process-global registry (that is
        // irreversible), so the gate must report None here.
        let g = star(50);
        let p = EdgePartition::balanced(&g, 2);
        assert!(PoolProfiler::from_live(&p, 1).is_none());
    }
}
