//! Worker-pool profiler: per-worker gather and barrier-wait timing fed
//! into the live metrics registry.
//!
//! The pooled solvers are barrier-synchronized, so one slow chunk stalls
//! every worker — but from the outside a solve is just "slow", with no
//! way to tell skew (one hot chunk) from uniform cost (everyone busy).
//! The profiler makes the distinction observable while the solve runs:
//! each worker accumulates the nanoseconds it spent in the gather kernel
//! and at the barriers into relaxed atomics, and once per round the
//! control thread flushes those into per-worker windowed series on the
//! process-global [`spammass_obs::registry`]:
//!
//! * `pagerank.worker.<w>.gather_ns` — histogram of per-round kernel time;
//! * `pagerank.worker.<w>.barrier_wait_ns` — histogram of per-round wait
//!   time (high values on one worker mean *the others* are slow);
//! * `pagerank.worker.<w>.edges_per_s` — gauge of the worker's gather
//!   throughput over its chunk's edges;
//! * `pagerank.partition.imbalance` / `pagerank.partition.chunks` —
//!   gauges describing the edge-balanced partition itself;
//! * `pagerank.pool.sweeps` — counter whose windowed rate is the live
//!   sweeps/s of the solve.
//!
//! Construction is gated on [`spammass_obs::registry::live`]: without
//! `--serve-metrics` (or another caller enabling the global registry)
//! [`PoolProfiler::from_live`] returns `None` and the pool runs the
//! exact unprofiled code path — no timestamps, no atomics, no overhead.

use crate::partition::NodePartition;
use spammass_graph::Graph;
use spammass_obs::names;
use spammass_obs::registry::{self, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-worker timing accumulators plus the prebuilt series names they
/// flush into. One instance per solve; shared by reference with the
/// pool's workers.
pub(crate) struct PoolProfiler {
    registry: &'static Arc<MetricsRegistry>,
    /// Nanoseconds each worker spent in the kernel since the last flush.
    gather_ns: Vec<AtomicU64>,
    /// Nanoseconds each worker spent blocked at barriers since the last
    /// flush.
    barrier_ns: Vec<AtomicU64>,
    gather_names: Vec<String>,
    barrier_names: Vec<String>,
    eps_names: Vec<String>,
    /// Edges each worker's chunk traverses per round (in-edges of the
    /// chunk × solve columns).
    chunk_edges: Vec<f64>,
    imbalance: f64,
}

impl PoolProfiler {
    /// Builds a profiler for `partition` — or `None` when the global
    /// registry is off, so the solvers pay nothing by default.
    /// `columns` is the number of jump vectors a single round traverses
    /// (1 for the single-RHS solver, K for the batched one).
    pub(crate) fn from_live(
        partition: &NodePartition,
        graph: &Graph,
        columns: usize,
    ) -> Option<PoolProfiler> {
        let registry = registry::live()?;
        let workers = partition.len();
        let in_edges = partition.chunk_in_edges(graph);
        let chunk_edges: Vec<f64> = in_edges.iter().map(|&e| (e * columns.max(1)) as f64).collect();
        Some(PoolProfiler {
            registry,
            gather_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            barrier_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            gather_names: (0..workers).map(|w| names::worker_series(w, "gather_ns")).collect(),
            barrier_names: (0..workers)
                .map(|w| names::worker_series(w, "barrier_wait_ns"))
                .collect(),
            eps_names: (0..workers).map(|w| names::worker_series(w, "edges_per_s")).collect(),
            chunk_edges,
            imbalance: partition_imbalance(partition, graph),
        })
    }

    /// Adds `ns` of kernel time to worker `w`'s slot. Relaxed: slots are
    /// only reconciled at the per-round flush, which the pool's barriers
    /// order against.
    #[inline]
    pub(crate) fn record_gather(&self, worker: usize, ns: u64) {
        self.gather_ns[worker].fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds `ns` of barrier-wait time to worker `w`'s slot.
    #[inline]
    pub(crate) fn record_barrier(&self, worker: usize, ns: u64) {
        self.barrier_ns[worker].fetch_add(ns, Ordering::Relaxed);
    }

    /// Drains every worker's slots into the registry. Called by the
    /// control thread once per round; a worker's end-of-round wait may
    /// land after the flush and be attributed to the next round, which
    /// is fine for windowed series.
    pub(crate) fn flush_round(&self) {
        for w in 0..self.gather_ns.len() {
            let gather = self.gather_ns[w].swap(0, Ordering::Relaxed);
            let barrier = self.barrier_ns[w].swap(0, Ordering::Relaxed);
            self.registry.observe(&self.gather_names[w], gather as f64);
            self.registry.observe(&self.barrier_names[w], barrier as f64);
            if gather > 0 {
                let eps = self.chunk_edges[w] / (gather as f64 / 1e9);
                self.registry.gauge_set(&self.eps_names[w], eps);
            }
        }
        self.registry.counter_add(names::PAGERANK_POOL_SWEEPS, 1.0);
        self.registry.gauge_set(names::PAGERANK_PARTITION_IMBALANCE, self.imbalance);
        self.registry.gauge_set(names::PAGERANK_PARTITION_CHUNKS, self.gather_ns.len() as f64);
    }
}

/// Heaviest chunk's weight relative to a perfect split (1.0 = balanced),
/// using the partitioner's own node weight `in_degree + 1` — so this is
/// exactly the skew the edge-balanced cut was minimizing.
pub(crate) fn partition_imbalance(partition: &NodePartition, graph: &Graph) -> f64 {
    let in_edges = partition.chunk_in_edges(graph);
    let weights: Vec<usize> =
        partition.ranges().zip(&in_edges).map(|(r, &e)| e + (r.end - r.start)).collect();
    let total: usize = weights.iter().sum();
    let max = weights.iter().copied().max().unwrap_or(0);
    if total == 0 {
        return 1.0;
    }
    max as f64 * weights.len() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;

    /// Star graph: all in-edges land on node 0.
    fn star(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (1..n).map(|x| (x, 0)).collect();
        GraphBuilder::from_edges(n as usize, &edges)
    }

    #[test]
    fn imbalance_is_one_for_single_chunk() {
        let g = star(100);
        let p = NodePartition::edge_balanced(&g, 1);
        assert_eq!(partition_imbalance(&p, &g), 1.0);
    }

    #[test]
    fn edge_balanced_beats_uniform_on_skew() {
        // Uniform node chunks put all of the star's edges in chunk 0; the
        // edge-balanced cut spreads the weight.
        let g = star(10_000);
        let balanced = partition_imbalance(&NodePartition::edge_balanced(&g, 4), &g);
        let uniform = partition_imbalance(&NodePartition::uniform(g.node_count(), 4), &g);
        assert!(balanced < uniform, "balanced {balanced} vs uniform {uniform}");
        // A single un-splittable hub node bounds how even the cut can be,
        // but the heaviest chunk never exceeds the whole weight.
        assert!((1.0..=4.0).contains(&balanced));
    }

    #[test]
    fn imbalance_handles_empty_graphs() {
        let g = GraphBuilder::from_edges(0, &[]);
        let p = NodePartition::edge_balanced(&g, 4);
        assert_eq!(partition_imbalance(&p, &g), 1.0);
    }

    #[test]
    fn from_live_is_none_without_a_registry() {
        // Unit tests never enable the process-global registry (that is
        // irreversible), so the gate must report None here.
        let g = star(50);
        let p = NodePartition::edge_balanced(&g, 2);
        assert!(PoolProfiler::from_live(&p, &g, 1).is_none());
    }
}
