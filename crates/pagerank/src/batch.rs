//! Multi-RHS batched Jacobi: k jump vectors through one CSR traversal.
//!
//! Mass estimation (Section 3.5 of the paper) needs **two** PageRank
//! solves over the same graph — `p = PR(v)` with the uniform jump and
//! `p′ = PR(w)` with the core-restricted jump. Run sequentially, the
//! edge structure (by far the largest working set) is streamed from
//! memory twice per pair of sweeps. [`solve_batch`] instead advances all
//! k columns together: each sweep walks the in-CSR **once**, and every
//! gathered neighbour contributes to all k accumulators while its cache
//! lines are hot.
//!
//! Scores are stored **interleaved** (row-major `n × k`: `P[y·k + j]` is
//! column `j`'s score of node `y`), so the k reads per traversed edge
//! are contiguous — for k = 2 both columns of a node share one cache
//! line.
//!
//! The kernel is monomorphized over the column count (`K` a const
//! generic, 1–4): the per-row accumulator is then a stack array the
//! optimizer keeps in registers and the per-edge inner loop fully
//! unrolls, instead of a dynamically-sized slice that forces a memory
//! round-trip per edge. Batches wider than four columns run as chunks
//! of up to four, each chunk sharing one traversal — still one pass per
//! four columns rather than one per column.
//!
//! Each column keeps its own residual, [`ResidualHistory`] and
//! [`ConvergenceGuard`]; a column whose residual drops below tolerance
//! is **frozen** — its values are copied through unchanged (bit-exact)
//! while the remaining columns iterate on. Because the per-column
//! arithmetic is identical to the fused kernel in [`crate::parallel`]
//! (`acc += p[x]·coef[x]` in the same order over the same edge-balanced
//! partition), a batched column is **bit-for-bit identical** to the
//! corresponding independent [`solve_parallel_jacobi`] run — the
//! property-test suite pins this.
//!
//! Error semantics match the strict single-RHS solvers: any column
//! tripping its guard (divergence, NaN poisoning) or the shared
//! iteration cap fails the whole batch, since the estimate consuming the
//! results needs every column.
//!
//! [`solve_parallel_jacobi`]: crate::parallel::solve_parallel_jacobi

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::jacobi::check_jump_length;
use crate::jump::JumpVector;
use crate::partition::NodePartition;
use crate::pool::{self, SharedSlice};
use crate::PageRankResult;
use spammass_graph::{Graph, NodeId};
use spammass_obs as obs;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};

/// Solves `(I − c·Tᵀ)pⱼ = (1 − c)vⱼ` for every jump vector in `jumps`
/// through a single shared traversal per sweep.
///
/// Returns one [`PageRankResult`] per jump vector, in order. Each
/// column's scores are bit-for-bit identical to an independent
/// [`solve_parallel_jacobi`](crate::parallel::solve_parallel_jacobi)
/// run with the same config on a machine of the same thread count.
///
/// # Errors
/// Per-column input validation mirrors the single-RHS solvers; a guard
/// trip or the iteration cap on any unconverged column fails the whole
/// batch.
pub fn solve_batch(
    graph: &Graph,
    jumps: &[JumpVector],
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    solve_batch_warm(graph, jumps, None, config)
}

/// [`solve_batch`] with per-column warm starts: column `j` is seeded from
/// `initial[j]` instead of its jump vector. `None` is the cold start for
/// every column. Warm starts change neither the fixed points nor any
/// guard semantics (see
/// [`solve_jacobi_dense_warm`](crate::jacobi::solve_jacobi_dense_warm)),
/// only the iteration count — the incremental estimator re-solves `p`
/// and `p′` from their previous fixed points after a graph delta.
///
/// # Errors
/// Same contract as [`solve_batch`], plus
/// [`PageRankError::InitialScoresLength`] when `initial` has the wrong
/// column count or any column the wrong length.
pub fn solve_batch_warm(
    graph: &Graph,
    jumps: &[JumpVector],
    initial: Option<&[Vec<f64>]>,
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    let mut vs = Vec::with_capacity(jumps.len());
    for jump in jumps {
        vs.push(jump.materialize(n)?);
    }
    solve_batch_dense_warm(graph, &vs, initial, config)
}

/// [`solve_batch`] with already-materialized jump vectors.
///
/// # Errors
/// Same contract as [`solve_batch`].
pub fn solve_batch_dense(
    graph: &Graph,
    vs: &[Vec<f64>],
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    solve_batch_dense_warm(graph, vs, None, config)
}

/// [`solve_batch_warm`] with already-materialized jump vectors.
///
/// # Errors
/// Same contract as [`solve_batch_warm`].
pub fn solve_batch_dense_warm(
    graph: &Graph,
    vs: &[Vec<f64>],
    initial: Option<&[Vec<f64>]>,
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    let k = vs.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    for v in vs {
        check_jump_length(v, n)?;
    }
    if let Some(inits) = initial {
        if inits.len() != k {
            return Err(PageRankError::InitialScoresLength { got: inits.len(), expected: k });
        }
        for p0 in inits {
            crate::jacobi::check_initial_length(p0, n)?;
        }
    }
    if n == 0 {
        return Ok(vs
            .iter()
            .map(|_| PageRankResult {
                scores: Vec::new(),
                iterations: 0,
                residual: 0.0,
                converged: true,
                residual_history: ResidualHistory::new(),
            })
            .collect());
    }

    // Monomorphized dispatch: a compile-time column count turns the
    // per-row accumulator into a register-resident array and unrolls the
    // per-edge loop. Wider batches run as independent chunks of up to
    // MAX_FUSED_COLUMNS columns (each chunk one traversal per sweep).
    let mut results = Vec::with_capacity(k);
    for (i, chunk) in vs.chunks(MAX_FUSED_COLUMNS).enumerate() {
        let lo = i * MAX_FUSED_COLUMNS;
        let init_chunk = initial.map(|inits| &inits[lo..lo + chunk.len()]);
        results.extend(match chunk.len() {
            1 => solve_batch_fixed::<1>(graph, chunk, init_chunk, config)?,
            2 => solve_batch_fixed::<2>(graph, chunk, init_chunk, config)?,
            3 => solve_batch_fixed::<3>(graph, chunk, init_chunk, config)?,
            _ => solve_batch_fixed::<4>(graph, chunk, init_chunk, config)?,
        });
    }
    Ok(results)
}

/// Widest batch a single fused traversal carries; see [`solve_batch_dense`].
const MAX_FUSED_COLUMNS: usize = 4;

/// The batched solve for exactly `K` columns (`1 ≤ K ≤ 4`), monomorphized
/// so the accumulator is a `[f64; K]` in registers. Inputs are already
/// validated and `n > 0`.
fn solve_batch_fixed<const K: usize>(
    graph: &Graph,
    vs: &[Vec<f64>],
    initial: Option<&[Vec<f64>]>,
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    debug_assert_eq!(vs.len(), K);
    let n = graph.node_count();
    let threads = crate::parallel::effective_threads(config, graph);
    let mut span = obs::span("pagerank.solve.batch");
    span.record("columns", K as f64);
    span.record("threads", threads as f64);

    let c = config.damping;
    let one_minus_c = 1.0 - c;
    let partition = NodePartition::edge_balanced(graph, threads);
    let profiler = crate::profiler::PoolProfiler::from_live(&partition, graph, K);
    let coef: Vec<f64> = graph
        .nodes()
        .map(|x| {
            let d = graph.out_degree(x);
            if d == 0 {
                0.0
            } else {
                c / d as f64
            }
        })
        .collect();

    // Interleaved row-major n×K matrices; vmat holds the jump vectors in
    // the same layout so the kernel streams them with the same stride.
    // The start iterate is the jump matrix (cold) or the supplied
    // previous fixed points (warm) — vmat stays the jump vectors either
    // way, since it feeds the `(1−c)·v` term of every sweep.
    let mut vmat = vec![0.0f64; n * K];
    for (j, v) in vs.iter().enumerate() {
        for (y, &vy) in v.iter().enumerate() {
            vmat[y * K + j] = vy;
        }
    }
    let mut front = match initial {
        None => vmat.clone(),
        Some(inits) => {
            let mut seed = vec![0.0f64; n * K];
            for (j, p0) in inits.iter().enumerate() {
                for (y, &py) in p0.iter().enumerate() {
                    seed[y * K + j] = py;
                }
            }
            seed
        }
    };
    let mut back = vec![0.0f64; n * K];
    // Per-(worker, column) residual contributions, flat threads×K.
    let mut chunk_deltas = vec![0.0f64; threads * K];
    // Columns still iterating. Written only by control between rounds;
    // Relaxed suffices because the pool barrier orders rounds.
    let active: Vec<AtomicBool> = (0..K).map(|_| AtomicBool::new(true)).collect();

    let mut histories: Vec<ResidualHistory> = (0..K).map(|_| ResidualHistory::new()).collect();
    let mut guards: Vec<ConvergenceGuard> = (0..K).map(|_| ConvergenceGuard::new()).collect();
    let mut col_iterations = vec![0usize; K];
    let mut col_residual = vec![f64::INFINITY; K];
    let mut completed = 0usize;

    let outcome: Result<(), PageRankError> = {
        let bufs = [SharedSlice::new(&mut front), SharedSlice::new(&mut back)];
        let deltas = SharedSlice::new(&mut chunk_deltas);
        let partition = &partition;
        let coef = &coef[..];
        let vmat = &vmat[..];
        let active = &active[..];

        let kernel = |round: usize, worker: usize| {
            let range = partition.range(worker);
            // SAFETY: same discipline as the single-RHS kernel — buffers
            // alternate by round parity, each worker writes only rows
            // range.start..range.end of the write buffer and its own
            // threads×K slots of deltas; the pool barriers order rounds.
            let read = unsafe { bufs[round % 2].as_slice() };
            let write = unsafe { bufs[(round + 1) % 2].range_mut(range.start * K, range.end * K) };
            let my_deltas = unsafe { deltas.range_mut(worker * K, (worker + 1) * K) };
            // Active flags only change between rounds; snapshot them once
            // per round so the row loop branches on plain bools.
            let mut act = [false; K];
            for (a, flag) in act.iter_mut().zip(active) {
                *a = flag.load(Ordering::Relaxed);
            }
            let mut local_deltas = [0.0f64; K];
            for y in range.clone() {
                let mut acc: [f64; K] =
                    vmat[y * K..(y + 1) * K].try_into().expect("vmat row is K wide");
                for a in &mut acc {
                    *a *= one_minus_c;
                }
                for x in graph.in_neighbors(NodeId(y as u32)) {
                    let w = coef[x.index()];
                    let src: &[f64; K] = read[x.index() * K..(x.index() + 1) * K]
                        .try_into()
                        .expect("score row is K wide");
                    for (a, &s) in acc.iter_mut().zip(src) {
                        *a += s * w;
                    }
                }
                let old: &[f64; K] =
                    read[y * K..(y + 1) * K].try_into().expect("score row is K wide");
                let row = &mut write[(y - range.start) * K..(y - range.start + 1) * K];
                for (j, (&a, &o)) in acc.iter().zip(old).enumerate() {
                    if act[j] {
                        local_deltas[j] += (a - o).abs();
                        row[j] = a;
                    } else {
                        // Frozen column: copy through bit-exact.
                        row[j] = o;
                    }
                }
            }
            my_deltas.copy_from_slice(&local_deltas);
        };

        let control = |round: usize| -> ControlFlow<Result<(), PageRankError>> {
            let iterations = round + 1;
            completed = iterations;
            // SAFETY: control runs between rounds; no worker is active.
            let deltas = unsafe { deltas.as_slice() };
            let mut all_frozen = true;
            for j in 0..K {
                if !active[j].load(Ordering::Relaxed) {
                    continue;
                }
                // Worker-index-order reduction per column keeps the f64
                // sum — and therefore each column's convergence — exactly
                // that of the equivalent single-RHS solve.
                let residual: f64 = (0..threads).map(|w| deltas[w * K + j]).sum();
                col_residual[j] = residual;
                histories[j].push(residual);
                if let Err(e) = guards[j].observe(iterations, residual) {
                    return ControlFlow::Break(Err(e));
                }
                if residual < config.tolerance {
                    active[j].store(false, Ordering::Relaxed);
                    col_iterations[j] = iterations;
                } else {
                    all_frozen = false;
                }
            }
            if all_frozen {
                return ControlFlow::Break(Ok(()));
            }
            if iterations >= config.max_iterations {
                let worst = (0..K)
                    .filter(|&j| active[j].load(Ordering::Relaxed))
                    .map(|j| col_residual[j])
                    .fold(0.0f64, f64::max);
                return ControlFlow::Break(Err(PageRankError::DidNotConverge {
                    iterations,
                    residual: worst,
                }));
            }
            ControlFlow::Continue(())
        };

        pool::run_rounds_profiled(threads, profiler.as_ref(), kernel, control)
    };

    // Telemetry on every exit path, including guard errors.
    span.record("iterations", completed as f64);
    outcome?;

    // Round r writes bufs[(r+1) % 2]; frozen columns were copied through
    // every later round, so bufs[completed % 2] holds every column's
    // final iterate. De-interleave into per-column results.
    let final_buf = if completed.is_multiple_of(2) { &front } else { &back };
    let mut results = Vec::with_capacity(K);
    for (j, (history, &iterations)) in histories.iter().zip(&col_iterations).enumerate() {
        obs::observe("pagerank.iterations", iterations as f64);
        let mut scores = vec![0.0f64; n];
        for (y, s) in scores.iter_mut().enumerate() {
            *s = final_buf[y * K + j];
        }
        results.push(PageRankResult {
            scores,
            iterations,
            residual: col_residual[j],
            converged: true,
            residual_history: history.clone(),
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::solve_parallel_jacobi;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        PageRankConfig::default()
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> spammass_graph::Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(n, m);
        for _ in 0..m {
            let f = rng.gen_range(0..n as u32);
            let t = rng.gen_range(0..n as u32);
            if f != t {
                b.add_edge(spammass_graph::NodeId(f), spammass_graph::NodeId(t));
            }
        }
        b.build()
    }

    fn core_jump(n: usize) -> JumpVector {
        JumpVector::core((0..(n as u32) / 10).map(spammass_graph::NodeId).collect::<Vec<_>>(), n)
    }

    #[test]
    fn batched_columns_are_bit_identical_to_independent_solves() {
        let g = random_graph(40_000, 160_000, 31);
        let n = g.node_count();
        let jumps = [JumpVector::Uniform, core_jump(n)];
        let config = cfg().threads(2);
        let batch = solve_batch(&g, &jumps, &config).unwrap();
        assert_eq!(batch.len(), 2);
        for (jump, col) in jumps.iter().zip(&batch) {
            let solo = solve_parallel_jacobi(&g, jump, &config).unwrap();
            assert_eq!(solo.scores, col.scores, "scores must be bit-identical");
            assert_eq!(solo.iterations, col.iterations);
            assert_eq!(solo.residual, col.residual);
        }
    }

    #[test]
    fn columns_converge_independently() {
        // The core jump has far less mass, so its column freezes earlier
        // (or later) than the uniform one; both must still be correct.
        let g = random_graph(40_000, 160_000, 37);
        let jumps = [JumpVector::Uniform, core_jump(g.node_count())];
        let batch = solve_batch(&g, &jumps, &cfg().threads(2)).unwrap();
        assert!(batch.iter().all(|r| r.converged));
        assert!(
            batch[0].iterations != batch[1].iterations || batch[0].residual != batch[1].residual,
            "columns should not be trivially identical"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let g = random_graph(40_000, 120_000, 41);
        let jumps = [JumpVector::Uniform, core_jump(g.node_count())];
        let a = solve_batch(&g, &jumps, &cfg().threads(3)).unwrap();
        let b = solve_batch(&g, &jumps, &cfg().threads(3)).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scores, y.scores);
            assert_eq!(x.iterations, y.iterations);
        }
    }

    #[test]
    fn works_on_tiny_graphs_single_threaded() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let batch = solve_batch(&g, &[JumpVector::Uniform], &cfg()).unwrap();
        let solo = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        // The serial fallback of solve_parallel_jacobi uses the scatter
        // kernel, so compare numerically rather than bitwise here.
        for (a, b) in batch[0].scores.iter().zip(&solo.scores) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_batch_and_empty_graph_are_fine() {
        let g = random_graph(100, 300, 43);
        assert!(solve_batch(&g, &[], &cfg()).unwrap().is_empty());
        let empty = GraphBuilder::from_edges(0, &[]);
        let r = solve_batch(&empty, &[JumpVector::Custom(Vec::new())], &cfg()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r[0].scores.is_empty());
        assert!(r[0].converged);
    }

    #[test]
    fn iteration_cap_fails_the_whole_batch() {
        let g = random_graph(40_000, 120_000, 47);
        let tight = cfg().threads(2).max_iterations(2).tolerance(1e-300);
        assert!(matches!(
            solve_batch(&g, &[JumpVector::Uniform, core_jump(g.node_count())], &tight),
            Err(PageRankError::DidNotConverge { iterations: 2, .. })
        ));
    }

    #[test]
    fn invalid_jump_is_rejected_before_solving() {
        let g = random_graph(100, 300, 53);
        let bad = JumpVector::Custom(vec![0.5; 7]); // wrong length
        assert!(solve_batch(&g, &[JumpVector::Uniform, bad], &cfg()).is_err());
    }
}
