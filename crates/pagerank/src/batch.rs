//! Multi-RHS batched Jacobi: k jump vectors through one CSR traversal.
//!
//! Mass estimation (Section 3.5 of the paper) needs **two** PageRank
//! solves over the same graph — `p = PR(v)` with the uniform jump and
//! `p′ = PR(w)` with the core-restricted jump. Run sequentially, the
//! edge structure (by far the largest working set) is streamed from
//! memory twice per pair of sweeps. [`solve_batch`] instead advances all
//! k columns together: each sweep walks the in-CSR **once**, and every
//! gathered neighbour contributes to all k accumulators while its cache
//! lines are hot.
//!
//! The actual sweep machinery lives in [`crate::engine`]: this module
//! validates, interleaves the jump vectors, picks the execution path via
//! the shared auto-sizer ([`crate::parallel::solve_path`]) and
//! monomorphizes the engine over the column count (`K` a const generic,
//! 1–4), so the per-row accumulator is a stack array the optimizer keeps
//! in registers. Batches wider than four columns run as chunks of up to
//! four, each chunk sharing one traversal.
//!
//! Because the engine's per-column arithmetic, gather kernel edge→bank
//! assignment, and residual reduction order are all independent of `K`,
//! a batched column is **bit-for-bit identical** to the corresponding
//! independent [`solve_parallel_jacobi`] run — the property-test suite
//! pins this. Sub-threshold graphs route each column through the serial
//! scatter solver, exactly as the single-RHS solver does, preserving the
//! same identity on the serial path.
//!
//! Error semantics match the strict single-RHS solvers: any column
//! tripping its guard (divergence, NaN poisoning) or the shared
//! iteration cap fails the whole batch, since the estimate consuming the
//! results needs every column.
//!
//! [`solve_parallel_jacobi`]: crate::parallel::solve_parallel_jacobi

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::history::ResidualHistory;
use crate::jacobi::check_jump_length;
use crate::jump::JumpVector;
use crate::PageRankResult;
use spammass_graph::Graph;

/// Solves `(I − c·Tᵀ)pⱼ = (1 − c)vⱼ` for every jump vector in `jumps`
/// through a single shared traversal per sweep.
///
/// Returns one [`PageRankResult`] per jump vector, in order. Each
/// column's scores are bit-for-bit identical to an independent
/// [`solve_parallel_jacobi`](crate::parallel::solve_parallel_jacobi)
/// run with the same config on a machine of the same thread count.
///
/// # Errors
/// Per-column input validation mirrors the single-RHS solvers; a guard
/// trip or the iteration cap on any unconverged column fails the whole
/// batch.
pub fn solve_batch(
    graph: &Graph,
    jumps: &[JumpVector],
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    solve_batch_warm(graph, jumps, None, config)
}

/// [`solve_batch`] with per-column warm starts: column `j` is seeded from
/// `initial[j]` instead of its jump vector. `None` is the cold start for
/// every column. Warm starts change neither the fixed points nor any
/// guard semantics (see
/// [`solve_jacobi_dense_warm`](crate::jacobi::solve_jacobi_dense_warm)),
/// only the iteration count — the incremental estimator re-solves `p`
/// and `p′` from their previous fixed points after a graph delta.
///
/// # Errors
/// Same contract as [`solve_batch`], plus
/// [`PageRankError::InitialScoresLength`] when `initial` has the wrong
/// column count or any column the wrong length.
pub fn solve_batch_warm(
    graph: &Graph,
    jumps: &[JumpVector],
    initial: Option<&[Vec<f64>]>,
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    let mut vs = Vec::with_capacity(jumps.len());
    for jump in jumps {
        vs.push(jump.materialize(n)?);
    }
    solve_batch_dense_warm(graph, &vs, initial, config)
}

/// [`solve_batch`] with already-materialized jump vectors.
///
/// # Errors
/// Same contract as [`solve_batch`].
pub fn solve_batch_dense(
    graph: &Graph,
    vs: &[Vec<f64>],
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    solve_batch_dense_warm(graph, vs, None, config)
}

/// [`solve_batch_warm`] with already-materialized jump vectors.
///
/// # Errors
/// Same contract as [`solve_batch_warm`].
pub fn solve_batch_dense_warm(
    graph: &Graph,
    vs: &[Vec<f64>],
    initial: Option<&[Vec<f64>]>,
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    let k = vs.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    for v in vs {
        check_jump_length(v, n)?;
    }
    if let Some(inits) = initial {
        if inits.len() != k {
            return Err(PageRankError::InitialScoresLength { got: inits.len(), expected: k });
        }
        for p0 in inits {
            crate::jacobi::check_initial_length(p0, n)?;
        }
    }
    if n == 0 {
        return Ok(vs
            .iter()
            .map(|_| PageRankResult {
                scores: Vec::new(),
                iterations: 0,
                residual: 0.0,
                converged: true,
                residual_history: ResidualHistory::new(),
            })
            .collect());
    }

    // Monomorphized dispatch: a compile-time column count turns the
    // per-row accumulator into a register-resident array and unrolls the
    // per-edge loop. Wider batches run as independent chunks of up to
    // MAX_FUSED_COLUMNS columns (each chunk one traversal per sweep).
    let mut results = Vec::with_capacity(k);
    for (i, chunk) in vs.chunks(MAX_FUSED_COLUMNS).enumerate() {
        let lo = i * MAX_FUSED_COLUMNS;
        let init_chunk = initial.map(|inits| &inits[lo..lo + chunk.len()]);
        results.extend(match chunk.len() {
            1 => solve_batch_fixed::<1>(graph, chunk, init_chunk, config)?,
            2 => solve_batch_fixed::<2>(graph, chunk, init_chunk, config)?,
            3 => solve_batch_fixed::<3>(graph, chunk, init_chunk, config)?,
            _ => solve_batch_fixed::<4>(graph, chunk, init_chunk, config)?,
        });
    }
    Ok(results)
}

/// Widest batch a single fused traversal carries; see [`solve_batch_dense`].
const MAX_FUSED_COLUMNS: usize = 4;

/// Routes a validated `K`-column chunk (`1 ≤ K ≤ 4`, `n > 0`) through
/// the shared engine — or, below the sizing thresholds, through the
/// serial scatter solver column by column (matching the single-RHS
/// solver's serial path bit-for-bit).
fn solve_batch_fixed<const K: usize>(
    graph: &Graph,
    vs: &[Vec<f64>],
    initial: Option<&[Vec<f64>]>,
    config: &PageRankConfig,
) -> Result<Vec<PageRankResult>, PageRankError> {
    debug_assert_eq!(vs.len(), K);
    let path = crate::parallel::solve_path(config, graph);
    if path.serial {
        let mut results = Vec::with_capacity(K);
        for (j, v) in vs.iter().enumerate() {
            let init = initial.map(|inits| &inits[j][..]);
            results.push(crate::jacobi::solve_jacobi_dense_warm(graph, v, init, config)?);
        }
        return Ok(results);
    }
    let mut varr: [&[f64]; K] = [&[]; K];
    for (slot, v) in varr.iter_mut().zip(vs) {
        *slot = v;
    }
    let iarr = initial.map(|inits| {
        let mut arr: [&[f64]; K] = [&[]; K];
        for (slot, p0) in arr.iter_mut().zip(inits) {
            *slot = p0;
        }
        arr
    });
    crate::engine::solve_pooled::<K>(
        graph,
        varr,
        iarr,
        config,
        path.threads,
        "pagerank.solve.batch",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::solve_parallel_jacobi;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        // Quota override pins the pooled engine path on these mid-size
        // test graphs (the default quota would route them serial).
        PageRankConfig::default().edges_per_thread(1)
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> spammass_graph::Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(n, m);
        for _ in 0..m {
            let f = rng.gen_range(0..n as u32);
            let t = rng.gen_range(0..n as u32);
            if f != t {
                b.add_edge(spammass_graph::NodeId(f), spammass_graph::NodeId(t));
            }
        }
        b.build()
    }

    fn core_jump(n: usize) -> JumpVector {
        JumpVector::core((0..(n as u32) / 10).map(spammass_graph::NodeId).collect::<Vec<_>>(), n)
    }

    #[test]
    fn batched_columns_are_bit_identical_to_independent_solves() {
        let g = random_graph(40_000, 160_000, 31);
        let n = g.node_count();
        let jumps = [JumpVector::Uniform, core_jump(n)];
        let config = cfg().threads(2);
        let batch = solve_batch(&g, &jumps, &config).unwrap();
        assert_eq!(batch.len(), 2);
        for (jump, col) in jumps.iter().zip(&batch) {
            let solo = solve_parallel_jacobi(&g, jump, &config).unwrap();
            assert_eq!(solo.scores, col.scores, "scores must be bit-identical");
            assert_eq!(solo.iterations, col.iterations);
            assert_eq!(solo.residual, col.residual);
        }
    }

    #[test]
    fn serial_routed_batch_matches_serial_solo_solves() {
        // With the default quota this graph routes to the serial scatter
        // path; the batch must split into per-column scatter solves that
        // are bit-identical to the single-RHS solver's serial path.
        let g = random_graph(40_000, 160_000, 29);
        let jumps = [JumpVector::Uniform, core_jump(g.node_count())];
        let config = PageRankConfig::default().threads(2);
        let batch = solve_batch(&g, &jumps, &config).unwrap();
        for (jump, col) in jumps.iter().zip(&batch) {
            let solo = solve_parallel_jacobi(&g, jump, &config).unwrap();
            assert_eq!(solo.scores, col.scores, "scores must be bit-identical");
            assert_eq!(solo.iterations, col.iterations);
        }
    }

    #[test]
    fn columns_converge_independently() {
        // The core jump has far less mass, so its column freezes earlier
        // (or later) than the uniform one; both must still be correct.
        let g = random_graph(40_000, 160_000, 37);
        let jumps = [JumpVector::Uniform, core_jump(g.node_count())];
        let batch = solve_batch(&g, &jumps, &cfg().threads(2)).unwrap();
        assert!(batch.iter().all(|r| r.converged));
        assert!(
            batch[0].iterations != batch[1].iterations || batch[0].residual != batch[1].residual,
            "columns should not be trivially identical"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let g = random_graph(40_000, 120_000, 41);
        let jumps = [JumpVector::Uniform, core_jump(g.node_count())];
        let a = solve_batch(&g, &jumps, &cfg().threads(3)).unwrap();
        let b = solve_batch(&g, &jumps, &cfg().threads(3)).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scores, y.scores);
            assert_eq!(x.iterations, y.iterations);
        }
    }

    #[test]
    fn works_on_tiny_graphs_single_threaded() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let batch = solve_batch(&g, &[JumpVector::Uniform], &cfg()).unwrap();
        let solo = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        // Both route through the serial scatter solver on a graph this
        // small, so the comparison is exact in practice; assert the
        // numeric bound the API promises.
        for (a, b) in batch[0].scores.iter().zip(&solo.scores) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_batch_and_empty_graph_are_fine() {
        let g = random_graph(100, 300, 43);
        assert!(solve_batch(&g, &[], &cfg()).unwrap().is_empty());
        let empty = GraphBuilder::from_edges(0, &[]);
        let r = solve_batch(&empty, &[JumpVector::Custom(Vec::new())], &cfg()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r[0].scores.is_empty());
        assert!(r[0].converged);
    }

    #[test]
    fn iteration_cap_fails_the_whole_batch() {
        let g = random_graph(40_000, 120_000, 47);
        let tight = cfg().threads(2).max_iterations(2).tolerance(1e-300);
        assert!(matches!(
            solve_batch(&g, &[JumpVector::Uniform, core_jump(g.node_count())], &tight),
            Err(PageRankError::DidNotConverge { iterations: 2, .. })
        ));
    }

    #[test]
    fn invalid_jump_is_rejected_before_solving() {
        let g = random_graph(100, 300, 53);
        let bad = JumpVector::Custom(vec![0.5; 7]); // wrong length
        assert!(solve_batch(&g, &[JumpVector::Uniform, bad], &cfg()).is_err());
    }
}
