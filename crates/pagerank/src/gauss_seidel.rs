//! Gauss–Seidel solver for linear PageRank.
//!
//! Section 2.2 notes that the linear-system view admits solvers "such as
//! the Jacobi or Gauss-Seidel methods, which are regularly faster than the
//! algorithms available for solving eigensystems". Gauss–Seidel updates
//! scores in place, consuming already-updated in-neighbour values within
//! the same sweep:
//!
//! ```text
//! p[y] ← (1 − c)·v[y] + c · Σ_{(x,y) ∈ E} p[x] / out(x)
//! ```
//!
//! Because the iteration matrix `c·Tᵀ` has spectral radius ≤ c < 1, the
//! method converges for any sweep order; in practice it needs roughly half
//! the iterations Jacobi does.

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::jacobi::check_jump_length;
use crate::jump::JumpVector;
use crate::PageRankResult;
use spammass_graph::Graph;
use spammass_obs as obs;

/// Solves `(I − c·Tᵀ)p = (1 − c)v` by Gauss–Seidel sweeps in node-id order.
///
/// # Errors
/// Returns a configuration/jump-vector error before iterating, and
/// [`PageRankError::DidNotConverge`], [`PageRankError::Diverged`], or
/// [`PageRankError::NumericalInstability`] if the iteration fails.
pub fn solve_gauss_seidel(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let v = jump.materialize(graph.node_count())?;
    solve_gauss_seidel_dense(graph, &v, config)
}

/// Gauss–Seidel with an already-materialized jump vector.
///
/// # Errors
/// Same contract as [`solve_gauss_seidel`].
pub fn solve_gauss_seidel_dense(
    graph: &Graph,
    v: &[f64],
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    check_jump_length(v, n)?;
    let mut span = obs::span("pagerank.solve.gauss_seidel");
    let c = config.damping;
    let one_minus_c = 1.0 - c;

    // Pre-compute reciprocal out-degrees to keep the inner gather loop
    // division-free (perf-book: hoist invariant work out of hot loops).
    let inv_out: Vec<f64> = graph
        .nodes()
        .map(|x| {
            let d = graph.out_degree(x);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();

    let mut p: Vec<f64> = v.to_vec();
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    let mut residual_history = ResidualHistory::new();
    let mut guard = ConvergenceGuard::new();

    while iterations < config.max_iterations {
        iterations += 1;
        let mut delta = 0.0f64;
        for y in graph.nodes() {
            let mut acc = 0.0f64;
            for &x in graph.in_neighbors(y) {
                acc += p[x.index()] * inv_out[x.index()];
            }
            let new = one_minus_c * v[y.index()] + c * acc;
            delta += (new - p[y.index()]).abs();
            p[y.index()] = new;
        }
        residual = delta;
        residual_history.push(residual);
        // Record the span metric even when the guard aborts the solve.
        if let Err(e) = guard.observe(iterations, residual) {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Err(e);
        }
        if residual < config.tolerance {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Ok(PageRankResult {
                scores: p,
                iterations,
                residual,
                converged: true,
                residual_history,
            });
        }
    }

    span.record("iterations", iterations as f64);
    obs::observe("pagerank.iterations", iterations as f64);
    Err(PageRankError::DidNotConverge { iterations, residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::solve_jacobi;
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        PageRankConfig::default()
    }

    #[test]
    fn agrees_with_jacobi_on_cycle() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_gauss_seidel(&g, &JumpVector::Uniform, &cfg()).unwrap();
        for i in 0..5 {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn agrees_with_jacobi_on_dag_with_dangling() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_gauss_seidel(&g, &JumpVector::Uniform, &cfg()).unwrap();
        for i in 0..6 {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn agrees_with_jacobi_under_core_jump() {
        use spammass_graph::NodeId;
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let jump = JumpVector::scaled_core(vec![NodeId(0), NodeId(1)], 0.85);
        let a = solve_jacobi(&g, &jump, &cfg()).unwrap();
        let b = solve_gauss_seidel(&g, &jump, &cfg()).unwrap();
        for i in 0..4 {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn converges_in_fewer_iterations_than_jacobi() {
        // A long chain maximizes the benefit of in-sweep propagation.
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let g = GraphBuilder::from_edges(100, &edges);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_gauss_seidel(&g, &JumpVector::Uniform, &cfg()).unwrap();
        assert!(
            b.iterations < a.iterations,
            "gauss-seidel {} vs jacobi {}",
            b.iterations,
            a.iterations
        );
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let r = solve_gauss_seidel(&g, &JumpVector::Uniform, &cfg()).unwrap();
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn iteration_cap_is_a_typed_error() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2)]);
        let tight = cfg().max_iterations(1).tolerance(1e-300);
        assert!(matches!(
            solve_gauss_seidel(&g, &JumpVector::Uniform, &tight),
            Err(PageRankError::DidNotConverge { iterations: 1, .. })
        ));
    }
}
