//! Random-jump vector construction.
//!
//! The paper's method hinges on solving the same linear system under
//! different jump vectors:
//!
//! * the **uniform** vector `v = (1/n)ₙ` for the regular PageRank `p`;
//! * a **core-based** vector `v^{Ṽ⁺}` (entries `1/n` on the good core,
//!   zero elsewhere — Section 3.4), optionally **scaled** so its total mass
//!   is `γ ≈ |V⁺|/n` (Section 3.5, the `w` vector);
//! * **single-node** vectors `v^x` for PageRank contributions (Theorem 2).
//!
//! Jump vectors may be unnormalized (`0 < ‖v‖ ≤ 1`), which leaves the
//! PageRank vector unnormalized as well — this is intentional and required
//! by the mass-estimation algebra.

use crate::error::PageRankError;
use spammass_graph::NodeId;

/// A random-jump distribution over graph nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum JumpVector {
    /// Uniform `1/n` over all nodes — the regular PageRank jump.
    Uniform,
    /// Uniform over a node subset with a chosen **total** mass:
    /// entries are `total_mass / |nodes|` on the subset, zero elsewhere.
    ///
    /// * `total_mass = |nodes|/n` reproduces the plain `v^{Ṽ⁺}` of
    ///   Section 3.4 (use [`JumpVector::core`]).
    /// * `total_mass = γ` reproduces the scaled `w` of Section 3.5
    ///   (use [`JumpVector::scaled_core`]).
    Core {
        /// Nodes receiving jump probability.
        nodes: Vec<NodeId>,
        /// Total jump mass distributed over `nodes`.
        total_mass: f64,
    },
    /// All jump mass `v_x` on a single node — the `v^x` of Theorem 2.
    SingleNode {
        /// The node receiving the jump.
        node: NodeId,
        /// Its jump probability `v_x` (e.g. `1/n`).
        mass: f64,
    },
    /// Fully custom per-node jump probabilities.
    Custom(Vec<f64>),
}

impl JumpVector {
    /// Plain core-based vector `v^U`: `1/n` on each core node, zero
    /// elsewhere (Section 3.4). `n` is supplied at materialization, so the
    /// stored mass is per-node `1/n` semantics via `total_mass = |U|/n`.
    pub fn core(nodes: Vec<NodeId>, node_count: usize) -> Self {
        let mut unique = nodes;
        unique.sort_unstable();
        unique.dedup();
        let total = unique.len() as f64 / node_count as f64;
        JumpVector::Core { nodes: unique, total_mass: total }
    }

    /// γ-scaled core vector `w` (Section 3.5): uniform over the core with
    /// `‖w‖ = gamma`, where `gamma` estimates the good fraction of the web
    /// (the paper uses 0.85, i.e. "at least 15% of hosts are spam").
    pub fn scaled_core(nodes: Vec<NodeId>, gamma: f64) -> Self {
        JumpVector::Core { nodes, total_mass: gamma }
    }

    /// Materializes the jump vector as a dense `Vec<f64>` of length `n`.
    pub fn materialize(&self, n: usize) -> Result<Vec<f64>, PageRankError> {
        let v = match self {
            JumpVector::Uniform => {
                if n == 0 {
                    Vec::new()
                } else {
                    vec![1.0 / n as f64; n]
                }
            }
            JumpVector::Core { nodes, total_mass } => {
                if nodes.is_empty() {
                    return Err(PageRankError::InvalidJumpVector("empty core".into()));
                }
                // Deduplicate: splitting total_mass over a list with
                // duplicates and then overwriting entries would silently
                // shrink the materialized norm below `total_mass`.
                let mut unique = nodes.clone();
                unique.sort_unstable();
                unique.dedup();
                let per_node = total_mass / unique.len() as f64;
                let mut v = vec![0.0; n];
                for &x in &unique {
                    if x.index() >= n {
                        return Err(PageRankError::InvalidJumpVector(format!(
                            "core node {x} out of range for {n} nodes"
                        )));
                    }
                    v[x.index()] = per_node;
                }
                v
            }
            JumpVector::SingleNode { node, mass } => {
                if node.index() >= n {
                    return Err(PageRankError::InvalidJumpVector(format!(
                        "node {node} out of range for {n} nodes"
                    )));
                }
                let mut v = vec![0.0; n];
                v[node.index()] = *mass;
                v
            }
            JumpVector::Custom(values) => {
                if values.len() != n {
                    return Err(PageRankError::JumpVectorLength { got: values.len(), expected: n });
                }
                values.clone()
            }
        };
        validate_entries(&v)?;
        Ok(v)
    }

    /// Total mass `‖v‖₁` the materialized vector will have.
    pub fn norm(&self, n: usize) -> f64 {
        match self {
            JumpVector::Uniform => {
                if n == 0 {
                    0.0
                } else {
                    1.0
                }
            }
            JumpVector::Core { total_mass, .. } => *total_mass,
            JumpVector::SingleNode { mass, .. } => *mass,
            JumpVector::Custom(values) => values.iter().sum(),
        }
    }
}

fn validate_entries(v: &[f64]) -> Result<(), PageRankError> {
    let mut sum = 0.0;
    for &x in v {
        if !x.is_finite() || x < 0.0 {
            return Err(PageRankError::InvalidJumpVector(format!(
                "entry {x} is negative or non-finite"
            )));
        }
        sum += x;
    }
    if !v.is_empty() && sum > 1.0 + 1e-9 {
        return Err(PageRankError::InvalidJumpVector(format!("norm {sum} exceeds 1")));
    }
    if !v.is_empty() && sum <= 0.0 {
        return Err(PageRankError::InvalidJumpVector(
            "norm must be positive (0 < ||v|| <= 1)".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_materialization() {
        let v = JumpVector::Uniform.materialize(4).unwrap();
        assert_eq!(v, vec![0.25; 4]);
        assert!((JumpVector::Uniform.norm(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn core_vector_section_3_4() {
        // v^U: 1/n on core nodes.
        let j = JumpVector::core(vec![NodeId(0), NodeId(2)], 4);
        let v = j.materialize(4).unwrap();
        assert_eq!(v, vec![0.25, 0.0, 0.25, 0.0]);
        assert!((j.norm(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scaled_core_section_3_5() {
        // w: ‖w‖ = γ = 0.85 over 2 core nodes -> 0.425 each.
        let j = JumpVector::scaled_core(vec![NodeId(1), NodeId(3)], 0.85);
        let v = j.materialize(4).unwrap();
        assert!((v[1] - 0.425).abs() < 1e-12);
        assert!((v[3] - 0.425).abs() < 1e-12);
        assert_eq!(v[0], 0.0);
        assert!((j.norm(4) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn single_node_vector() {
        let j = JumpVector::SingleNode { node: NodeId(2), mass: 0.25 };
        let v = j.materialize(4).unwrap();
        assert_eq!(v, vec![0.0, 0.0, 0.25, 0.0]);
    }

    #[test]
    fn custom_vector_checked() {
        let j = JumpVector::Custom(vec![0.5, 0.5]);
        assert!(j.materialize(2).is_ok());
        assert!(matches!(
            j.materialize(3),
            Err(PageRankError::JumpVectorLength { got: 2, expected: 3 })
        ));
    }

    #[test]
    fn rejects_bad_vectors() {
        assert!(JumpVector::Custom(vec![-0.1, 0.5]).materialize(2).is_err());
        assert!(JumpVector::Custom(vec![0.9, 0.9]).materialize(2).is_err());
        assert!(JumpVector::Custom(vec![f64::NAN, 0.0]).materialize(2).is_err());
        let empty_core = JumpVector::Core { nodes: vec![], total_mass: 0.5 };
        assert!(empty_core.materialize(2).is_err());
        let oob = JumpVector::core(vec![NodeId(9)], 10);
        assert!(oob.materialize(2).is_err());
        let oob_single = JumpVector::SingleNode { node: NodeId(9), mass: 0.1 };
        assert!(oob_single.materialize(2).is_err());
    }

    #[test]
    fn empty_graph_edge_cases() {
        assert!(JumpVector::Uniform.materialize(0).unwrap().is_empty());
        assert_eq!(JumpVector::Uniform.norm(0), 0.0);
    }
}
