//! Solver fallback chains with per-attempt diagnostics.
//!
//! The strict solvers ([`solve_jacobi`](crate::jacobi::solve_jacobi) & co.)
//! turn a failed solve into a typed error. A [`SolverChain`] layers graceful
//! degradation on top: it runs a configured sequence of (solver, config)
//! attempts, returning the first success together with a structured
//! [`AttemptReport`] for every attempt made — so a pipeline can log *why*
//! the primary solver was abandoned, not just that it was.
//!
//! A typical chain retries with a different iteration structure first
//! (Gauss–Seidel propagates updates within a sweep, so it converges where
//! Jacobi stalls against a tight cap) and only then relaxes the problem
//! itself (a slightly smaller damping factor contracts faster at the cost
//! of solving a more-damped system — acceptable as a flagged last resort,
//! never silently).

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::jump::JumpVector;
use crate::{gauss_seidel, jacobi, parallel, power, PageRankResult};
use spammass_graph::Graph;
use spammass_obs as obs;
use std::fmt;

/// Which solver implementation an attempt uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Serial Jacobi — Algorithm 1 of the paper.
    Jacobi,
    /// Gauss–Seidel in-place sweeps.
    GaussSeidel,
    /// Thread-parallel Jacobi.
    ParallelJacobi,
    /// Power iteration on the augmented matrix (requires `‖v‖₁ = 1`).
    Power,
}

impl SolverKind {
    /// Stable human-readable name (matches the CLI `--solver` values).
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Jacobi => "jacobi",
            SolverKind::GaussSeidel => "gauss-seidel",
            SolverKind::ParallelJacobi => "parallel",
            SolverKind::Power => "power",
        }
    }

    /// Runs this solver.
    ///
    /// # Errors
    /// Propagates the underlying solver's error.
    pub fn solve(
        &self,
        graph: &Graph,
        jump: &JumpVector,
        config: &PageRankConfig,
    ) -> Result<PageRankResult, PageRankError> {
        match self {
            SolverKind::Jacobi => jacobi::solve_jacobi(graph, jump, config),
            SolverKind::GaussSeidel => gauss_seidel::solve_gauss_seidel(graph, jump, config),
            SolverKind::ParallelJacobi => parallel::solve_parallel_jacobi(graph, jump, config),
            SolverKind::Power => power::solve_power(graph, jump, config),
        }
    }
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one chain attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The attempt converged.
    Succeeded {
        /// Iterations the successful solve took.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
    /// The attempt failed with the contained error.
    Failed(PageRankError),
}

/// Diagnostics for one attempt in a chain solve.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptReport {
    /// Solver used.
    pub solver: SolverKind,
    /// Configuration of the attempt.
    pub config: PageRankConfig,
    /// What happened.
    pub outcome: AttemptOutcome,
}

impl fmt::Display for AttemptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            AttemptOutcome::Succeeded { iterations, residual } => write!(
                f,
                "{} (c={}, cap={}): converged in {iterations} iterations (residual {residual:.3e})",
                self.solver, self.config.damping, self.config.max_iterations
            ),
            AttemptOutcome::Failed(e) => write!(
                f,
                "{} (c={}, cap={}): {e}",
                self.solver, self.config.damping, self.config.max_iterations
            ),
        }
    }
}

/// A successful chain solve: the winning result plus every attempt made.
#[derive(Debug, Clone)]
pub struct ChainSolve {
    /// Result of the first attempt that converged.
    pub result: PageRankResult,
    /// Reports for all attempts, in order; the last one succeeded.
    pub attempts: Vec<AttemptReport>,
}

impl ChainSolve {
    /// The attempt that produced [`result`](ChainSolve::result).
    pub fn winner(&self) -> &AttemptReport {
        self.attempts.last().expect("a ChainSolve always records at least the winning attempt")
    }

    /// Whether any fallback was needed (i.e. the first attempt failed).
    pub fn degraded(&self) -> bool {
        self.attempts.len() > 1
    }
}

/// Every attempt in a chain failed.
#[derive(Debug, Clone)]
pub struct ChainError {
    /// Reports for all failed attempts, in order.
    pub attempts: Vec<AttemptReport>,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all {} solver attempts failed:", self.attempts.len())?;
        for a in &self.attempts {
            write!(f, "\n  {a}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ChainError {}

/// A configurable sequence of solver attempts tried in order.
#[derive(Debug, Clone)]
pub struct SolverChain {
    attempts: Vec<(SolverKind, PageRankConfig)>,
}

impl SolverChain {
    /// Chain with a single initial attempt.
    pub fn new(solver: SolverKind, config: PageRankConfig) -> Self {
        SolverChain { attempts: vec![(solver, config)] }
    }

    /// Appends a fallback attempt, builder-style.
    #[must_use]
    pub fn then(mut self, solver: SolverKind, config: PageRankConfig) -> Self {
        self.attempts.push((solver, config));
        self
    }

    /// The default hardened chain for a base configuration:
    ///
    /// 1. Jacobi with the base config (the paper's Algorithm 1);
    /// 2. Gauss–Seidel with a doubled iteration cap (different iteration
    ///    structure, ~2× faster convergence on the same problem);
    /// 3. Jacobi with a doubled cap and damping tightened by 5% — this
    ///    solves a slightly more-damped system, so it is a last resort that
    ///    the [`AttemptReport`] makes visible to the caller.
    pub fn recommended(base: PageRankConfig) -> Self {
        let widened = base.max_iterations(base.max_iterations.saturating_mul(2).max(1));
        let mut relaxed = widened;
        relaxed.damping = base.damping * 0.95;
        SolverChain::new(SolverKind::Jacobi, base)
            .then(SolverKind::GaussSeidel, widened)
            .then(SolverKind::Jacobi, relaxed)
    }

    /// The configured attempts, in order.
    pub fn attempts(&self) -> &[(SolverKind, PageRankConfig)] {
        &self.attempts
    }

    /// Runs the chain: attempts are tried in order and the first success is
    /// returned along with per-attempt diagnostics.
    ///
    /// # Errors
    /// [`ChainError`] carrying every attempt's report if all attempts fail
    /// (or the chain is empty).
    pub fn solve(&self, graph: &Graph, jump: &JumpVector) -> Result<ChainSolve, ChainError> {
        let mut span = obs::span("pagerank.chain");
        let mut reports = Vec::with_capacity(self.attempts.len());
        for (attempt, (solver, config)) in self.attempts.iter().enumerate() {
            span.record("attempts", 1.0);
            match solver.solve(graph, jump, config) {
                Ok(result) => {
                    let report = AttemptReport {
                        solver: *solver,
                        config: *config,
                        outcome: AttemptOutcome::Succeeded {
                            iterations: result.iterations,
                            residual: result.residual,
                        },
                    };
                    emit_attempt_event(attempt, &report);
                    reports.push(report);
                    return Ok(ChainSolve { result, attempts: reports });
                }
                Err(e) => {
                    let report = AttemptReport {
                        solver: *solver,
                        config: *config,
                        outcome: AttemptOutcome::Failed(e),
                    };
                    emit_attempt_event(attempt, &report);
                    reports.push(report);
                }
            }
        }
        Err(ChainError { attempts: reports })
    }
}

/// Emits one `pagerank.chain.attempt` telemetry event (no-op with no
/// collector installed).
fn emit_attempt_event(attempt: usize, report: &AttemptReport) {
    use obs::Json;
    let mut fields = vec![
        ("attempt".to_string(), Json::uint(attempt as u64)),
        ("solver".to_string(), Json::str(report.solver.name())),
        ("damping".to_string(), Json::num(report.config.damping)),
        ("max_iterations".to_string(), Json::uint(report.config.max_iterations as u64)),
    ];
    match &report.outcome {
        AttemptOutcome::Succeeded { iterations, residual } => {
            fields.push(("outcome".to_string(), Json::str("converged")));
            fields.push(("iterations".to_string(), Json::uint(*iterations as u64)));
            fields.push(("residual".to_string(), Json::num(*residual)));
        }
        AttemptOutcome::Failed(e) => {
            fields.push(("outcome".to_string(), Json::str("failed")));
            fields.push(("error".to_string(), Json::str(e.to_string())));
        }
    }
    obs::event("pagerank.chain.attempt", fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        PageRankConfig::default()
    }

    fn chain_graph() -> spammass_graph::Graph {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        GraphBuilder::from_edges(100, &edges)
    }

    #[test]
    fn first_attempt_wins_when_healthy() {
        let g = chain_graph();
        let s = SolverChain::recommended(cfg()).solve(&g, &JumpVector::Uniform).unwrap();
        assert!(!s.degraded());
        assert_eq!(s.attempts.len(), 1);
        assert_eq!(s.winner().solver, SolverKind::Jacobi);
        assert!(matches!(s.winner().outcome, AttemptOutcome::Succeeded { .. }));
    }

    #[test]
    fn falls_back_when_primary_cap_is_too_tight() {
        // A 100-node chain needs ~100 Jacobi sweeps to propagate mass to
        // the tail; Gauss–Seidel does it in far fewer. Cap at 60 so the
        // primary fails and the fallback succeeds on the SAME problem.
        let g = chain_graph();
        let base = cfg().max_iterations(60).tolerance(1e-12);
        let chain = SolverChain::new(SolverKind::Jacobi, base).then(SolverKind::GaussSeidel, base);
        let s = chain.solve(&g, &JumpVector::Uniform).unwrap();
        assert!(s.degraded());
        assert_eq!(s.attempts.len(), 2);
        assert!(matches!(
            s.attempts[0].outcome,
            AttemptOutcome::Failed(PageRankError::DidNotConverge { iterations: 60, .. })
        ));
        assert_eq!(s.winner().solver, SolverKind::GaussSeidel);
        assert!(s.result.converged);
    }

    #[test]
    fn exhausted_chain_reports_every_attempt() {
        let g = chain_graph();
        let hopeless = cfg().max_iterations(1).tolerance(1e-300);
        let chain =
            SolverChain::new(SolverKind::Jacobi, hopeless).then(SolverKind::GaussSeidel, hopeless);
        let err = chain.solve(&g, &JumpVector::Uniform).unwrap_err();
        assert_eq!(err.attempts.len(), 2);
        for a in &err.attempts {
            assert!(matches!(a.outcome, AttemptOutcome::Failed(_)));
        }
        let msg = err.to_string();
        assert!(msg.contains("all 2 solver attempts failed"), "{msg}");
        assert!(msg.contains("jacobi") && msg.contains("gauss-seidel"), "{msg}");
    }

    #[test]
    fn recommended_chain_shape() {
        let chain = SolverChain::recommended(cfg());
        let attempts = chain.attempts();
        assert_eq!(attempts.len(), 3);
        assert_eq!(attempts[0].0, SolverKind::Jacobi);
        assert_eq!(attempts[1].0, SolverKind::GaussSeidel);
        assert_eq!(attempts[2].0, SolverKind::Jacobi);
        assert!(attempts[2].1.damping < attempts[0].1.damping);
        assert!(attempts[1].1.max_iterations > attempts[0].1.max_iterations);
    }

    #[test]
    fn chain_emits_attempt_events_and_residual_telemetry() {
        use std::sync::Arc;
        let recorder = Arc::new(obs::Recorder::new());
        let collector = obs::Collector::builder().sink(recorder.clone()).build();
        let g = chain_graph();
        let base = cfg().max_iterations(60).tolerance(1e-12);
        let chain = SolverChain::new(SolverKind::Jacobi, base).then(SolverKind::GaussSeidel, base);
        {
            let _guard = collector.install();
            chain.solve(&g, &JumpVector::Uniform).unwrap();
        }
        let messages = recorder.messages();
        assert_eq!(messages.len(), 2);
        let outcome =
            |idx: usize| messages[idx].1.iter().find(|(k, _)| k == "outcome").unwrap().1.clone();
        assert_eq!(messages[0].0, "pagerank.chain.attempt");
        assert_eq!(outcome(0), obs::Json::str("failed"));
        assert_eq!(outcome(1), obs::Json::str("converged"));
        // Solver spans nest under the chain span.
        let spans = recorder.spans();
        assert!(spans.iter().any(|s| s.path == "pagerank.chain.pagerank.solve.jacobi"));
        assert!(spans.iter().any(|s| s.path == "pagerank.chain.pagerank.solve.gauss_seidel"));
        // The guard fed every iteration's residual into the histogram —
        // more samples than the (thinned) in-result history can hold.
        let metrics = collector.metrics_snapshot();
        let residuals = metrics.iter().find(|(k, _)| k == "pagerank.residual").unwrap();
        match &residuals.1 {
            obs::Metric::Histogram(h) => assert!(h.count() >= 60, "{}", h.count()),
            other => panic!("expected histogram, got {}", other.kind()),
        }
    }

    #[test]
    fn solver_kind_names_are_cli_compatible() {
        assert_eq!(SolverKind::Jacobi.name(), "jacobi");
        assert_eq!(SolverKind::GaussSeidel.name(), "gauss-seidel");
        assert_eq!(SolverKind::ParallelJacobi.name(), "parallel");
        assert_eq!(SolverKind::Power.name(), "power");
        assert_eq!(SolverKind::Power.to_string(), "power");
    }

    #[test]
    fn attempt_report_display_is_informative() {
        let r = AttemptReport {
            solver: SolverKind::Jacobi,
            config: cfg(),
            outcome: AttemptOutcome::Failed(PageRankError::DidNotConverge {
                iterations: 9,
                residual: 0.5,
            }),
        };
        let s = r.to_string();
        assert!(s.contains("jacobi") && s.contains("9 iterations"), "{s}");
    }
}
