//! Power iteration on the augmented transition matrix `T″` — the classical
//! eigenvector formulation of PageRank (Section 2.2, equation (1)).
//!
//! ```text
//! T′ = T + d·vᵀ              (dangling rows replaced by v)
//! T″ = c·T′ + (1 − c)·1ₙ·vᵀ  (teleportation)
//! p  = T″ᵀ·p                 (dominant eigenvector, λ = 1)
//! ```
//!
//! This solver exists for **cross-validation**: the paper shows that the
//! linear formulation (equation (3)) solves the same problem up to
//! rescaling `p / ‖p‖` when `‖v‖ = 1`. The test-suite verifies that claim
//! numerically, and the benches verify the paper's remark that linear
//! solvers are "regularly faster".

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::jacobi::{check_jump_length, l1_distance};
use crate::jump::JumpVector;
use crate::PageRankResult;
use spammass_graph::Graph;
use spammass_obs as obs;

/// Solves the eigenvector formulation `p = T″ᵀ p`, returning the stationary
/// distribution (normalized to `‖p‖₁ = 1`).
///
/// The jump vector must be a proper distribution (`‖v‖₁ = 1`); pass
/// [`JumpVector::Uniform`] for the classic setting.
///
/// # Errors
/// Returns [`PageRankError::InvalidJumpVector`] when `‖v‖₁ ≠ 1`, plus the
/// shared configuration and convergence errors of the other solvers.
pub fn solve_power(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    let v = jump.materialize(n)?;
    if n > 0 {
        let norm: f64 = v.iter().sum();
        if (norm - 1.0).abs() >= 1e-9 {
            return Err(PageRankError::InvalidJumpVector(format!(
                "power iteration requires a normalized jump vector (got ‖v‖ = {norm})"
            )));
        }
    }
    solve_power_dense(graph, &v, config)
}

/// Power iteration with an already-materialized, normalized jump vector.
///
/// # Errors
/// Same contract as [`solve_power`] minus the normalization pre-check:
/// callers of the dense entry point are trusted to pass a distribution.
pub fn solve_power_dense(
    graph: &Graph,
    v: &[f64],
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    check_jump_length(v, n)?;
    if n == 0 {
        return Ok(PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            residual: 0.0,
            converged: true,
            residual_history: ResidualHistory::new(),
        });
    }
    let mut span = obs::span("pagerank.solve.power");
    let c = config.damping;

    let mut p: Vec<f64> = v.to_vec();
    let mut p_next = vec![0.0f64; n];
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    let mut residual_history = ResidualHistory::new();
    let mut guard = ConvergenceGuard::new();

    while iterations < config.max_iterations {
        iterations += 1;

        // dᵀ·p: total score sitting on dangling nodes this round.
        let dangling_mass: f64 = graph.dangling_nodes().map(|x| p[x.index()]).sum();
        // ‖p‖ = 1 is maintained, so the teleport term is (1 − c)·v; the
        // dangling term redistributes c·(dᵀp) according to v.
        let background = c * dangling_mass + (1.0 - c);
        for (slot, &vy) in p_next.iter_mut().zip(v) {
            *slot = background * vy;
        }
        crate::jacobi::scatter_transition(graph, c, &p, &mut p_next);

        residual = l1_distance(&p, &p_next);
        residual_history.push(residual);
        std::mem::swap(&mut p, &mut p_next);
        // Record the span metric even when the guard aborts the solve.
        if let Err(e) = guard.observe(iterations, residual) {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Err(e);
        }
        if residual < config.tolerance {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Ok(PageRankResult {
                scores: p,
                iterations,
                residual,
                converged: true,
                residual_history,
            });
        }
    }

    span.record("iterations", iterations as f64);
    obs::observe("pagerank.iterations", iterations as f64);
    Err(PageRankError::DidNotConverge { iterations, residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::solve_jacobi;
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        PageRankConfig::default()
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = solve_power(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.converged);
    }

    #[test]
    fn matches_linear_pagerank_up_to_rescaling_when_no_dangling() {
        // With no dangling nodes T′ = T, and the linear solution with
        // k = 1 − c equals the stationary distribution exactly.
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)]);
        let lin = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let pow = solve_power(&g, &JumpVector::Uniform, &cfg()).unwrap();
        for i in 0..5 {
            assert!(
                (lin.scores[i] - pow.scores[i]).abs() < 1e-8,
                "node {i}: lin {} vs pow {}",
                lin.scores[i],
                pow.scores[i]
            );
        }
    }

    #[test]
    fn rescaled_linear_matches_power_with_dangling() {
        // With dangling nodes the raw vectors differ (linear loses mass),
        // but the paper says normalizing p/‖p‖ gives the same ordering and
        // proportions as the eigen solution only when dangling mass is
        // reinjected proportionally to v — verify ordering agreement here.
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5)]);
        let lin = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let pow = solve_power(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let mut lin_order: Vec<usize> = (0..6).collect();
        lin_order.sort_by(|&a, &b| lin.scores[a].total_cmp(&lin.scores[b]));
        let mut pow_order: Vec<usize> = (0..6).collect();
        pow_order.sort_by(|&a, &b| pow.scores[a].total_cmp(&pow.scores[b]));
        assert_eq!(lin_order, pow_order);
    }

    #[test]
    fn dangling_handling_conserves_mass() {
        // Star into a dangling hub: all mass re-enters via teleport.
        let g = GraphBuilder::from_edges(4, &[(0, 3), (1, 3), (2, 3)]);
        let r = solve_power(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Hub is the clear winner.
        assert!(r.scores[3] > r.scores[0]);
    }

    #[test]
    fn rejects_unnormalized_jump() {
        use spammass_graph::NodeId;
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let jump = JumpVector::scaled_core(vec![NodeId(0)], 0.5);
        match solve_power(&g, &jump, &cfg()) {
            Err(PageRankError::InvalidJumpVector(msg)) => {
                assert!(msg.contains("normalized jump vector"), "{msg}");
            }
            other => panic!("expected InvalidJumpVector, got {other:?}"),
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let r = solve_power(&g, &JumpVector::Uniform, &cfg()).unwrap();
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }
}
