//! Score views: scaling, ranking, and summary helpers.

use spammass_graph::NodeId;

/// A borrowed view over raw PageRank scores with the paper's scaling
/// conventions attached.
///
/// Throughout the paper, "numeric PageRank scores and absolute mass values
/// are scaled by `n/(1−c)` for increased readability. Accordingly, the
/// scaled PageRank score of a node without inlinks is 1." All thresholds
/// (ρ = 10, the ±scaled-mass axes of Figure 6) are quoted on that scale.
#[derive(Debug, Clone, Copy)]
pub struct PageRankScores<'a> {
    raw: &'a [f64],
    damping: f64,
}

impl<'a> PageRankScores<'a> {
    /// Wraps raw scores with the damping factor they were computed under.
    pub fn new(raw: &'a [f64], damping: f64) -> Self {
        PageRankScores { raw, damping }
    }

    /// Raw (solver-native) scores.
    pub fn raw(&self) -> &'a [f64] {
        self.raw
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether there are no scores.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The scale factor `n/(1−c)`.
    pub fn scale(&self) -> f64 {
        self.raw.len() as f64 / (1.0 - self.damping)
    }

    /// Raw score of one node.
    pub fn get(&self, x: NodeId) -> f64 {
        self.raw[x.index()]
    }

    /// Scaled score of one node (no-inlink node ⇒ 1.0 under uniform jump).
    pub fn scaled(&self, x: NodeId) -> f64 {
        self.raw[x.index()] * self.scale()
    }

    /// All scores scaled by `n/(1−c)`.
    pub fn scaled_vec(&self) -> Vec<f64> {
        let s = self.scale();
        self.raw.iter().map(|&p| p * s).collect()
    }

    /// L1 norm `‖p‖` of the raw scores.
    pub fn norm_l1(&self) -> f64 {
        self.raw.iter().map(|p| p.abs()).sum()
    }

    /// The `k` highest-scoring nodes, descending (ties by ascending id).
    ///
    /// Uses [`f64::total_cmp`], so the ordering is total even if NaN scores
    /// slip in (NaN sorts above every number and therefore surfaces at the
    /// front of the ranking, where it is visible, instead of silently
    /// scrambling the comparator).
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut idx: Vec<usize> = (0..self.raw.len()).collect();
        idx.sort_by(|&a, &b| self.raw[b].total_cmp(&self.raw[a]).then(a.cmp(&b)));
        idx.into_iter().take(k).map(|i| (NodeId::from_index(i), self.raw[i])).collect()
    }

    /// Count of nodes whose **scaled** score is at least `threshold` — the
    /// size of the paper's candidate pool `T` for a given ρ.
    pub fn count_scaled_at_least(&self, threshold: f64) -> usize {
        let cutoff = threshold / self.scale();
        self.raw.iter().filter(|&&p| p >= cutoff).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_round_trip() {
        let raw: Vec<f64> = (0..12).map(|i| (i as f64 + 1.0) / 1000.0).collect();
        let s = PageRankScores::new(&raw, 0.85);
        assert!((s.scale() - 80.0).abs() < 1e-12);
        assert!((s.scaled(NodeId(0)) - raw[0] * 80.0).abs() < 1e-12);
        assert_eq!(s.scaled_vec().len(), 12);
    }

    #[test]
    fn top_k_is_total_under_nan() {
        // A NaN score must not scramble the ordering of the finite scores;
        // total_cmp sorts NaN first (most visible), finite scores after.
        let raw = vec![0.1, f64::NAN, 0.3, 0.2];
        let s = PageRankScores::new(&raw, 0.85);
        let top = s.top_k(4);
        assert!(top[0].1.is_nan());
        assert_eq!(top[1].0, NodeId(2));
        assert_eq!(top[2].0, NodeId(3));
        assert_eq!(top[3].0, NodeId(0));
    }

    #[test]
    fn top_k_sorted_desc() {
        let raw = vec![0.1, 0.5, 0.3, 0.5];
        let s = PageRankScores::new(&raw, 0.85);
        let top = s.top_k(3);
        assert_eq!(top[0].0, NodeId(1)); // tie broken by id
        assert_eq!(top[1].0, NodeId(3));
        assert_eq!(top[2].0, NodeId(2));
    }

    #[test]
    fn count_above_threshold() {
        // n = 4, c = 0.85 -> scale ~26.67; raw 0.5 -> scaled 13.3.
        let raw = vec![0.5, 0.1, 0.4, 0.01];
        let s = PageRankScores::new(&raw, 0.85);
        let n_big = s.count_scaled_at_least(10.0);
        assert_eq!(n_big, 2); // 0.5 and 0.4 scale above 10
    }

    #[test]
    fn norms_and_emptiness() {
        let raw = vec![0.25, 0.25];
        let s = PageRankScores::new(&raw, 0.85);
        assert!((s.norm_l1() - 0.5).abs() < 1e-12);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 2);
        let empty = PageRankScores::new(&[], 0.85);
        assert!(empty.is_empty());
    }
}
