//! Jacobi solver — Algorithm 1 of the paper, verbatim.
//!
//! ```text
//! input : transition matrix T, random jump vector v, damping factor c,
//!         error bound ε
//! output: PageRank score vector p
//!
//! i ← 0
//! p[0] ← v
//! repeat
//!     i ← i + 1
//!     p[i] ← c·Tᵀ·p[i−1] + (1 − c)·v
//! until ‖p[i] − p[i−1]‖ < ε
//! p ← p[i]
//! ```
//!
//! The sweep `c·Tᵀ·p` is implemented as an out-edge scatter: every
//! non-dangling node distributes `c·p[x]/out(x)` to each out-neighbour.
//! Dangling nodes contribute nothing — the defining property of *linear*
//! PageRank (their mass is deliberately lost rather than teleported).

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::jump::JumpVector;
use crate::PageRankResult;
use spammass_graph::Graph;
use spammass_obs as obs;

/// Applies one matrix–vector product `out ← c·Tᵀ·p` (out-edge scatter).
///
/// `out` must be zeroed (or pre-seeded with `(1−c)·v`) by the caller.
pub(crate) fn scatter_transition(graph: &Graph, damping: f64, p: &[f64], out: &mut [f64]) {
    for x in graph.nodes() {
        let nbrs = graph.out_neighbors(x);
        if nbrs.is_empty() {
            continue;
        }
        let share = damping * p[x.index()] / nbrs.len() as f64;
        for &y in nbrs {
            out[y.index()] += share;
        }
    }
}

/// L1 distance between two equal-length vectors.
pub(crate) fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Checks that a materialized jump vector matches the graph.
pub(crate) fn check_jump_length(v: &[f64], n: usize) -> Result<(), PageRankError> {
    if v.len() != n {
        return Err(PageRankError::JumpVectorLength { got: v.len(), expected: n });
    }
    Ok(())
}

/// Checks that a warm-start score vector matches the graph.
pub(crate) fn check_initial_length(p0: &[f64], n: usize) -> Result<(), PageRankError> {
    if p0.len() != n {
        return Err(PageRankError::InitialScoresLength { got: p0.len(), expected: n });
    }
    Ok(())
}

/// Solves `(I − c·Tᵀ)p = (1 − c)v` by Jacobi iteration.
///
/// # Errors
/// Returns a configuration/jump-vector error before iterating, and
/// [`PageRankError::DidNotConverge`], [`PageRankError::Diverged`], or
/// [`PageRankError::NumericalInstability`] if the iteration fails — see
/// [`SolverChain`](crate::SolverChain) for graceful fallback.
pub fn solve_jacobi(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let v = jump.materialize(graph.node_count())?;
    solve_jacobi_dense(graph, &v, config)
}

/// Jacobi iteration with an already-materialized jump vector.
///
/// # Errors
/// Same contract as [`solve_jacobi`].
pub fn solve_jacobi_dense(
    graph: &Graph,
    v: &[f64],
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    solve_jacobi_dense_warm(graph, v, None, config)
}

/// Jacobi iteration seeded with `initial` scores instead of `v` — the
/// warm-start entry point for incremental re-solves.
///
/// The linear system `(I − c·Tᵀ)p = (1 − c)v` has a unique fixed point
/// and the iteration is a c-contraction from **any** finite start, so a
/// warm start changes neither the answer nor the convergence guarantees
/// (the [`ConvergenceGuard`] semantics are identical); it only shortens
/// the path. Starting from the previous fixed point after a small graph
/// delta typically saves most of the sweeps. `None` is the cold start
/// `p[0] ← v`.
///
/// # Errors
/// Same contract as [`solve_jacobi`], plus
/// [`PageRankError::InitialScoresLength`] when `initial` does not match
/// the graph.
pub fn solve_jacobi_dense_warm(
    graph: &Graph,
    v: &[f64],
    initial: Option<&[f64]>,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    check_jump_length(v, n)?;
    let mut span = obs::span("pagerank.solve.jacobi");
    let c = config.damping;
    let one_minus_c = 1.0 - c;

    // p[0] ← v (cold) or the supplied previous fixed point (warm).
    let mut p: Vec<f64> = match initial {
        Some(p0) => {
            check_initial_length(p0, n)?;
            p0.to_vec()
        }
        None => v.to_vec(),
    };
    let mut p_next = vec![0.0f64; n];
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    let mut residual_history = ResidualHistory::new();
    let mut guard = ConvergenceGuard::new();

    while iterations < config.max_iterations {
        iterations += 1;
        // p[i] ← c·Tᵀ·p[i−1] + (1 − c)·v
        for (slot, &vy) in p_next.iter_mut().zip(v) {
            *slot = one_minus_c * vy;
        }
        scatter_transition(graph, c, &p, &mut p_next);
        residual = l1_distance(&p, &p_next);
        residual_history.push(residual);
        std::mem::swap(&mut p, &mut p_next);
        // Record the span metric even when the guard aborts the solve
        // (Diverged / NumericalInstability), so failed runs are sized in
        // telemetry too.
        if let Err(e) = guard.observe(iterations, residual) {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Err(e);
        }
        if residual < config.tolerance {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Ok(PageRankResult {
                scores: p,
                iterations,
                residual,
                converged: true,
                residual_history,
            });
        }
    }

    span.record("iterations", iterations as f64);
    obs::observe("pagerank.iterations", iterations as f64);
    Err(PageRankError::DidNotConverge { iterations, residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        PageRankConfig::default()
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let r = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        assert!(r.scores.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn single_isolated_node() {
        let g = GraphBuilder::new(1).build();
        let r = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        // p = (1-c)·v / (I) since no links: p = (1-c)·1 + c·0... iteration:
        // p[1] = (1-c)·1 = 0.15, fixed point of (I - cT^T)p = (1-c)v with T = 0.
        assert!((r.scores[0] - 0.15).abs() < 1e-10);
    }

    #[test]
    fn scaled_score_of_no_inlink_node_is_one() {
        // Paper convention: scaled score of a node without inlinks is 1.
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let r = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let scale = cfg().scale_factor(2);
        assert!((r.scores[0] * scale - 1.0).abs() < 1e-9);
        // Node 1 receives c * p0 / 1: scaled 1 + c.
        assert!((r.scores[1] * scale - 1.85).abs() < 1e-9);
    }

    #[test]
    fn figure1_closed_form() {
        // Figure 1: g0 -> x, g1 -> x, s0 -> x, s1..sk -> s0.
        // Paper: p_x = (1 + 3c + k·c²)(1−c)/n.
        for k in [1usize, 2, 5, 10] {
            let n = 4 + k;
            let mut b = GraphBuilder::new(n);
            use spammass_graph::NodeId;
            let (x, g0, g1, s0) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
            b.add_edge(g0, x);
            b.add_edge(g1, x);
            b.add_edge(s0, x);
            for i in 0..k {
                b.add_edge(NodeId(4 + i as u32), s0);
            }
            let g = b.build();
            let c = 0.85;
            let r = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
            let expected = (1.0 + 3.0 * c + k as f64 * c * c) * (1.0 - c) / n as f64;
            assert!(
                (r.scores[x.index()] - expected).abs() < 1e-9,
                "k={k}: got {}, want {expected}",
                r.scores[x.index()]
            );
        }
    }

    #[test]
    fn dangling_mass_is_lost_not_teleported() {
        // Linear PageRank: ‖p‖ < ‖v‖ when dangling nodes exist.
        let g = GraphBuilder::from_edges(2, &[(0, 1)]);
        let r = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let total: f64 = r.scores.iter().sum();
        assert!(total < 1.0 - 1e-6, "total {total} should be < 1");
    }

    #[test]
    fn norm_preserved_when_no_dangling() {
        // On a graph with no dangling nodes, ‖p‖ = ‖v‖.
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let total: f64 = r.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn iteration_cap_is_a_typed_error() {
        // Asymmetric graph: the uniform start vector is not the fixed point,
        // so the residual stays positive and the cap is hit.
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2)]);
        let tight = cfg().max_iterations(2).tolerance(1e-300);
        match solve_jacobi(&g, &JumpVector::Uniform, &tight) {
            Err(PageRankError::DidNotConverge { iterations: 2, residual }) => {
                assert!(residual.is_finite() && residual > 0.0);
            }
            other => panic!("expected DidNotConverge, got {other:?}"),
        }
    }

    #[test]
    fn nan_jump_vector_is_numerical_instability() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let v = vec![f64::NAN, 0.5, 0.25];
        match solve_jacobi_dense(&g, &v, &cfg()) {
            Err(PageRankError::NumericalInstability { iterations: 1, .. }) => {}
            other => panic!("expected NumericalInstability, got {other:?}"),
        }
    }

    #[test]
    fn overflowing_jump_vector_is_numerical_instability() {
        // Two f64::MAX contributions converging on node 2 overflow to ∞.
        let g = GraphBuilder::from_edges(3, &[(0, 2), (1, 2)]);
        let v = vec![f64::MAX, f64::MAX, f64::MAX];
        let err = solve_jacobi_dense(&g, &v, &cfg()).unwrap_err();
        assert!(matches!(err, PageRankError::NumericalInstability { .. }), "got {err:?}");
    }

    #[test]
    fn unnormalized_jump_scales_linearly() {
        // PR is linear in v: halving v halves p.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let full = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let half = JumpVector::Custom(vec![0.125; 4]);
        let r = solve_jacobi(&g, &half, &cfg()).unwrap();
        for i in 0..4 {
            assert!((r.scores[i] - full.scores[i] / 2.0).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_bad_config() {
        let g = GraphBuilder::new(1).build();
        let bad = PageRankConfig::with_damping(1.5);
        assert!(matches!(
            solve_jacobi(&g, &JumpVector::Uniform, &bad),
            Err(PageRankError::InvalidDamping(_))
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]);
        assert!(matches!(
            solve_jacobi_dense(&g, &[0.5, 0.5], &cfg()),
            Err(PageRankError::JumpVectorLength { got: 2, expected: 3 })
        ));
    }
}
