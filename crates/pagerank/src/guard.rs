//! In-loop convergence surveillance shared by every solver.
//!
//! Each solver feeds its per-iteration L1 residual into a
//! [`ConvergenceGuard`], which turns three pathological shapes into typed
//! errors instead of letting them spin to the iteration cap (or worse,
//! return a silently poisoned score vector):
//!
//! * a non-finite residual ⇒ [`PageRankError::NumericalInstability`] — the
//!   L1 residual sums every score delta, so a single NaN/∞ anywhere in the
//!   iterate surfaces here immediately;
//! * a residual that keeps growing ⇒ [`PageRankError::Diverged`];
//! * the iteration cap without convergence ⇒
//!   [`PageRankError::DidNotConverge`] (raised by the solver, not the
//!   guard, since only the solver knows the cap was the stopping reason).

use crate::error::PageRankError;
use spammass_obs as obs;

/// Consecutive residual increases tolerated before checking for divergence.
/// Jacobi/Gauss–Seidel residuals can wiggle for a few iterations on graphs
/// with strong cyclic structure, so a single uptick is not conclusive.
const MAX_GROWTH_STREAK: usize = 5;

/// A residual this many times larger than the first observed residual,
/// combined with a sustained growth streak, is declared divergence.
const DIVERGENCE_FACTOR: f64 = 10.0;

/// Tracks the residual sequence of one solve and reports pathologies.
#[derive(Debug, Clone, Default)]
pub(crate) struct ConvergenceGuard {
    first: Option<f64>,
    prev: Option<f64>,
    growth_streak: usize,
}

impl ConvergenceGuard {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Feeds the residual of iteration `iterations`; returns an error if the
    /// sequence is provably not converging.
    pub(crate) fn observe(
        &mut self,
        iterations: usize,
        residual: f64,
    ) -> Result<(), PageRankError> {
        // The guard sees every residual of every solver, so it is the one
        // place the *exhaustive* series reaches telemetry (the in-result
        // history is thinned; see `ResidualHistory`).
        obs::observe("pagerank.residual", residual);
        if !residual.is_finite() {
            return Err(PageRankError::NumericalInstability { iterations, residual });
        }
        let first = *self.first.get_or_insert(residual);
        if let Some(prev) = self.prev {
            if residual > prev {
                self.growth_streak += 1;
            } else {
                self.growth_streak = 0;
            }
        }
        self.prev = Some(residual);
        if self.growth_streak >= MAX_GROWTH_STREAK && residual > DIVERGENCE_FACTOR * first {
            return Err(PageRankError::Diverged { iterations, residual });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_contracting_sequence() {
        let mut g = ConvergenceGuard::new();
        let mut r = 1.0;
        for i in 1..=50 {
            assert!(g.observe(i, r).is_ok());
            r *= 0.85;
        }
    }

    #[test]
    fn tolerates_transient_wiggles() {
        let mut g = ConvergenceGuard::new();
        for (i, r) in [1.0, 0.8, 0.9, 0.7, 0.75, 0.5, 0.6, 0.4].iter().enumerate() {
            assert!(g.observe(i + 1, *r).is_ok(), "iteration {}", i + 1);
        }
    }

    #[test]
    fn flags_nan_residual() {
        let mut g = ConvergenceGuard::new();
        assert!(g.observe(1, 0.5).is_ok());
        match g.observe(2, f64::NAN) {
            Err(PageRankError::NumericalInstability { iterations: 2, residual }) => {
                assert!(residual.is_nan());
            }
            other => panic!("expected NumericalInstability, got {other:?}"),
        }
    }

    #[test]
    fn flags_infinite_residual() {
        let mut g = ConvergenceGuard::new();
        assert!(matches!(
            g.observe(1, f64::INFINITY),
            Err(PageRankError::NumericalInstability { iterations: 1, .. })
        ));
    }

    #[test]
    fn flags_sustained_growth() {
        let mut g = ConvergenceGuard::new();
        let mut r = 1.0;
        let mut failed_at = None;
        for i in 1..=20 {
            if let Err(e) = g.observe(i, r) {
                assert!(matches!(e, PageRankError::Diverged { .. }), "{e:?}");
                failed_at = Some(i);
                break;
            }
            r *= 2.0;
        }
        let at = failed_at.expect("doubling residuals must be flagged as divergence");
        // Needs the streak AND the 10x-over-initial factor.
        assert!(at >= 6, "flagged too eagerly at iteration {at}");
    }

    #[test]
    fn growth_below_threshold_is_not_divergence() {
        // Grows for many iterations but stays under 10x the initial value.
        let mut g = ConvergenceGuard::new();
        let mut r = 1.0;
        for i in 1..=30 {
            assert!(g.observe(i, r).is_ok(), "iteration {i}");
            r *= 1.05;
        }
    }
}
