//! Solver configuration.

use crate::kernel::KernelKind;

/// Parameters of a linear PageRank solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `c` — the probability of following a link rather than
    /// jumping. The paper uses `c = 0.85` throughout.
    pub damping: f64,
    /// Convergence tolerance `ε` on the L1 residual `‖p[i] − p[i−1]‖₁`.
    pub tolerance: f64,
    /// Iteration cap; the solve reports `converged = false` if reached.
    pub max_iterations: usize,
    /// Number of worker threads for the parallel solver (`0` = all cores).
    ///
    /// This is an upper bound: the pool auto-sizer
    /// ([`crate::parallel::pool_threads`]) also caps the count by problem
    /// size so small graphs never pay barrier overhead for idle workers.
    pub threads: usize,
    /// Minimum edges each worker should own before another worker is
    /// worth its barrier traffic (`0` = the built-in default,
    /// [`crate::parallel::DEFAULT_EDGES_PER_THREAD`]). Lower it to force
    /// multi-worker execution on small graphs (tests do).
    pub edges_per_thread: usize,
    /// Which gather kernel the pooled solvers run ([`KernelKind::Auto`]
    /// picks the unrolled one). `--kernel scalar` reproduces historical
    /// results; the kernels agree within re-association error (≤1e-12 on
    /// the solvers' comparisons) and bit-exactly on rows with fewer than
    /// four in-edges.
    pub kernel: KernelKind,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-12,
            max_iterations: 1_000,
            threads: 0,
            edges_per_thread: 0,
            kernel: KernelKind::Auto,
        }
    }
}

impl PageRankConfig {
    /// Config with the given damping factor, paper-style defaults otherwise.
    pub fn with_damping(damping: f64) -> Self {
        PageRankConfig { damping, ..Default::default() }
    }

    /// Sets the tolerance, builder-style.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Sets the iteration cap, builder-style.
    pub fn max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Sets the thread count, builder-style.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the per-worker edge quota used by the pool auto-sizer,
    /// builder-style (`0` = default).
    pub fn edges_per_thread(mut self, edges: usize) -> Self {
        self.edges_per_thread = edges;
        self
    }

    /// Sets the gather kernel, builder-style.
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Validates parameter ranges; call before a long solve to fail fast.
    pub fn validate(&self) -> Result<(), crate::PageRankError> {
        if !(0.0..1.0).contains(&self.damping) {
            return Err(crate::PageRankError::InvalidDamping(self.damping));
        }
        if !self.tolerance.is_finite() || self.tolerance <= 0.0 {
            return Err(crate::PageRankError::InvalidTolerance(self.tolerance));
        }
        if self.max_iterations == 0 {
            return Err(crate::PageRankError::InvalidIterationCap);
        }
        Ok(())
    }

    /// The scaling constant `n/(1−c)` that maps raw scores to the paper's
    /// human-readable scale where a node without inlinks scores 1.
    pub fn scale_factor(&self, node_count: usize) -> f64 {
        node_count as f64 / (1.0 - self.damping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PageRankConfig::default();
        assert_eq!(c.damping, 0.85);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_methods() {
        let c = PageRankConfig::with_damping(0.5)
            .tolerance(1e-6)
            .max_iterations(10)
            .threads(2)
            .kernel(KernelKind::Scalar);
        assert_eq!(c.damping, 0.5);
        assert_eq!(c.tolerance, 1e-6);
        assert_eq!(c.max_iterations, 10);
        assert_eq!(c.threads, 2);
        assert_eq!(c.kernel, KernelKind::Scalar);
    }

    #[test]
    fn validate_rejects_bad_params() {
        assert!(PageRankConfig::with_damping(1.0).validate().is_err());
        assert!(PageRankConfig::with_damping(-0.1).validate().is_err());
        assert!(PageRankConfig::default().tolerance(0.0).validate().is_err());
        assert!(PageRankConfig::default().tolerance(f64::NAN).validate().is_err());
        assert!(PageRankConfig::default().max_iterations(0).validate().is_err());
    }

    #[test]
    fn scale_factor_formula() {
        let c = PageRankConfig::default();
        // n / (1 - c) with n = 12, c = 0.85 -> 80.
        assert!((c.scale_factor(12) - 80.0).abs() < 1e-9);
    }
}
