//! Bounded residual history with deterministic downsampling.
//!
//! Every solver records its per-iteration L1 residual so callers can
//! inspect convergence behavior. Storing the raw series is `O(cap)` in the
//! iteration cap — harmless at the default 1 000 iterations, but an
//! unbounded allocation when a caller cranks the cap for a hard instance
//! (the power-iteration cross-validation runs were the first to hit this).
//!
//! [`ResidualHistory`] bounds the memory at a fixed sample budget using
//! **stride doubling**: residuals are kept at iterations
//! `1, 1+s, 1+2s, …`; when the budget fills, every other retained sample
//! is dropped and the stride doubles. The result is a deterministic,
//! roughly uniform thinning of the series (a reservoir with predictable
//! rather than random victims), always ≤ the budget, that still spans the
//! whole solve. The final residual is tracked separately so it is never
//! lost to thinning. The *full* series remains available through the
//! telemetry histogram (`pagerank.residual`) fed by the convergence guard.

/// Default retained-sample budget. 256 points profile a million-iteration
/// solve at ~4 KiB while leaving typical (converging) solves exhaustive.
const DEFAULT_CAP: usize = 256;

/// A bounded per-iteration residual series.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualHistory {
    /// Retained `(iteration, residual)` samples; iterations are 1-based.
    samples: Vec<(usize, f64)>,
    /// Current sampling stride: residuals at iterations `≡ 1 (mod stride)`
    /// are retained.
    stride: usize,
    /// Total residuals observed (the solve's iteration count so far).
    observed: usize,
    /// The most recent observation, kept regardless of the stride.
    last: Option<(usize, f64)>,
    cap: usize,
}

impl Default for ResidualHistory {
    fn default() -> Self {
        Self::new()
    }
}

impl ResidualHistory {
    /// An empty history with the default sample budget.
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_CAP)
    }

    /// An empty history retaining at most `budget` samples (minimum 2:
    /// one retained sample plus the separately-tracked last).
    pub fn with_budget(budget: usize) -> Self {
        // Reserve the full budget up front (≤ ~4 KiB at the default cap):
        // thinning keeps `samples.len() < cap`, so `push` never
        // reallocates and the solver iteration loops stay allocation-free.
        ResidualHistory {
            samples: Vec::with_capacity(budget.max(2)),
            stride: 1,
            observed: 0,
            last: None,
            cap: budget.max(2),
        }
    }

    /// Records the residual of the next iteration.
    pub fn push(&mut self, residual: f64) {
        self.observed += 1;
        let iteration = self.observed;
        self.last = Some((iteration, residual));
        if (iteration - 1).is_multiple_of(self.stride) {
            self.samples.push((iteration, residual));
            if self.samples.len() >= self.cap {
                // Budget full: thin to every other sample, double the
                // stride. Survivors stay `≡ 1 (mod stride)` so future
                // pushes extend the same lattice.
                let mut i = 0usize;
                self.samples.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
        }
    }

    /// Total iterations observed (not the retained count).
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Whether no residual has been recorded.
    pub fn is_empty(&self) -> bool {
        self.observed == 0
    }

    /// Current sampling stride (1 while the series is exhaustive).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Whether thinning has occurred (the series is no longer exhaustive).
    pub fn is_decimated(&self) -> bool {
        self.stride > 1
    }

    /// The most recent residual.
    pub fn last(&self) -> Option<f64> {
        self.last.map(|(_, r)| r)
    }

    /// The retained `(iteration, residual)` samples, ascending by
    /// iteration. May omit the final iteration; see [`Self::series`].
    pub fn samples(&self) -> &[(usize, f64)] {
        &self.samples
    }

    /// The retained samples with the final observation appended when
    /// thinning dropped it — the series to plot or report.
    pub fn series(&self) -> Vec<(usize, f64)> {
        let mut out = self.samples.clone();
        if let Some(last) = self.last {
            if out.last().map(|&(i, _)| i < last.0).unwrap_or(true) {
                out.push(last);
            }
        }
        out
    }

    /// Estimated geometric per-iteration convergence rate: the mean of
    /// `(r₂/r₁)^(1/(i₂−i₁))` over the last few sample pairs (`≈ c` for
    /// Jacobi, smaller for Gauss–Seidel). Stride-aware, so thinning does
    /// not bias the estimate. `None` with fewer than three observations.
    pub fn convergence_rate(&self) -> Option<f64> {
        if self.observed < 3 {
            return None;
        }
        let series = self.series();
        let tail = &series[series.len().saturating_sub(6)..];
        let ratios: Vec<f64> = tail
            .windows(2)
            .filter(|w| w[0].1 > 0.0 && w[1].1 > 0.0 && w[1].0 > w[0].0)
            .map(|w| (w[1].1 / w[0].1).powf(1.0 / (w[1].0 - w[0].0) as f64))
            .collect();
        if ratios.is_empty() {
            return None;
        }
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_below_budget() {
        let mut h = ResidualHistory::with_budget(16);
        for i in 1..=10 {
            h.push(1.0 / i as f64);
        }
        assert!(!h.is_decimated());
        assert_eq!(h.observed(), 10);
        assert_eq!(h.samples().len(), 10);
        assert_eq!(h.samples()[0], (1, 1.0));
        assert_eq!(h.last(), Some(0.1));
        assert_eq!(h.series().len(), 10);
    }

    #[test]
    fn thinning_bounds_memory_and_doubles_stride() {
        let mut h = ResidualHistory::with_budget(8);
        for i in 1..=1000 {
            h.push(1000.0 - i as f64);
        }
        assert!(h.is_decimated());
        assert_eq!(h.observed(), 1000);
        assert!(h.samples().len() < 8, "{}", h.samples().len());
        // Stride is a power of two and samples sit on the lattice.
        assert!(h.stride().is_power_of_two() && h.stride() > 1);
        for &(i, _) in h.samples() {
            assert_eq!((i - 1) % h.stride(), 0, "iteration {i} off stride {}", h.stride());
        }
        // Samples remain ascending and span the solve.
        let iters: Vec<usize> = h.samples().iter().map(|&(i, _)| i).collect();
        assert!(iters.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(iters[0], 1);
        // The final residual survives thinning via the series view.
        let series = h.series();
        assert_eq!(series.last().unwrap(), &(1000, 0.0));
    }

    #[test]
    fn budget_is_clamped_to_two() {
        let mut h = ResidualHistory::with_budget(0);
        for _ in 0..100 {
            h.push(1.0);
        }
        assert!(h.samples().len() <= 2);
        assert_eq!(h.observed(), 100);
    }

    #[test]
    fn convergence_rate_matches_geometric_decay() {
        // r_i = 0.85^i: the per-iteration rate must come out ≈ 0.85, with
        // and without thinning.
        for budget in [1024, 8] {
            let mut h = ResidualHistory::with_budget(budget);
            let mut r = 1.0;
            for _ in 0..600 {
                r *= 0.85;
                // Guard against denormal underflow skewing the tail.
                if r < 1e-300 {
                    break;
                }
                h.push(r);
            }
            let rate = h.convergence_rate().unwrap();
            assert!((rate - 0.85).abs() < 1e-6, "budget {budget}: rate {rate}");
        }
    }

    #[test]
    fn convergence_rate_needs_three_observations() {
        let mut h = ResidualHistory::new();
        assert_eq!(h.convergence_rate(), None);
        h.push(1.0);
        h.push(0.5);
        assert_eq!(h.convergence_rate(), None);
        h.push(0.25);
        assert!(h.convergence_rate().is_some());
    }
}
