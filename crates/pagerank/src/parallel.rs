//! Parallel Jacobi solver (fused gather kernel on a persistent pool).
//!
//! The Yahoo! experiments ran PageRank twice over a 979M-edge host graph;
//! at that scale the matrix–vector product dominates, so every sweep-level
//! inefficiency multiplies by hundreds of iterations. The hot path here is
//! built from three pieces:
//!
//! * a **persistent worker pool** ([`crate::pool`]) spawned once per solve
//!   and advanced by barrier handoff, replacing the previous
//!   2×spawn/join-per-sweep pattern;
//! * **edge-balanced partitioning** ([`crate::partition`]) of the
//!   destination range by in-edge counts, so power-law skew does not leave
//!   most workers idling at the barrier behind the hub chunk;
//! * a **fused gather kernel**: `coef[x] = c/out(x)` is precomputed once
//!   and shares are formed on the fly (`acc += p[x]·coef[x]`) inside the
//!   gather, eliminating the full `shares` vector, its ~n·8 bytes of
//!   per-sweep write traffic, and the barrier between the two passes.
//!
//! Two score buffers alternate roles by round parity (round `r` reads
//! buffer `r mod 2`, writes buffer `(r+1) mod 2`), each destination is
//! written by exactly one worker, and per-chunk residual contributions are
//! reduced in fixed index order by the control step — so results stay
//! bit-for-bit deterministic for a fixed partition, independent of thread
//! scheduling.
//!
//! The previous two-pass implementation is retained as
//! [`solve_parallel_jacobi_two_pass`] purely as a benchmark baseline.

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::jacobi::check_jump_length;
use crate::jump::JumpVector;
use crate::partition::NodePartition;
use crate::pool::{self, SharedSlice};
use crate::PageRankResult;
use spammass_graph::{Graph, NodeId};
use spammass_obs as obs;
use std::ops::ControlFlow;

/// Minimum nodes per chunk; below this the serial path is used.
const MIN_CHUNK: usize = 16 * 1024;

/// Solves `(I − c·Tᵀ)p = (1 − c)v` with thread-parallel Jacobi sweeps.
///
/// Falls back to the serial Jacobi solver for graphs smaller than one
/// chunk, so it is safe to call unconditionally.
///
/// # Errors
/// Same contract as [`solve_jacobi`](crate::jacobi::solve_jacobi).
pub fn solve_parallel_jacobi(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let v = jump.materialize(graph.node_count())?;
    solve_parallel_jacobi_dense(graph, &v, config)
}

/// Parallel Jacobi with an already-materialized jump vector.
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`].
pub fn solve_parallel_jacobi_dense(
    graph: &Graph,
    v: &[f64],
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    solve_parallel_jacobi_dense_warm(graph, v, None, config)
}

/// Parallel Jacobi seeded with `initial` scores instead of `v` — the
/// warm-start entry point (see
/// [`solve_jacobi_dense_warm`](crate::jacobi::solve_jacobi_dense_warm)
/// for why warm starts are safe). The serial fallback for small graphs
/// passes the warm start through unchanged.
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`], plus
/// [`PageRankError::InitialScoresLength`] when `initial` does not match
/// the graph.
pub fn solve_parallel_jacobi_dense_warm(
    graph: &Graph,
    v: &[f64],
    initial: Option<&[f64]>,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    check_jump_length(v, n)?;
    if let Some(p0) = initial {
        crate::jacobi::check_initial_length(p0, n)?;
    }

    let threads = effective_threads(config.threads, n);
    if threads <= 1 {
        return crate::jacobi::solve_jacobi_dense_warm(graph, v, initial, config);
    }

    let mut span = obs::span("pagerank.solve.parallel");
    span.record("threads", threads as f64);
    let c = config.damping;
    let one_minus_c = 1.0 - c;

    // All solve-lifetime state is allocated up front; the iteration loop
    // itself is allocation-free (see tests/alloc.rs).
    let partition = NodePartition::edge_balanced(graph, threads);
    let coef: Vec<f64> = graph
        .nodes()
        .map(|x| {
            let d = graph.out_degree(x);
            if d == 0 {
                0.0
            } else {
                c / d as f64
            }
        })
        .collect();

    let mut front: Vec<f64> = match initial {
        Some(p0) => p0.to_vec(),
        None => v.to_vec(),
    };
    let mut back = vec![0.0f64; n];
    let mut chunk_deltas = vec![0.0f64; threads];

    let mut residual_history = ResidualHistory::new();
    let mut guard = ConvergenceGuard::new();
    let mut completed = 0usize;

    let outcome: Result<f64, PageRankError> = {
        let bufs = [SharedSlice::new(&mut front), SharedSlice::new(&mut back)];
        let deltas = SharedSlice::new(&mut chunk_deltas);
        let partition = &partition;
        let coef = &coef[..];

        let kernel = |round: usize, worker: usize| {
            let range = partition.range(worker);
            // SAFETY: the buffers alternate roles by round parity — every
            // worker reads bufs[round % 2] and writes only its own
            // partition range of bufs[(round+1) % 2]; ranges are pairwise
            // disjoint and the pool's barriers order rounds, so no
            // location is read while written.
            let read = unsafe { bufs[round % 2].as_slice() };
            let write = unsafe { bufs[(round + 1) % 2].range_mut(range.start, range.end) };
            let mut local_delta = 0.0f64;
            for (slot, y) in write.iter_mut().zip(range.clone()) {
                let mut acc = one_minus_c * v[y];
                for x in graph.in_neighbors(NodeId(y as u32)) {
                    acc += read[x.index()] * coef[x.index()];
                }
                local_delta += (acc - read[y]).abs();
                *slot = acc;
            }
            // SAFETY: slot `worker` is written only by this worker.
            let slot = unsafe { deltas.range_mut(worker, worker + 1) };
            slot[0] = local_delta;
        };

        let control = |round: usize| -> ControlFlow<Result<f64, PageRankError>> {
            let iterations = round + 1;
            completed = iterations;
            // Per-chunk contributions summed in index order: the f64
            // reduction (and therefore convergence) is independent of
            // thread scheduling.
            // SAFETY: control runs between rounds; no worker is active.
            let residual: f64 = unsafe { deltas.as_slice() }.iter().sum();
            residual_history.push(residual);
            if let Err(e) = guard.observe(iterations, residual) {
                return ControlFlow::Break(Err(e));
            }
            if residual < config.tolerance {
                return ControlFlow::Break(Ok(residual));
            }
            if iterations >= config.max_iterations {
                return ControlFlow::Break(Err(PageRankError::DidNotConverge {
                    iterations,
                    residual,
                }));
            }
            ControlFlow::Continue(())
        };

        pool::run_rounds(threads, kernel, control)
    };

    // Telemetry on every exit path, including guard errors.
    span.record("iterations", completed as f64);
    obs::observe("pagerank.iterations", completed as f64);

    let residual = outcome?;
    // Round r writes bufs[(r+1) % 2], so after `completed` rounds the
    // newest iterate lives in bufs[completed % 2].
    let scores = if completed.is_multiple_of(2) { front } else { back };
    Ok(PageRankResult {
        scores,
        iterations: completed,
        residual,
        converged: true,
        residual_history,
    })
}

/// The pre-pool two-pass kernel (spawns scoped threads twice per sweep
/// and materializes the full `shares` vector), kept **only** as the
/// benchmark baseline for the fused pooled kernel above. New callers
/// should use [`solve_parallel_jacobi`].
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`].
pub fn solve_parallel_jacobi_two_pass(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    let v = jump.materialize(n)?;

    let threads = effective_threads(config.threads, n);
    if threads <= 1 {
        return crate::jacobi::solve_jacobi_dense(graph, &v, config);
    }

    let mut span = obs::span("pagerank.solve.parallel_two_pass");
    let c = config.damping;
    let one_minus_c = 1.0 - c;
    let chunk = n.div_ceil(threads);

    let inv_out: Vec<f64> = graph
        .nodes()
        .map(|x| {
            let d = graph.out_degree(x);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();

    let mut p: Vec<f64> = v.to_vec();
    let mut p_next = vec![0.0f64; n];
    let mut shares = vec![0.0f64; n];
    let mut chunk_deltas = vec![0.0f64; n.div_ceil(chunk)];
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    let mut residual_history = ResidualHistory::new();
    let mut guard = ConvergenceGuard::new();

    while iterations < config.max_iterations {
        iterations += 1;

        // Pass 1: shares s[x] = c·p[x]/out(x).
        std::thread::scope(|scope| {
            for ((ss, xs), ios) in
                shares.chunks_mut(chunk).zip(p.chunks(chunk)).zip(inv_out.chunks(chunk))
            {
                scope.spawn(move || {
                    for (s, (&px, &io)) in ss.iter_mut().zip(xs.iter().zip(ios)) {
                        *s = c * px * io;
                    }
                });
            }
        });

        // Pass 2: gather into disjoint chunks of destinations.
        {
            let shares_ref = &shares;
            let p_ref = &p;
            let v_ref = &v;
            std::thread::scope(|scope| {
                let mut start = 0usize;
                for (out_chunk, delta_slot) in p_next.chunks_mut(chunk).zip(chunk_deltas.iter_mut())
                {
                    let lo = start;
                    start += out_chunk.len();
                    scope.spawn(move || {
                        let mut local_delta = 0.0f64;
                        for (offset, slot) in out_chunk.iter_mut().enumerate() {
                            let y = lo + offset;
                            let mut acc = one_minus_c * v_ref[y];
                            for x in graph.in_neighbors(NodeId(y as u32)) {
                                acc += shares_ref[x.index()];
                            }
                            local_delta += (acc - p_ref[y]).abs();
                            *slot = acc;
                        }
                        *delta_slot = local_delta;
                    });
                }
            });
        }

        residual = chunk_deltas.iter().sum();
        residual_history.push(residual);
        std::mem::swap(&mut p, &mut p_next);
        if let Err(e) = guard.observe(iterations, residual) {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Err(e);
        }
        if residual < config.tolerance {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Ok(PageRankResult {
                scores: p,
                iterations,
                residual,
                converged: true,
                residual_history,
            });
        }
    }

    span.record("iterations", iterations as f64);
    obs::observe("pagerank.iterations", iterations as f64);
    Err(PageRankError::DidNotConverge { iterations, residual })
}

pub(crate) fn effective_threads(configured: usize, n: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let t = if configured == 0 { hw } else { configured };
    // Cap so every thread gets at least MIN_CHUNK nodes.
    t.min(n.div_ceil(MIN_CHUNK)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::solve_jacobi;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        PageRankConfig::default()
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> spammass_graph::Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(n, m);
        for _ in 0..m {
            let f = rng.gen_range(0..n as u32);
            let t = rng.gen_range(0..n as u32);
            if f != t {
                b.add_edge(spammass_graph::NodeId(f), spammass_graph::NodeId(t));
            }
        }
        b.build()
    }

    #[test]
    fn small_graph_falls_back_to_serial() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn matches_serial_on_large_random_graph() {
        // Big enough to engage at least 2 chunks.
        let g = random_graph(40_000, 200_000, 7);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        for i in 0..g.node_count() {
            assert!(
                (a.scores[i] - b.scores[i]).abs() < 1e-12,
                "node {i}: {} vs {}",
                a.scores[i],
                b.scores[i]
            );
        }
        // Same tolerance, same iteration structure: counts may differ by
        // at most one sweep from rounding of the residual reduction.
        assert!(a.iterations.abs_diff(b.iterations) <= 1, "{} vs {}", a.iterations, b.iterations);
    }

    #[test]
    fn matches_two_pass_baseline() {
        let g = random_graph(40_000, 200_000, 17);
        let a =
            solve_parallel_jacobi_two_pass(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        for i in 0..g.node_count() {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-12, "node {i}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = random_graph(40_000, 120_000, 11);
        let r1 = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        let r2 = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        assert_eq!(r1.scores, r2.scores);
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.residual, r2.residual);
    }

    #[test]
    fn iteration_cap_is_a_typed_error() {
        let g = random_graph(40_000, 120_000, 13);
        let tight = cfg().threads(2).max_iterations(2).tolerance(1e-300);
        assert!(matches!(
            solve_parallel_jacobi(&g, &JumpVector::Uniform, &tight),
            Err(PageRankError::DidNotConverge { iterations: 2, .. })
        ));
    }

    #[test]
    fn returns_the_newest_buffer_for_any_iteration_parity() {
        // A stale-by-one-sweep result differs from the true iterate by
        // roughly the tolerance, far above the 1e-10 bound here — so a
        // parity bug in the double-buffer bookkeeping would fail this for
        // whichever tolerances land on odd vs even iteration counts.
        let g = random_graph(40_000, 120_000, 23);
        let mut parities = [false, false];
        for tol in [1e-3, 1e-4, 1e-5, 1e-6, 1e-7] {
            let r =
                solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(2).tolerance(tol))
                    .unwrap();
            let s = solve_jacobi(&g, &JumpVector::Uniform, &cfg().tolerance(tol)).unwrap();
            parities[r.iterations % 2] = true;
            for i in 0..g.node_count() {
                assert!(
                    (r.scores[i] - s.scores[i]).abs() < 1e-10,
                    "tol {tol} node {i}: {} vs {}",
                    r.scores[i],
                    s.scores[i]
                );
            }
        }
        // Five ~14-iteration-apart counts essentially always hit both
        // parities; if this ever flakes, add a tolerance step.
        assert!(parities[0] || parities[1]);
    }

    #[test]
    fn effective_thread_computation() {
        assert_eq!(effective_threads(4, 100), 1); // tiny graph -> serial
        assert_eq!(effective_threads(4, 64 * 1024), 4);
        assert!(effective_threads(0, 1 << 20) >= 1);
    }
}
