//! Parallel Jacobi solver.
//!
//! The Yahoo! experiments ran PageRank twice over a 979M-edge host graph;
//! at that scale the matrix–vector product dominates. This solver
//! parallelizes each Jacobi sweep with `std::thread::scope`:
//!
//! 1. a parallel pass computes per-node shares `s[x] = c·p[x]/out(x)`;
//! 2. a parallel **gather** pass computes
//!    `p′[y] = (1−c)·v[y] + Σ_{x∈in(y)} s[x]` over disjoint chunks of
//!    destination nodes (gather instead of scatter ⇒ no write contention,
//!    no atomics).
//!
//! Results are bit-for-bit deterministic for a fixed chunking because each
//! `p′[y]` is accumulated by exactly one thread in a fixed order.

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::jacobi::check_jump_length;
use crate::jump::JumpVector;
use crate::PageRankResult;
use spammass_graph::Graph;
use spammass_obs as obs;

/// Minimum nodes per chunk; below this the serial path is used.
const MIN_CHUNK: usize = 16 * 1024;

/// Solves `(I − c·Tᵀ)p = (1 − c)v` with thread-parallel Jacobi sweeps.
///
/// Falls back to the serial Jacobi solver for graphs smaller than one
/// chunk, so it is safe to call unconditionally.
///
/// # Errors
/// Same contract as [`solve_jacobi`](crate::jacobi::solve_jacobi).
pub fn solve_parallel_jacobi(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let v = jump.materialize(graph.node_count())?;
    solve_parallel_jacobi_dense(graph, &v, config)
}

/// Parallel Jacobi with an already-materialized jump vector.
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`].
pub fn solve_parallel_jacobi_dense(
    graph: &Graph,
    v: &[f64],
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    check_jump_length(v, n)?;

    let threads = effective_threads(config.threads, n);
    if threads <= 1 {
        return crate::jacobi::solve_jacobi_dense(graph, v, config);
    }

    let mut span = obs::span("pagerank.solve.parallel");
    let c = config.damping;
    let one_minus_c = 1.0 - c;
    let chunk = n.div_ceil(threads);

    let inv_out: Vec<f64> = graph
        .nodes()
        .map(|x| {
            let d = graph.out_degree(x);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();

    let mut p: Vec<f64> = v.to_vec();
    let mut p_next = vec![0.0f64; n];
    let mut shares = vec![0.0f64; n];
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    let mut residual_history = ResidualHistory::new();
    let mut guard = ConvergenceGuard::new();

    while iterations < config.max_iterations {
        iterations += 1;

        // Pass 1: shares s[x] = c·p[x]/out(x) (embarrassingly parallel;
        // equal-size chunks keep the three slices aligned).
        std::thread::scope(|scope| {
            for ((ss, xs), ios) in
                shares.chunks_mut(chunk).zip(p.chunks(chunk)).zip(inv_out.chunks(chunk))
            {
                scope.spawn(move || {
                    for (s, (&px, &io)) in ss.iter_mut().zip(xs.iter().zip(ios)) {
                        *s = c * px * io;
                    }
                });
            }
        });

        // Pass 2: gather into disjoint chunks of destinations. Each chunk
        // writes its residual contribution into its own slot; the slots
        // are summed in index order afterwards so the f64 reduction (and
        // therefore convergence) is independent of thread scheduling.
        let mut chunk_deltas = vec![0.0f64; n.div_ceil(chunk)];
        {
            let shares_ref = &shares;
            let p_ref = &p;
            std::thread::scope(|scope| {
                let mut start = 0usize;
                for (out_chunk, delta_slot) in p_next.chunks_mut(chunk).zip(chunk_deltas.iter_mut())
                {
                    let lo = start;
                    start += out_chunk.len();
                    scope.spawn(move || {
                        let mut local_delta = 0.0f64;
                        for (offset, slot) in out_chunk.iter_mut().enumerate() {
                            let y = lo + offset;
                            let mut acc = one_minus_c * v[y];
                            for x in graph.in_neighbors(spammass_graph::NodeId(y as u32)) {
                                acc += shares_ref[x.index()];
                            }
                            local_delta += (acc - p_ref[y]).abs();
                            *slot = acc;
                        }
                        *delta_slot = local_delta;
                    });
                }
            });
        }

        residual = chunk_deltas.iter().sum();
        residual_history.push(residual);
        std::mem::swap(&mut p, &mut p_next);
        guard.observe(iterations, residual)?;
        if residual < config.tolerance {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Ok(PageRankResult {
                scores: p,
                iterations,
                residual,
                converged: true,
                residual_history,
            });
        }
    }

    span.record("iterations", iterations as f64);
    obs::observe("pagerank.iterations", iterations as f64);
    Err(PageRankError::DidNotConverge { iterations, residual })
}

fn effective_threads(configured: usize, n: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let t = if configured == 0 { hw } else { configured };
    // Cap so every thread gets at least MIN_CHUNK nodes.
    t.min(n.div_ceil(MIN_CHUNK)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::solve_jacobi;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        PageRankConfig::default()
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> spammass_graph::Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(n, m);
        for _ in 0..m {
            let f = rng.gen_range(0..n as u32);
            let t = rng.gen_range(0..n as u32);
            if f != t {
                b.add_edge(spammass_graph::NodeId(f), spammass_graph::NodeId(t));
            }
        }
        b.build()
    }

    #[test]
    fn small_graph_falls_back_to_serial() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn matches_serial_on_large_random_graph() {
        // Big enough to engage at least 2 chunks.
        let g = random_graph(40_000, 200_000, 7);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        assert_eq!(a.iterations, b.iterations);
        for i in 0..g.node_count() {
            assert!(
                (a.scores[i] - b.scores[i]).abs() < 1e-12,
                "node {i}: {} vs {}",
                a.scores[i],
                b.scores[i]
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = random_graph(40_000, 120_000, 11);
        let r1 = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        let r2 = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        assert_eq!(r1.scores, r2.scores);
    }

    #[test]
    fn iteration_cap_is_a_typed_error() {
        let g = random_graph(40_000, 120_000, 13);
        let tight = cfg().threads(2).max_iterations(2).tolerance(1e-300);
        assert!(matches!(
            solve_parallel_jacobi(&g, &JumpVector::Uniform, &tight),
            Err(PageRankError::DidNotConverge { iterations: 2, .. })
        ));
    }

    #[test]
    fn effective_thread_computation() {
        assert_eq!(effective_threads(4, 100), 1); // tiny graph -> serial
        assert_eq!(effective_threads(4, 64 * 1024), 4);
        assert!(effective_threads(0, 1 << 20) >= 1);
    }
}
