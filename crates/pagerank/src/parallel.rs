//! Parallel Jacobi solver: path selection and sizing for the pooled
//! edge-parallel engine.
//!
//! The Yahoo! experiments ran PageRank twice over a 979M-edge host
//! graph; at that scale the matrix–vector product dominates, so every
//! sweep-level inefficiency multiplies by hundreds of iterations. The
//! hot path lives in [`crate::engine`] (edge-range partitioning,
//! per-worker accumulators, a single handoff per sweep, dispatched
//! gather kernels); this module decides **how** to run a solve and owns
//! the auto-sizer:
//!
//! * [`pool_threads`] — the pure sizing rule: configured threads capped
//!   by a node floor and a **sweep-scaled edge quota**. A worker is
//!   worth spawning when the edges it relieves the others of outweigh
//!   its per-sweep handoff cost, so the quota shrinks as the expected
//!   sweep count grows ([`estimated_sweeps`], from the tolerance and
//!   damping factor) — a deep solve amortizes thread setup over many
//!   more sweeps than a shallow one.
//! * the **serial cutoff**: a solve sized to one worker on a small graph
//!   routes to the serial scatter solver outright
//!   ([`SERIAL_CUTOFF_EDGES`]); the pooled gather engine only wins once
//!   the working set outgrows cache.
//! * every decision is recorded as a `pagerank.pool.sizing` event
//!   (nodes, edges, quota, sweep hint, kernel, chosen path) so a solve
//!   that silently serialized is one grep away.
//!
//! The previous two-pass implementation is retained as
//! [`solve_parallel_jacobi_two_pass`] purely as a benchmark baseline.

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::jacobi::check_jump_length;
use crate::jump::JumpVector;
use crate::PageRankResult;
use spammass_graph::{Graph, NodeId};
use spammass_obs as obs;

/// Minimum nodes per worker; the node-count floor of the auto-sizer.
const MIN_CHUNK: usize = 16 * 1024;

/// Solves `(I − c·Tᵀ)p = (1 − c)v` with thread-parallel Jacobi sweeps.
///
/// Falls back to the serial Jacobi solver for graphs below the sizing
/// thresholds, so it is safe to call unconditionally.
///
/// # Errors
/// Same contract as [`solve_jacobi`](crate::jacobi::solve_jacobi).
pub fn solve_parallel_jacobi(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let v = jump.materialize(graph.node_count())?;
    solve_parallel_jacobi_dense(graph, &v, config)
}

/// Parallel Jacobi with an already-materialized jump vector.
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`].
pub fn solve_parallel_jacobi_dense(
    graph: &Graph,
    v: &[f64],
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    solve_parallel_jacobi_dense_warm(graph, v, None, config)
}

/// Parallel Jacobi seeded with `initial` scores instead of `v` — the
/// warm-start entry point (see
/// [`solve_jacobi_dense_warm`](crate::jacobi::solve_jacobi_dense_warm)
/// for why warm starts are safe). The serial fallback for small graphs
/// passes the warm start through unchanged.
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`], plus
/// [`PageRankError::InitialScoresLength`] when `initial` does not match
/// the graph.
pub fn solve_parallel_jacobi_dense_warm(
    graph: &Graph,
    v: &[f64],
    initial: Option<&[f64]>,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    check_jump_length(v, n)?;
    if let Some(p0) = initial {
        crate::jacobi::check_initial_length(p0, n)?;
    }

    let path = solve_path(config, graph);
    if path.serial {
        // Sub-threshold problem: the serial scatter solver wins outright.
        return crate::jacobi::solve_jacobi_dense_warm(graph, v, initial, config);
    }
    // Note: threads == 1 with a large graph still runs the pooled gather
    // engine — `pool::run_rounds(1, …)` executes inline with no worker
    // spawns, and the gather accumulation order stays bit-identical to
    // the multi-worker and batched solvers.
    let mut results = crate::engine::solve_pooled::<1>(
        graph,
        [v],
        initial.map(|p0| [p0]),
        config,
        path.threads,
        "pagerank.solve.parallel",
    )?;
    Ok(results.remove(0))
}

/// The pre-pool two-pass kernel (spawns scoped threads twice per sweep
/// and materializes the full `shares` vector), kept **only** as the
/// benchmark baseline for the pooled engine. New callers should use
/// [`solve_parallel_jacobi`].
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`].
pub fn solve_parallel_jacobi_two_pass(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    let v = jump.materialize(n)?;

    let threads = solve_path(config, graph).threads;
    if threads <= 1 {
        return crate::jacobi::solve_jacobi_dense(graph, &v, config);
    }

    let mut span = obs::span("pagerank.solve.parallel_two_pass");
    let c = config.damping;
    let one_minus_c = 1.0 - c;
    let chunk = n.div_ceil(threads);

    let inv_out: Vec<f64> = graph
        .nodes()
        .map(|x| {
            let d = graph.out_degree(x);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();

    let mut p: Vec<f64> = v.to_vec();
    let mut p_next = vec![0.0f64; n];
    let mut shares = vec![0.0f64; n];
    let mut chunk_deltas = vec![0.0f64; n.div_ceil(chunk)];
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    let mut residual_history = ResidualHistory::new();
    let mut guard = ConvergenceGuard::new();

    while iterations < config.max_iterations {
        iterations += 1;

        // Pass 1: shares s[x] = c·p[x]/out(x).
        std::thread::scope(|scope| {
            for ((ss, xs), ios) in
                shares.chunks_mut(chunk).zip(p.chunks(chunk)).zip(inv_out.chunks(chunk))
            {
                scope.spawn(move || {
                    for (s, (&px, &io)) in ss.iter_mut().zip(xs.iter().zip(ios)) {
                        *s = c * px * io;
                    }
                });
            }
        });

        // Pass 2: gather into disjoint chunks of destinations.
        {
            let shares_ref = &shares;
            let p_ref = &p;
            let v_ref = &v;
            std::thread::scope(|scope| {
                let mut start = 0usize;
                for (out_chunk, delta_slot) in p_next.chunks_mut(chunk).zip(chunk_deltas.iter_mut())
                {
                    let lo = start;
                    start += out_chunk.len();
                    scope.spawn(move || {
                        let mut local_delta = 0.0f64;
                        for (offset, slot) in out_chunk.iter_mut().enumerate() {
                            let y = lo + offset;
                            let mut acc = one_minus_c * v_ref[y];
                            for x in graph.in_neighbors(NodeId(y as u32)) {
                                acc += shares_ref[x.index()];
                            }
                            local_delta += (acc - p_ref[y]).abs();
                            *slot = acc;
                        }
                        *delta_slot = local_delta;
                    });
                }
            });
        }

        residual = chunk_deltas.iter().sum();
        residual_history.push(residual);
        std::mem::swap(&mut p, &mut p_next);
        if let Err(e) = guard.observe(iterations, residual) {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Err(e);
        }
        if residual < config.tolerance {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Ok(PageRankResult {
                scores: p,
                iterations,
                residual,
                converged: true,
                residual_history,
            });
        }
    }

    span.record("iterations", iterations as f64);
    obs::observe("pagerank.iterations", iterations as f64);
    Err(PageRankError::DidNotConverge { iterations, residual })
}

/// Per-worker edge quota for a solve of [`REF_SWEEPS`] sweeps: below
/// ~0.5M edges per worker, the handoff cost of an extra worker outweighs
/// its share of such a solve. The effective quota scales with the
/// expected sweep count (see [`pool_threads`]); the previous fixed 2M
/// quota ignored sweeps and collapsed the 1.1M-edge / 120k-host bench
/// graph to one worker (`pool_threads_4t: 1` in BENCH_layout.json) —
/// exactly the scale parallelism was meant for.
pub const DEFAULT_EDGES_PER_THREAD: usize = 1 << 19;

/// Floor of the sweep-scaled quota: even for very deep solves a worker
/// must own at least this many edges to pay for itself.
pub const MIN_EDGES_PER_THREAD: usize = 1 << 15;

/// Sweep count at which [`DEFAULT_EDGES_PER_THREAD`] applies unscaled
/// (roughly a tolerance of 1e-7 at the paper's damping 0.85).
const REF_SWEEPS: usize = 96;

/// Below this many edges, a one-worker solve routes to the serial
/// scatter solver instead of the pooled gather engine: at small sizes
/// the scatter kernel's sequential writes beat the gather's random
/// reads (`jacobi/40000` at 77ms vs `parallel_jacobi/40000` at 132ms in
/// the PR 7 bench files).
pub const SERIAL_CUTOFF_EDGES: usize = 1 << 18;

/// Expected Jacobi sweep count for a given tolerance and damping: the
/// residual contracts by about `c` per sweep, so
/// `ceil(ln ε / ln c)` sweeps reach tolerance `ε`. Clamped to
/// `1..=100_000`; deliberately **not** clamped by `max_iterations`, so a
/// tight cap on a deep tolerance still sizes (and allocates) for the
/// deep solve it is truncating.
pub fn estimated_sweeps(tolerance: f64, damping: f64) -> usize {
    if tolerance <= 0.0 || damping <= 0.0 || damping >= 1.0 {
        return 1;
    }
    let ratio = tolerance.ln() / damping.ln();
    if !ratio.is_finite() {
        return 1;
    }
    (ratio.ceil() as usize).clamp(1, 100_000)
}

/// The default quota scaled by expected sweep count: spawning a worker
/// costs the same regardless of solve depth, so a solve with twice the
/// sweeps justifies a worker at half the edges. Clamped to
/// `[MIN_EDGES_PER_THREAD, DEFAULT_EDGES_PER_THREAD]`.
fn sweep_scaled_quota(sweeps: usize) -> usize {
    (DEFAULT_EDGES_PER_THREAD * REF_SWEEPS / sweeps.max(1))
        .clamp(MIN_EDGES_PER_THREAD, DEFAULT_EDGES_PER_THREAD)
}

/// Pure pool-sizing rule shared by the parallel and batched solvers:
/// the configured thread count (`0` = `hardware` cores), capped so each
/// worker owns at least [`MIN_CHUNK`] nodes **and** at least the edge
/// quota — `edges_per_thread` when nonzero, otherwise the sweep-scaled
/// default (see [`estimated_sweeps`]).
///
/// Exposed (and pure) so the sizing table is testable without probing
/// the host's core count.
pub fn pool_threads(
    configured: usize,
    edges_per_thread: usize,
    hardware: usize,
    nodes: usize,
    edges: usize,
    sweeps: usize,
) -> usize {
    let t = if configured == 0 { hardware } else { configured };
    let quota = if edges_per_thread == 0 { sweep_scaled_quota(sweeps) } else { edges_per_thread };
    t.min(nodes.div_ceil(MIN_CHUNK)).min(edges.div_ceil(quota).max(1)).max(1)
}

/// The resolved execution plan for one solve.
pub(crate) struct SolvePath {
    /// Worker count for the pooled engine (meaningful when `!serial`).
    pub(crate) threads: usize,
    /// Route to the serial scatter solver instead of the pool.
    pub(crate) serial: bool,
}

/// Sizes a solve and records the full decision as a
/// `pagerank.pool.sizing` event: when a run shows `pool_threads: 1`
/// despite `--threads 4`, the event names the cap that collapsed it
/// (node floor, edge quota, or host parallelism) and which path ran.
pub(crate) fn solve_path(config: &PageRankConfig, graph: &Graph) -> SolvePath {
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let n = graph.node_count();
    let m = graph.edge_count();
    let sweeps = estimated_sweeps(config.tolerance, config.damping);
    let threads = pool_threads(config.threads, config.edges_per_thread, hw, n, m, sweeps);
    let serial = threads <= 1 && (n < MIN_CHUNK || m < SERIAL_CUTOFF_EDGES);
    let quota = if config.edges_per_thread == 0 {
        sweep_scaled_quota(sweeps)
    } else {
        config.edges_per_thread
    };
    obs::event(
        obs::names::PAGERANK_POOL_SIZING,
        vec![
            ("nodes".to_string(), obs::Json::uint(n as u64)),
            ("edges".to_string(), obs::Json::uint(m as u64)),
            ("configured".to_string(), obs::Json::uint(config.threads as u64)),
            ("hardware".to_string(), obs::Json::uint(hw as u64)),
            ("edges_per_thread".to_string(), obs::Json::uint(quota as u64)),
            ("sweeps_hint".to_string(), obs::Json::uint(sweeps as u64)),
            ("kernel".to_string(), obs::Json::str(config.kernel.resolve().as_str())),
            ("path".to_string(), obs::Json::str(if serial { "serial" } else { "pooled" })),
            ("chosen".to_string(), obs::Json::uint(threads as u64)),
        ],
    );
    obs::gauge(obs::names::PAGERANK_POOL_THREADS, threads as f64);
    SolvePath { threads, serial }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::solve_jacobi;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        // The test graphs are far below the default edge quota; drop the
        // quota so `.threads(k)` actually runs k workers.
        PageRankConfig::default().edges_per_thread(1)
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> spammass_graph::Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(n, m);
        for _ in 0..m {
            let f = rng.gen_range(0..n as u32);
            let t = rng.gen_range(0..n as u32);
            if f != t {
                b.add_edge(spammass_graph::NodeId(f), spammass_graph::NodeId(t));
            }
        }
        b.build()
    }

    #[test]
    fn small_graph_falls_back_to_serial() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn matches_serial_on_large_random_graph() {
        // Big enough to engage at least 2 workers.
        let g = random_graph(40_000, 200_000, 7);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        for i in 0..g.node_count() {
            assert!(
                (a.scores[i] - b.scores[i]).abs() < 1e-12,
                "node {i}: {} vs {}",
                a.scores[i],
                b.scores[i]
            );
        }
        // Same tolerance, same iteration structure: counts may differ by
        // at most one sweep from rounding of the residual reduction.
        assert!(a.iterations.abs_diff(b.iterations) <= 1, "{} vs {}", a.iterations, b.iterations);
    }

    #[test]
    fn scalar_kernel_matches_unrolled_kernel() {
        use crate::kernel::KernelKind;
        let g = random_graph(40_000, 200_000, 19);
        let a = solve_parallel_jacobi(
            &g,
            &JumpVector::Uniform,
            &cfg().threads(3).kernel(KernelKind::Scalar),
        )
        .unwrap();
        let b = solve_parallel_jacobi(
            &g,
            &JumpVector::Uniform,
            &cfg().threads(3).kernel(KernelKind::Unrolled4),
        )
        .unwrap();
        for i in 0..g.node_count() {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-12, "node {i}");
        }
    }

    #[test]
    fn matches_two_pass_baseline() {
        let g = random_graph(40_000, 200_000, 17);
        let a =
            solve_parallel_jacobi_two_pass(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        for i in 0..g.node_count() {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-12, "node {i}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = random_graph(40_000, 120_000, 11);
        let r1 = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        let r2 = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        assert_eq!(r1.scores, r2.scores);
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.residual, r2.residual);
    }

    #[test]
    fn iteration_cap_is_a_typed_error() {
        let g = random_graph(40_000, 120_000, 13);
        let tight = cfg().threads(2).max_iterations(2).tolerance(1e-300);
        assert!(matches!(
            solve_parallel_jacobi(&g, &JumpVector::Uniform, &tight),
            Err(PageRankError::DidNotConverge { iterations: 2, .. })
        ));
    }

    #[test]
    fn returns_the_newest_buffer_for_any_iteration_parity() {
        // A stale-by-one-sweep result differs from the true iterate by
        // roughly the tolerance, far above the 1e-10 bound here — so a
        // parity bug in the double-buffer bookkeeping would fail this for
        // whichever tolerances land on odd vs even iteration counts.
        let g = random_graph(40_000, 120_000, 23);
        let mut parities = [false, false];
        for tol in [1e-3, 1e-4, 1e-5, 1e-6, 1e-7] {
            let r =
                solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(2).tolerance(tol))
                    .unwrap();
            let s = solve_jacobi(&g, &JumpVector::Uniform, &cfg().tolerance(tol)).unwrap();
            parities[r.iterations % 2] = true;
            for i in 0..g.node_count() {
                assert!(
                    (r.scores[i] - s.scores[i]).abs() < 1e-10,
                    "tol {tol} node {i}: {} vs {}",
                    r.scores[i],
                    s.scores[i]
                );
            }
        }
        // Five ~14-iteration-apart counts essentially always hit both
        // parities; if this ever flakes, add a tolerance step.
        assert!(parities[0] || parities[1]);
    }

    #[test]
    fn sweep_estimate_tracks_tolerance_and_damping() {
        // ceil(ln ε / ln c) at the paper's c = 0.85.
        assert_eq!(estimated_sweeps(1e-12, 0.85), 171);
        assert_eq!(estimated_sweeps(1e-10, 0.85), 142);
        assert_eq!(estimated_sweeps(1e-300, 0.85), 4251);
        assert_eq!(estimated_sweeps(0.5, 0.85), 5);
        // Degenerate inputs clamp to one sweep.
        assert_eq!(estimated_sweeps(1.0, 0.85), 1);
        assert_eq!(estimated_sweeps(1e-12, 0.0), 1);
    }

    #[test]
    fn pool_sizing_table() {
        const D: usize = DEFAULT_EDGES_PER_THREAD;
        // Tiny graph: node floor wins regardless of configured threads.
        assert_eq!(pool_threads(4, 0, 8, 100, 1_000, 171), 1);
        // The regression this PR fixes: the old fixed 2M quota collapsed
        // the 120k-host / 1.1M-edge bench graph to one worker; the
        // sweep-scaled quota (≈294k edges at 171 sweeps) restores the
        // requested width.
        assert_eq!(pool_threads(4, 0, 8, 120_000, 1_100_000, 171), 4);
        // Same graph with `--threads 0` on a 4-core host.
        assert_eq!(pool_threads(0, 0, 4, 120_000, 1_100_000, 142), 4);
        // A shallow solve over a small graph still serializes: 200k
        // edges < one 142-sweep quota (≈354k).
        assert_eq!(pool_threads(4, 0, 8, 40_000, 200_000, 142), 1);
        // A very deep solve pulls the quota to its floor (32k edges), so
        // even a 120k-edge graph keeps two requested workers.
        assert_eq!(pool_threads(2, 0, 8, 40_000, 120_000, 4251), 2);
        // An explicit quota override bypasses sweep scaling entirely.
        assert_eq!(pool_threads(4, 1 << 18, 8, 120_000, 1_100_000, 10), 4);
        // Edge quota trims 8 requested workers down to 3 at the
        // reference sweep count.
        assert_eq!(pool_threads(8, 0, 8, 1 << 20, 3 * D, 96), 3);
        // configured == 0 defers to the hardware count (then caps).
        assert_eq!(pool_threads(0, 0, 2, 1 << 20, 4 * D, 96), 2);
        // An explicit quota of one edge lifts the edge cap entirely.
        assert_eq!(pool_threads(4, 1, 8, 64 * 1024, 10, 171), 4);
        // Zero-size graphs still get one worker.
        assert_eq!(pool_threads(4, 0, 8, 0, 0, 171), 1);
    }

    #[test]
    fn default_edge_quota_serializes_small_graphs() {
        // Without the test override, a 40k-node / 200k-edge graph routes
        // to the serial scatter path no matter how many threads are
        // requested — and its result must match the pooled engine's.
        let g = random_graph(40_000, 200_000, 31);
        let auto = PageRankConfig::default().threads(4);
        let forced = cfg().threads(4);
        let a = solve_parallel_jacobi(&g, &JumpVector::Uniform, &auto).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &forced).unwrap();
        for i in 0..g.node_count() {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-12, "node {i}");
        }
    }

    fn recorded_sizing_event(
        config: &PageRankConfig,
        g: &spammass_graph::Graph,
    ) -> Vec<(String, obs::Json)> {
        use std::sync::Arc;
        let recorder = Arc::new(obs::Recorder::new());
        let collector = obs::Collector::builder().sink(recorder.clone()).build();
        {
            let _guard = collector.install();
            solve_parallel_jacobi(g, &JumpVector::Uniform, config).unwrap();
        }
        let msgs = recorder.messages();
        let (_, fields) =
            msgs.iter().find(|(n, _)| n == obs::names::PAGERANK_POOL_SIZING).unwrap().clone();
        fields
    }

    #[test]
    fn sizing_event_names_the_decision() {
        let g = random_graph(40_000, 120_000, 41);
        let fields = recorded_sizing_event(&cfg().threads(3), &g);
        let get = |k: &str| {
            fields
                .iter()
                .find(|(f, _)| f == k)
                .unwrap_or_else(|| panic!("missing field {k}"))
                .1
                .clone()
        };
        assert_eq!(get("nodes").as_f64(), Some(g.node_count() as f64));
        assert_eq!(get("edges").as_f64(), Some(g.edge_count() as f64));
        assert_eq!(get("configured").as_f64(), Some(3.0));
        // cfg() overrides the quota to 1 edge/worker.
        assert_eq!(get("edges_per_thread").as_f64(), Some(1.0));
        assert_eq!(get("chosen").as_f64(), Some(3.0));
        assert_eq!(get("sweeps_hint").as_f64(), Some(171.0));
        assert_eq!(get("kernel").as_str(), Some("unrolled4"));
        assert_eq!(get("path").as_str(), Some("pooled"));
        assert!(get("hardware").as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn serial_cutoff_is_recorded_in_the_sizing_event() {
        // Default quota on a 40k/200k graph: one worker, below the edge
        // cutoff → the scatter path, named in the event.
        let g = random_graph(40_000, 200_000, 43);
        let fields = recorded_sizing_event(&PageRankConfig::default().threads(4), &g);
        let get = |k: &str| fields.iter().find(|(f, _)| f == k).unwrap().1.clone();
        assert_eq!(get("chosen").as_f64(), Some(1.0));
        assert_eq!(get("path").as_str(), Some("serial"));
    }

    #[test]
    fn pool_size_gauge_is_recorded() {
        use std::sync::Arc;
        let recorder = Arc::new(obs::Recorder::new());
        let collector = obs::Collector::builder().sink(recorder.clone()).build();
        let g = random_graph(40_000, 120_000, 37);
        {
            let _guard = collector.install();
            solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        }
        let metrics = collector.metrics_snapshot();
        let gauge = metrics.iter().find(|(k, _)| k == "pagerank.pool.threads").unwrap();
        assert_eq!(gauge.1, obs::Metric::Gauge(3.0));
    }
}
