//! Parallel Jacobi solver (fused gather kernel on a persistent pool).
//!
//! The Yahoo! experiments ran PageRank twice over a 979M-edge host graph;
//! at that scale the matrix–vector product dominates, so every sweep-level
//! inefficiency multiplies by hundreds of iterations. The hot path here is
//! built from three pieces:
//!
//! * a **persistent worker pool** ([`crate::pool`]) spawned once per solve
//!   and advanced by barrier handoff, replacing the previous
//!   2×spawn/join-per-sweep pattern;
//! * **edge-balanced partitioning** ([`crate::partition`]) of the
//!   destination range by in-edge counts, so power-law skew does not leave
//!   most workers idling at the barrier behind the hub chunk;
//! * a **fused gather kernel**: `coef[x] = c/out(x)` is precomputed once
//!   and shares are formed on the fly (`acc += p[x]·coef[x]`) inside the
//!   gather, eliminating the full `shares` vector, its ~n·8 bytes of
//!   per-sweep write traffic, and the barrier between the two passes.
//!
//! Two score buffers alternate roles by round parity (round `r` reads
//! buffer `r mod 2`, writes buffer `(r+1) mod 2`), each destination is
//! written by exactly one worker, and per-chunk residual contributions are
//! reduced in fixed index order by the control step — so results stay
//! bit-for-bit deterministic for a fixed partition, independent of thread
//! scheduling.
//!
//! The previous two-pass implementation is retained as
//! [`solve_parallel_jacobi_two_pass`] purely as a benchmark baseline.

use crate::config::PageRankConfig;
use crate::error::PageRankError;
use crate::guard::ConvergenceGuard;
use crate::history::ResidualHistory;
use crate::jacobi::check_jump_length;
use crate::jump::JumpVector;
use crate::partition::NodePartition;
use crate::pool::{self, SharedSlice};
use crate::PageRankResult;
use spammass_graph::{Graph, NodeId};
use spammass_obs as obs;
use std::ops::ControlFlow;

/// Minimum nodes per chunk; below this the serial path is used.
const MIN_CHUNK: usize = 16 * 1024;

/// Solves `(I − c·Tᵀ)p = (1 − c)v` with thread-parallel Jacobi sweeps.
///
/// Falls back to the serial Jacobi solver for graphs smaller than one
/// chunk, so it is safe to call unconditionally.
///
/// # Errors
/// Same contract as [`solve_jacobi`](crate::jacobi::solve_jacobi).
pub fn solve_parallel_jacobi(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let v = jump.materialize(graph.node_count())?;
    solve_parallel_jacobi_dense(graph, &v, config)
}

/// Parallel Jacobi with an already-materialized jump vector.
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`].
pub fn solve_parallel_jacobi_dense(
    graph: &Graph,
    v: &[f64],
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    solve_parallel_jacobi_dense_warm(graph, v, None, config)
}

/// Parallel Jacobi seeded with `initial` scores instead of `v` — the
/// warm-start entry point (see
/// [`solve_jacobi_dense_warm`](crate::jacobi::solve_jacobi_dense_warm)
/// for why warm starts are safe). The serial fallback for small graphs
/// passes the warm start through unchanged.
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`], plus
/// [`PageRankError::InitialScoresLength`] when `initial` does not match
/// the graph.
pub fn solve_parallel_jacobi_dense_warm(
    graph: &Graph,
    v: &[f64],
    initial: Option<&[f64]>,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    check_jump_length(v, n)?;
    if let Some(p0) = initial {
        crate::jacobi::check_initial_length(p0, n)?;
    }

    let threads = effective_threads(config, graph);
    if threads <= 1 && n < MIN_CHUNK {
        // Tiny problem: the serial scatter solver wins outright.
        return crate::jacobi::solve_jacobi_dense_warm(graph, v, initial, config);
    }
    // Note: threads == 1 with a large graph still runs the fused gather
    // kernel below — `pool::run_rounds(1, …)` executes inline with no
    // worker spawns, and the gather accumulation order stays bit-identical
    // to the multi-worker and batched solvers.

    let mut span = obs::span("pagerank.solve.parallel");
    span.record("threads", threads as f64);
    let c = config.damping;
    let one_minus_c = 1.0 - c;

    // All solve-lifetime state is allocated up front; the iteration loop
    // itself is allocation-free (see tests/alloc.rs).
    let partition = NodePartition::edge_balanced(graph, threads);
    let profiler = crate::profiler::PoolProfiler::from_live(&partition, graph, 1);
    let coef: Vec<f64> = graph
        .nodes()
        .map(|x| {
            let d = graph.out_degree(x);
            if d == 0 {
                0.0
            } else {
                c / d as f64
            }
        })
        .collect();

    let mut front: Vec<f64> = match initial {
        Some(p0) => p0.to_vec(),
        None => v.to_vec(),
    };
    let mut back = vec![0.0f64; n];
    let mut chunk_deltas = vec![0.0f64; threads];

    let mut residual_history = ResidualHistory::new();
    let mut guard = ConvergenceGuard::new();
    let mut completed = 0usize;

    let outcome: Result<f64, PageRankError> = {
        let bufs = [SharedSlice::new(&mut front), SharedSlice::new(&mut back)];
        let deltas = SharedSlice::new(&mut chunk_deltas);
        let partition = &partition;
        let coef = &coef[..];

        let kernel = |round: usize, worker: usize| {
            let range = partition.range(worker);
            // SAFETY: the buffers alternate roles by round parity — every
            // worker reads bufs[round % 2] and writes only its own
            // partition range of bufs[(round+1) % 2]; ranges are pairwise
            // disjoint and the pool's barriers order rounds, so no
            // location is read while written.
            let read = unsafe { bufs[round % 2].as_slice() };
            let write = unsafe { bufs[(round + 1) % 2].range_mut(range.start, range.end) };
            let mut local_delta = 0.0f64;
            for (slot, y) in write.iter_mut().zip(range.clone()) {
                let mut acc = one_minus_c * v[y];
                for x in graph.in_neighbors(NodeId(y as u32)) {
                    acc += read[x.index()] * coef[x.index()];
                }
                local_delta += (acc - read[y]).abs();
                *slot = acc;
            }
            // SAFETY: slot `worker` is written only by this worker.
            let slot = unsafe { deltas.range_mut(worker, worker + 1) };
            slot[0] = local_delta;
        };

        let control = |round: usize| -> ControlFlow<Result<f64, PageRankError>> {
            let iterations = round + 1;
            completed = iterations;
            // Per-chunk contributions summed in index order: the f64
            // reduction (and therefore convergence) is independent of
            // thread scheduling.
            // SAFETY: control runs between rounds; no worker is active.
            let residual: f64 = unsafe { deltas.as_slice() }.iter().sum();
            residual_history.push(residual);
            if let Err(e) = guard.observe(iterations, residual) {
                return ControlFlow::Break(Err(e));
            }
            if residual < config.tolerance {
                return ControlFlow::Break(Ok(residual));
            }
            if iterations >= config.max_iterations {
                return ControlFlow::Break(Err(PageRankError::DidNotConverge {
                    iterations,
                    residual,
                }));
            }
            ControlFlow::Continue(())
        };

        pool::run_rounds_profiled(threads, profiler.as_ref(), kernel, control)
    };

    // Telemetry on every exit path, including guard errors.
    span.record("iterations", completed as f64);
    obs::observe("pagerank.iterations", completed as f64);

    let residual = outcome?;
    // Round r writes bufs[(r+1) % 2], so after `completed` rounds the
    // newest iterate lives in bufs[completed % 2].
    let scores = if completed.is_multiple_of(2) { front } else { back };
    Ok(PageRankResult {
        scores,
        iterations: completed,
        residual,
        converged: true,
        residual_history,
    })
}

/// The pre-pool two-pass kernel (spawns scoped threads twice per sweep
/// and materializes the full `shares` vector), kept **only** as the
/// benchmark baseline for the fused pooled kernel above. New callers
/// should use [`solve_parallel_jacobi`].
///
/// # Errors
/// Same contract as [`solve_parallel_jacobi`].
pub fn solve_parallel_jacobi_two_pass(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    config.validate()?;
    let n = graph.node_count();
    let v = jump.materialize(n)?;

    let threads = effective_threads(config, graph);
    if threads <= 1 {
        return crate::jacobi::solve_jacobi_dense(graph, &v, config);
    }

    let mut span = obs::span("pagerank.solve.parallel_two_pass");
    let c = config.damping;
    let one_minus_c = 1.0 - c;
    let chunk = n.div_ceil(threads);

    let inv_out: Vec<f64> = graph
        .nodes()
        .map(|x| {
            let d = graph.out_degree(x);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f64
            }
        })
        .collect();

    let mut p: Vec<f64> = v.to_vec();
    let mut p_next = vec![0.0f64; n];
    let mut shares = vec![0.0f64; n];
    let mut chunk_deltas = vec![0.0f64; n.div_ceil(chunk)];
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    let mut residual_history = ResidualHistory::new();
    let mut guard = ConvergenceGuard::new();

    while iterations < config.max_iterations {
        iterations += 1;

        // Pass 1: shares s[x] = c·p[x]/out(x).
        std::thread::scope(|scope| {
            for ((ss, xs), ios) in
                shares.chunks_mut(chunk).zip(p.chunks(chunk)).zip(inv_out.chunks(chunk))
            {
                scope.spawn(move || {
                    for (s, (&px, &io)) in ss.iter_mut().zip(xs.iter().zip(ios)) {
                        *s = c * px * io;
                    }
                });
            }
        });

        // Pass 2: gather into disjoint chunks of destinations.
        {
            let shares_ref = &shares;
            let p_ref = &p;
            let v_ref = &v;
            std::thread::scope(|scope| {
                let mut start = 0usize;
                for (out_chunk, delta_slot) in p_next.chunks_mut(chunk).zip(chunk_deltas.iter_mut())
                {
                    let lo = start;
                    start += out_chunk.len();
                    scope.spawn(move || {
                        let mut local_delta = 0.0f64;
                        for (offset, slot) in out_chunk.iter_mut().enumerate() {
                            let y = lo + offset;
                            let mut acc = one_minus_c * v_ref[y];
                            for x in graph.in_neighbors(NodeId(y as u32)) {
                                acc += shares_ref[x.index()];
                            }
                            local_delta += (acc - p_ref[y]).abs();
                            *slot = acc;
                        }
                        *delta_slot = local_delta;
                    });
                }
            });
        }

        residual = chunk_deltas.iter().sum();
        residual_history.push(residual);
        std::mem::swap(&mut p, &mut p_next);
        if let Err(e) = guard.observe(iterations, residual) {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Err(e);
        }
        if residual < config.tolerance {
            span.record("iterations", iterations as f64);
            obs::observe("pagerank.iterations", iterations as f64);
            return Ok(PageRankResult {
                scores: p,
                iterations,
                residual,
                converged: true,
                residual_history,
            });
        }
    }

    span.record("iterations", iterations as f64);
    obs::observe("pagerank.iterations", iterations as f64);
    Err(PageRankError::DidNotConverge { iterations, residual })
}

/// Default per-worker edge quota for the pool auto-sizer: below ~2M edges
/// per worker, the barrier handoffs and cache-line ping-pong of an extra
/// worker cost more than its share of the sweep buys back (measured on the
/// 1-core CI host, where the old node-count-only cap let `--threads 4`
/// run 4 workers over a 1M-edge graph and lose to 1 thread outright).
pub const DEFAULT_EDGES_PER_THREAD: usize = 1 << 21;

/// Pure pool-sizing rule shared by the parallel and batched solvers:
/// the configured thread count (`0` = `hardware` cores), capped so each
/// worker owns at least [`MIN_CHUNK`] nodes **and** at least
/// `edges_per_thread` edges (`0` = [`DEFAULT_EDGES_PER_THREAD`]).
///
/// Exposed (and pure) so the sizing table is testable without probing the
/// host's core count.
pub fn pool_threads(
    configured: usize,
    edges_per_thread: usize,
    hardware: usize,
    nodes: usize,
    edges: usize,
) -> usize {
    let t = if configured == 0 { hardware } else { configured };
    let quota = if edges_per_thread == 0 { DEFAULT_EDGES_PER_THREAD } else { edges_per_thread };
    t.min(nodes.div_ceil(MIN_CHUNK)).min(edges.div_ceil(quota).max(1)).max(1)
}

pub(crate) fn effective_threads(config: &PageRankConfig, graph: &Graph) -> usize {
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let threads = pool_threads(
        config.threads,
        config.edges_per_thread,
        hw,
        graph.node_count(),
        graph.edge_count(),
    );
    // The full sizing decision as a structured event: when a run shows
    // `pool_threads: 1` despite `--threads 4`, this names the cap that
    // collapsed it (node floor, edge quota, or host parallelism).
    let quota = if config.edges_per_thread == 0 {
        DEFAULT_EDGES_PER_THREAD
    } else {
        config.edges_per_thread
    };
    obs::event(
        obs::names::PAGERANK_POOL_SIZING,
        vec![
            ("nodes".to_string(), obs::Json::uint(graph.node_count() as u64)),
            ("edges".to_string(), obs::Json::uint(graph.edge_count() as u64)),
            ("configured".to_string(), obs::Json::uint(config.threads as u64)),
            ("hardware".to_string(), obs::Json::uint(hw as u64)),
            ("edges_per_thread".to_string(), obs::Json::uint(quota as u64)),
            ("chosen".to_string(), obs::Json::uint(threads as u64)),
        ],
    );
    obs::gauge(obs::names::PAGERANK_POOL_THREADS, threads as f64);
    threads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::solve_jacobi;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spammass_graph::GraphBuilder;

    fn cfg() -> PageRankConfig {
        // The test graphs are far below DEFAULT_EDGES_PER_THREAD; drop the
        // quota so `.threads(k)` actually runs k workers.
        PageRankConfig::default().edges_per_thread(1)
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> spammass_graph::Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(n, m);
        for _ in 0..m {
            let f = rng.gen_range(0..n as u32);
            let t = rng.gen_range(0..n as u32);
            if f != t {
                b.add_edge(spammass_graph::NodeId(f), spammass_graph::NodeId(t));
            }
        }
        b.build()
    }

    #[test]
    fn small_graph_falls_back_to_serial() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn matches_serial_on_large_random_graph() {
        // Big enough to engage at least 2 chunks.
        let g = random_graph(40_000, 200_000, 7);
        let a = solve_jacobi(&g, &JumpVector::Uniform, &cfg()).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        for i in 0..g.node_count() {
            assert!(
                (a.scores[i] - b.scores[i]).abs() < 1e-12,
                "node {i}: {} vs {}",
                a.scores[i],
                b.scores[i]
            );
        }
        // Same tolerance, same iteration structure: counts may differ by
        // at most one sweep from rounding of the residual reduction.
        assert!(a.iterations.abs_diff(b.iterations) <= 1, "{} vs {}", a.iterations, b.iterations);
    }

    #[test]
    fn matches_two_pass_baseline() {
        let g = random_graph(40_000, 200_000, 17);
        let a =
            solve_parallel_jacobi_two_pass(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(4)).unwrap();
        for i in 0..g.node_count() {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-12, "node {i}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = random_graph(40_000, 120_000, 11);
        let r1 = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        let r2 = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        assert_eq!(r1.scores, r2.scores);
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.residual, r2.residual);
    }

    #[test]
    fn iteration_cap_is_a_typed_error() {
        let g = random_graph(40_000, 120_000, 13);
        let tight = cfg().threads(2).max_iterations(2).tolerance(1e-300);
        assert!(matches!(
            solve_parallel_jacobi(&g, &JumpVector::Uniform, &tight),
            Err(PageRankError::DidNotConverge { iterations: 2, .. })
        ));
    }

    #[test]
    fn returns_the_newest_buffer_for_any_iteration_parity() {
        // A stale-by-one-sweep result differs from the true iterate by
        // roughly the tolerance, far above the 1e-10 bound here — so a
        // parity bug in the double-buffer bookkeeping would fail this for
        // whichever tolerances land on odd vs even iteration counts.
        let g = random_graph(40_000, 120_000, 23);
        let mut parities = [false, false];
        for tol in [1e-3, 1e-4, 1e-5, 1e-6, 1e-7] {
            let r =
                solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(2).tolerance(tol))
                    .unwrap();
            let s = solve_jacobi(&g, &JumpVector::Uniform, &cfg().tolerance(tol)).unwrap();
            parities[r.iterations % 2] = true;
            for i in 0..g.node_count() {
                assert!(
                    (r.scores[i] - s.scores[i]).abs() < 1e-10,
                    "tol {tol} node {i}: {} vs {}",
                    r.scores[i],
                    s.scores[i]
                );
            }
        }
        // Five ~14-iteration-apart counts essentially always hit both
        // parities; if this ever flakes, add a tolerance step.
        assert!(parities[0] || parities[1]);
    }

    #[test]
    fn pool_sizing_table() {
        const EPT: usize = DEFAULT_EDGES_PER_THREAD;
        // Tiny graph: node cap wins regardless of configured threads.
        assert_eq!(pool_threads(4, 0, 8, 100, 1_000), 1);
        // Node cap satisfied but the edge quota holds it to one worker —
        // the 1-core-host regression case: 1.1M edges < 2 × 2M.
        assert_eq!(pool_threads(4, 0, 8, 120_000, 1_100_000), 1);
        // Same 120k-host graph with `--threads 0` on a 4-core host: the
        // edge quota, not the host width, is what serializes it.
        assert_eq!(pool_threads(0, 0, 4, 120_000, 1_100_000), 1);
        // An explicit quota override restores the requested width on
        // that same graph.
        assert_eq!(pool_threads(4, 1 << 18, 8, 120_000, 1_100_000), 4);
        // Enough edges for the requested width.
        assert_eq!(pool_threads(4, 0, 8, 1 << 20, 4 * EPT), 4);
        // Edge quota trims 8 requested workers down to 3.
        assert_eq!(pool_threads(8, 0, 8, 1 << 20, 3 * EPT), 3);
        // configured == 0 defers to the hardware count (then caps).
        assert_eq!(pool_threads(0, 0, 2, 1 << 20, 4 * EPT), 2);
        // An explicit quota overrides the default.
        assert_eq!(pool_threads(4, 1, 8, 64 * 1024, 10), 4);
        // Zero-size graphs still get one worker.
        assert_eq!(pool_threads(4, 0, 8, 0, 0), 1);
    }

    #[test]
    fn default_edge_quota_serializes_small_graphs() {
        // Without the test override, a 40k-node / 200k-edge graph resolves
        // to one worker no matter how many threads are requested — and the
        // inline fused-gather result must still match the pooled one.
        let g = random_graph(40_000, 200_000, 31);
        let auto = PageRankConfig::default().threads(4);
        let forced = cfg().threads(4);
        let a = solve_parallel_jacobi(&g, &JumpVector::Uniform, &auto).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &forced).unwrap();
        for i in 0..g.node_count() {
            assert!((a.scores[i] - b.scores[i]).abs() < 1e-12, "node {i}");
        }
    }

    #[test]
    fn sizing_event_names_the_decision() {
        use std::sync::Arc;
        let recorder = Arc::new(obs::Recorder::new());
        let collector = obs::Collector::builder().sink(recorder.clone()).build();
        let g = random_graph(40_000, 120_000, 41);
        {
            let _guard = collector.install();
            solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        }
        let msgs = recorder.messages();
        let (_, fields) = msgs.iter().find(|(n, _)| n == obs::names::PAGERANK_POOL_SIZING).unwrap();
        let get = |k: &str| {
            fields
                .iter()
                .find(|(f, _)| f == k)
                .unwrap_or_else(|| panic!("missing field {k}"))
                .1
                .as_f64()
                .unwrap()
        };
        assert_eq!(get("nodes"), g.node_count() as f64);
        assert_eq!(get("edges"), g.edge_count() as f64);
        assert_eq!(get("configured"), 3.0);
        // cfg() overrides the quota to 1 edge/worker.
        assert_eq!(get("edges_per_thread"), 1.0);
        assert_eq!(get("chosen"), 3.0);
        assert!(get("hardware") >= 1.0);
    }

    #[test]
    fn pool_size_gauge_is_recorded() {
        use std::sync::Arc;
        let recorder = Arc::new(obs::Recorder::new());
        let collector = obs::Collector::builder().sink(recorder.clone()).build();
        let g = random_graph(40_000, 120_000, 37);
        {
            let _guard = collector.install();
            solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg().threads(3)).unwrap();
        }
        let metrics = collector.metrics_snapshot();
        let gauge = metrics.iter().find(|(k, _)| k == "pagerank.pool.threads").unwrap();
        assert_eq!(gauge.1, obs::Metric::Gauge(3.0));
    }
}
