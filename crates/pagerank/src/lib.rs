//! # spammass-pagerank
//!
//! Linear PageRank solvers and PageRank-contribution machinery for the
//! spam-mass reproduction of Gyöngyi et al., *Link Spam Detection Based on
//! Mass Estimation* (VLDB 2006).
//!
//! The paper adopts the **linear system formulation** of PageRank
//! (Section 2.2, equation (3)):
//!
//! ```text
//! (I − c·Tᵀ) p = (1 − c) v
//! ```
//!
//! where `T` is the (substochastic) transition matrix, `c` the damping
//! factor, and `v` a — possibly **unnormalized** — random-jump vector.
//! Two properties of this formulation carry the whole paper:
//!
//! 1. **Linearity in `v`**: `PR(v₁ + v₂) = PR(v₁) + PR(v₂)`, which makes
//!    PageRank contributions of node sets computable as plain PageRank runs
//!    (Theorem 2), and
//! 2. **no dangling-node patching**: mass lost at dangling nodes is simply
//!    not re-injected, so a jump vector supported on a *good core* yields
//!    exactly the good-contribution estimate `p′` of Section 3.4.
//!
//! ## Solvers
//!
//! | Solver | Module | Notes |
//! |---|---|---|
//! | Jacobi | [`jacobi`] | Algorithm 1 of the paper, verbatim |
//! | Gauss–Seidel | [`gauss_seidel`] | in-place sweeps, usually ~2× fewer iterations |
//! | Parallel Jacobi | [`parallel`] | fused gather on a persistent pool, edge-balanced chunks |
//! | Batched Jacobi | [`batch`] | k jump vectors through one CSR traversal per sweep |
//! | Power iteration | [`power`] | eigenvector formulation on `T″`, for cross-validation |
//!
//! The parallel execution layer is the edge-parallel engine (private
//! module `engine`) built from [`pool`] (persistent workers, one
//! sense-reversing handoff per sweep), [`partition`] (equal edge ranges
//! with a boundary-row merge plan) and the dispatched gather kernels of
//! [`KernelKind`]; the parallel and batched solvers share it and stay
//! bit-for-bit deterministic for a fixed partition and kernel.
//!
//! All solvers are **fallible**: they return `Err` with a typed
//! [`PageRankError`] on invalid input, on a hit iteration cap
//! ([`PageRankError::DidNotConverge`]), on a growing residual
//! ([`PageRankError::Diverged`]), and on NaN/overflow poisoning
//! ([`PageRankError::NumericalInstability`]). [`SolverChain`] layers
//! graceful degradation over the strict solvers, with per-attempt
//! [`AttemptReport`] diagnostics.
//!
//! ## Contributions
//!
//! [`contribution`] implements `q^x = PR(v^x)` and `q^U = PR(v^U)`
//! (Theorems 1–2) plus a walk-enumeration reference evaluator used by the
//! property-test suite to validate the theorems from first principles.
//!
//! ## Example
//!
//! ```
//! use spammass_graph::GraphBuilder;
//! use spammass_pagerank::{PageRankConfig, JumpVector, solve};
//!
//! let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
//! let pr = solve(&g, &JumpVector::Uniform, &PageRankConfig::default())
//!     .expect("symmetric 3-cycle converges");
//! assert!(pr.converged);
//! // A symmetric cycle gives equal scores.
//! assert!((pr.scores[0] - pr.scores[1]).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod chain;
mod config;
pub mod contribution;
mod engine;
mod error;
pub mod gauss_seidel;
mod guard;
mod history;
pub mod jacobi;
mod jump;
mod kernel;
pub mod parallel;
pub mod partition;
pub mod pool;
pub mod power;
mod profiler;
mod scores;
pub mod stream;

pub use batch::{solve_batch, solve_batch_warm};
pub use chain::{AttemptOutcome, AttemptReport, ChainError, ChainSolve, SolverChain, SolverKind};
pub use config::PageRankConfig;
pub use error::PageRankError;
pub use history::ResidualHistory;
pub use jump::JumpVector;
pub use kernel::KernelKind;
pub use partition::{EdgePartition, NodePartition};
pub use scores::PageRankScores;
pub use stream::solve_batch_streamed;

use spammass_graph::Graph;

/// Result of a PageRank solve.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Raw (possibly unnormalized) PageRank scores, one per node.
    pub scores: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final L1 residual `‖p[i] − p[i−1]‖₁`.
    pub residual: f64,
    /// Whether the residual dropped below the configured tolerance. Always
    /// `true` for results returned by the strict solvers (a failed solve is
    /// an `Err` instead); retained so downstream reporting stays uniform.
    pub converged: bool,
    /// Per-iteration L1 residuals (`residual_history.last()` equals
    /// `residual`). Lets callers compare solver convergence rates — the
    /// paper's Section 2.2 argument for the linear formulation. Bounded:
    /// long solves are deterministically thinned (see [`ResidualHistory`]);
    /// the exhaustive series is available through the `pagerank.residual`
    /// telemetry histogram.
    pub residual_history: ResidualHistory,
}

impl PageRankResult {
    /// Wraps the scores with scaling helpers.
    pub fn scores_view(&self, config: &PageRankConfig) -> PageRankScores<'_> {
        PageRankScores::new(&self.scores, config.damping)
    }

    /// Estimated geometric per-iteration convergence rate over the last
    /// few recorded residuals (`≈ c` for Jacobi, smaller for
    /// Gauss–Seidel). `None` with fewer than three iterations.
    pub fn convergence_rate(&self) -> Option<f64> {
        self.residual_history.convergence_rate()
    }
}

/// Solves linear PageRank with the default (Jacobi) solver — the exact
/// Algorithm 1 of the paper.
///
/// # Errors
/// See [`jacobi::solve_jacobi`]; use [`SolverChain`] for automatic fallback.
pub fn solve(
    graph: &Graph,
    jump: &JumpVector,
    config: &PageRankConfig,
) -> Result<PageRankResult, PageRankError> {
    jacobi::solve_jacobi(graph, jump, config)
}
