//! Persistent worker pool with per-round barrier handoff.
//!
//! The original parallel solver spawned fresh scoped threads **twice per
//! Jacobi sweep** (one scope for the shares pass, one for the gather).
//! At hundreds of sweeps per solve that is thousands of thread
//! spawn/join cycles, each costing tens of microseconds plus scheduler
//! churn. This module replaces that pattern with a pool created **once
//! per solve**: workers are spawned a single time and then advance in
//! lock-step rounds through a reusable [`std::sync::Barrier`].
//!
//! One round is one invocation of the kernel on every worker:
//!
//! ```text
//! workers:  wait ─ kernel(round, w) ─ wait ─ wait ─ kernel(round+1, w) ─ …
//! control:  wait ─ kernel(round, 0) ─ wait ─ reduce/decide ─ …
//! ```
//!
//! The calling thread participates as worker 0, so `threads = t` costs
//! only `t − 1` spawns. Between the end-of-round barrier and the next
//! start-of-round barrier only the control closure runs, which is where
//! solvers reduce per-chunk residuals **in fixed index order** (the
//! bit-for-bit determinism guarantee) and decide whether to continue.
//!
//! The pool itself performs no allocation after the workers are spawned;
//! combined with hoisted kernel scratch buffers this makes the solver
//! loops allocation-free per iteration (asserted by the counting-
//! allocator test in `tests/alloc.rs`).

use crate::profiler::PoolProfiler;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Runs `kernel` in lock-step rounds over `threads` workers until
/// `control` breaks.
///
/// * `kernel(round, worker)` computes worker `worker`'s chunk of round
///   `round`; it runs concurrently on every worker and must only touch
///   data disjoint per worker (or read-only shared state).
/// * `control(round)` runs on the calling thread after every worker has
///   finished round `round` and before any worker starts round
///   `round + 1`; it has exclusive access to all shared state and
///   returns [`ControlFlow::Break`] to stop the pool.
///
/// With `threads <= 1` no threads are spawned and the rounds run inline
/// on the calling thread — the degenerate pool is just a loop, so
/// callers need no separate serial code path.
pub fn run_rounds<R, K, C>(threads: usize, kernel: K, control: C) -> R
where
    K: Fn(usize, usize) + Sync,
    C: FnMut(usize) -> ControlFlow<R>,
{
    run_rounds_profiled(threads, None, kernel, control)
}

/// [`run_rounds`] with an optional [`PoolProfiler`]: when present, every
/// worker times its kernel and barrier waits and the control thread
/// flushes the accumulated nanoseconds into the live registry once per
/// round. With `profiler == None` the timestamps are skipped entirely,
/// so the unprofiled path costs nothing extra.
pub(crate) fn run_rounds_profiled<R, K, C>(
    threads: usize,
    profiler: Option<&PoolProfiler>,
    kernel: K,
    mut control: C,
) -> R
where
    K: Fn(usize, usize) + Sync,
    C: FnMut(usize) -> ControlFlow<R>,
{
    if threads <= 1 {
        let mut round = 0usize;
        loop {
            match profiler {
                Some(p) => {
                    let t0 = Instant::now();
                    kernel(round, 0);
                    p.record_gather(0, t0.elapsed().as_nanos() as u64);
                    p.flush_round();
                }
                None => kernel(round, 0),
            }
            match control(round) {
                ControlFlow::Continue(()) => round += 1,
                ControlFlow::Break(result) => return result,
            }
        }
    }

    let barrier = Barrier::new(threads);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for worker in 1..threads {
            let (barrier, stop, kernel) = (&barrier, &stop, &kernel);
            scope.spawn(move || {
                let mut round = 0usize;
                loop {
                    // Start-of-round handoff: the control thread has
                    // finished deciding; `stop` is stable until the next
                    // end-of-round barrier.
                    match profiler {
                        Some(p) => {
                            let t0 = Instant::now();
                            barrier.wait();
                            p.record_barrier(worker, t0.elapsed().as_nanos() as u64);
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let t1 = Instant::now();
                            kernel(round, worker);
                            p.record_gather(worker, t1.elapsed().as_nanos() as u64);
                            round += 1;
                            let t2 = Instant::now();
                            barrier.wait();
                            p.record_barrier(worker, t2.elapsed().as_nanos() as u64);
                        }
                        None => {
                            barrier.wait();
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            kernel(round, worker);
                            round += 1;
                            barrier.wait();
                        }
                    }
                }
            });
        }

        let mut round = 0usize;
        loop {
            barrier.wait(); // release everyone into the round
            match profiler {
                Some(p) => {
                    let t0 = Instant::now();
                    kernel(round, 0);
                    p.record_gather(0, t0.elapsed().as_nanos() as u64);
                    let t1 = Instant::now();
                    barrier.wait(); // all chunks of this round are done
                    p.record_barrier(0, t1.elapsed().as_nanos() as u64);
                    // Flushing here races only with the *other* workers
                    // recording their own end-of-round waits; a wait that
                    // lands after the flush is attributed to the next
                    // round, which windowed series tolerate.
                    p.flush_round();
                }
                None => {
                    kernel(round, 0);
                    barrier.wait(); // all chunks of this round are done
                }
            }
            match control(round) {
                ControlFlow::Continue(()) => round += 1,
                ControlFlow::Break(result) => {
                    stop.store(true, Ordering::Release);
                    // One extra start-of-round wait lets the workers
                    // observe `stop` and exit; every thread has then
                    // waited the same number of times, so the barrier
                    // generations stay aligned.
                    barrier.wait();
                    break result;
                }
            }
        }
    })
}

/// An unchecked shared view of a mutable `f64` buffer, for kernels whose
/// workers write provably disjoint ranges.
///
/// Rust's borrow checker cannot express "each worker mutates its own
/// range of this buffer this round, and the roles of the read/write
/// buffers swap every round". `SharedSlice` erases the borrow and moves
/// the proof obligation to the call sites inside this crate (every use
/// documents why its access is disjoint); the barriers in [`run_rounds`]
/// provide the cross-round happens-before edges.
pub(crate) struct SharedSlice {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: access discipline is enforced by the kernels (disjoint write
// ranges within a round) and run_rounds' barriers (ordering across
// rounds); the raw pointer itself is freely sendable.
unsafe impl Send for SharedSlice {}
unsafe impl Sync for SharedSlice {}

impl SharedSlice {
    /// Wraps `data`. The caller must keep the backing storage alive and
    /// unmoved for the wrapper's whole lifetime (guaranteed by scoping
    /// the wrapper inside the borrow in the solvers).
    pub(crate) fn new(data: &mut [f64]) -> SharedSlice {
        SharedSlice { ptr: data.as_mut_ptr(), len: data.len() }
    }

    /// The whole buffer, read-only.
    ///
    /// # Safety
    /// No concurrent writer may overlap the returned view during reads;
    /// the solvers guarantee this by only reading the round's read
    /// buffer, which no kernel writes that round.
    pub(crate) unsafe fn as_slice(&self) -> &[f64] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }

    /// Mutable view of `lo..hi`.
    ///
    /// # Safety
    /// Ranges handed to concurrent workers must be pairwise disjoint,
    /// and nothing may read the written range until after the
    /// end-of-round barrier.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [f64] {
        debug_assert!(lo <= hi && hi <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_rounds_until_control_breaks() {
        // 4 workers × 5 rounds, each worker stamps (round, worker).
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let rounds = run_rounds(
            4,
            |_round, worker| {
                hits[worker].fetch_add(1, Ordering::Relaxed);
            },
            |round| {
                if round + 1 == 5 {
                    ControlFlow::Break(round + 1)
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(rounds, 5);
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 5);
        }
    }

    #[test]
    fn control_sees_all_chunks_of_the_round() {
        // Workers add their chunk sums; control checks the total is
        // complete every round (the end-of-round barrier is real).
        let total = AtomicUsize::new(0);
        let ok = run_rounds(
            3,
            |_round, _worker| {
                total.fetch_add(1, Ordering::Relaxed);
            },
            |round| {
                let seen = total.load(Ordering::Relaxed);
                if seen != (round + 1) * 3 {
                    return ControlFlow::Break(false);
                }
                if round == 9 {
                    ControlFlow::Break(true)
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert!(ok);
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut log = Vec::new();
        let out = run_rounds(
            1,
            |round, worker| {
                assert_eq!(worker, 0);
                let _ = round;
            },
            |round| {
                log.push(round);
                if round == 2 {
                    ControlFlow::Break("done")
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(out, "done");
        assert_eq!(log, vec![0, 1, 2]);
    }

    #[test]
    fn break_on_first_round_releases_workers() {
        let r = run_rounds(8, |_, _| {}, |_| ControlFlow::Break(42));
        assert_eq!(r, 42);
    }

    #[test]
    fn shared_slice_round_trips() {
        let mut data = vec![1.0, 2.0, 3.0, 4.0];
        let shared = SharedSlice::new(&mut data);
        // SAFETY: single-threaded test, no aliasing reads during writes.
        unsafe {
            shared.range_mut(1, 3).copy_from_slice(&[9.0, 8.0]);
            assert_eq!(shared.as_slice(), &[1.0, 9.0, 8.0, 4.0]);
        }
        assert_eq!(data, vec![1.0, 9.0, 8.0, 4.0]);
    }
}
