//! Persistent worker pool advanced by a single sense-reversing barrier.
//!
//! The original parallel solver spawned fresh scoped threads **twice per
//! Jacobi sweep**; the first pool replaced that with threads spawned once
//! per solve but still crossed a [`std::sync::Barrier`] **twice per
//! round** (start-of-round release, end-of-round reunion) — two futex
//! round-trips per sweep on every worker. This version cuts that to one
//! synchronization point per round:
//!
//! ```text
//! workers:  kernel(r, w) ─ arrive ─ spin on phase ─ kernel(r+1, w) ─ …
//! control:  kernel(r, 0) ─ await arrivals ─ decide ─ publish phase ─ …
//! ```
//!
//! Workers run their chunk, increment an arrival counter (release), and
//! spin — briefly busy, then yielding — on a shared **phase word**. The
//! control thread (the caller, participating as worker 0) waits for
//! `threads − 1` arrivals (acquire), runs the control closure with
//! exclusive access to all shared state, and publishes the next phase
//! value (release), which simultaneously releases every worker into the
//! next round. The phase word's low bit is the stop flag, so shutdown
//! needs no extra crossing. Acquire/release pairs on the arrival counter
//! and phase word provide the same happens-before edges the two barriers
//! did: kernel writes → control reads, control writes → next round's
//! kernel reads.
//!
//! Round-parity buffers compose with this unchanged: round `r` reads
//! buffer `r mod 2` and writes buffer `(r+1) mod 2`, and the single
//! handoff still separates every round from the next.
//!
//! The pool performs no allocation after the workers are spawned;
//! combined with hoisted kernel scratch buffers this keeps the solver
//! loops allocation-free per iteration (asserted by the counting-
//! allocator test in `tests/alloc.rs`).

use crate::profiler::PoolProfiler;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Spins briefly, then yields: the pool targets oversubscribed hosts
/// (CI runs 4 workers on 1 core), where unbounded busy-waiting would
/// starve the very thread being waited on.
#[inline]
fn spin_wait(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Runs `kernel` in lock-step rounds over `threads` workers until
/// `control` breaks.
///
/// * `kernel(round, worker)` computes worker `worker`'s chunk of round
///   `round`; it runs concurrently on every worker and must only touch
///   data disjoint per worker (or read-only shared state).
/// * `control(round)` runs on the calling thread after every worker has
///   finished round `round` and before any worker starts round
///   `round + 1`; it has exclusive access to all shared state and
///   returns [`ControlFlow::Break`] to stop the pool.
///
/// With `threads <= 1` no threads are spawned and the rounds run inline
/// on the calling thread — the degenerate pool is just a loop, so
/// callers need no separate serial code path.
pub fn run_rounds<R, K, C>(threads: usize, kernel: K, control: C) -> R
where
    K: Fn(usize, usize) + Sync,
    C: FnMut(usize) -> ControlFlow<R>,
{
    run_rounds_profiled(threads, None, kernel, control)
}

/// [`run_rounds`] with an optional [`PoolProfiler`]: when present, every
/// worker times its kernel and its wait at the round handoff, and the
/// control thread flushes the accumulated nanoseconds into the live
/// registry once per round (after the control closure, so merge-phase
/// timing recorded inside `control` lands in the same round's flush).
/// With `profiler == None` the timestamps are skipped entirely, so the
/// unprofiled path costs nothing extra.
pub(crate) fn run_rounds_profiled<R, K, C>(
    threads: usize,
    profiler: Option<&PoolProfiler>,
    kernel: K,
    mut control: C,
) -> R
where
    K: Fn(usize, usize) + Sync,
    C: FnMut(usize) -> ControlFlow<R>,
{
    if threads <= 1 {
        let mut round = 0usize;
        loop {
            match profiler {
                Some(p) => {
                    let t0 = Instant::now();
                    kernel(round, 0);
                    p.record_gather(0, t0.elapsed().as_nanos() as u64);
                }
                None => kernel(round, 0),
            }
            let decision = control(round);
            if let Some(p) = profiler {
                p.flush_round();
            }
            match decision {
                ControlFlow::Continue(()) => round += 1,
                ControlFlow::Break(result) => return result,
            }
        }
    }

    // Sense-reversing barrier state. `arrived` counts workers that have
    // finished the current round; `phase` advances by 2 per round, its
    // low bit is the stop flag. Workers detect a new round by the value
    // changing, so no reset of their view is ever needed.
    let arrived = AtomicUsize::new(0);
    let phase = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 1..threads {
            let (arrived, phase, kernel) = (&arrived, &phase, &kernel);
            scope.spawn(move || {
                let mut round = 0usize;
                let mut seen = 0usize;
                loop {
                    match profiler {
                        Some(p) => {
                            let t0 = Instant::now();
                            kernel(round, worker);
                            p.record_gather(worker, t0.elapsed().as_nanos() as u64);
                        }
                        None => kernel(round, worker),
                    }
                    // Release pairs with the control thread's acquire
                    // read: all kernel writes of this round are visible
                    // once the count is observed complete.
                    arrived.fetch_add(1, Ordering::Release);
                    let wait_t0 = profiler.map(|_| Instant::now());
                    let mut spins = 0u32;
                    let next = loop {
                        let v = phase.load(Ordering::Acquire);
                        if v != seen {
                            break v;
                        }
                        spin_wait(&mut spins);
                    };
                    if let (Some(p), Some(t0)) = (profiler, wait_t0) {
                        p.record_barrier(worker, t0.elapsed().as_nanos() as u64);
                    }
                    seen = next;
                    if next & 1 == 1 {
                        break;
                    }
                    round += 1;
                }
            });
        }

        let mut round = 0usize;
        let mut phase_val = 0usize;
        loop {
            match profiler {
                Some(p) => {
                    let t0 = Instant::now();
                    kernel(round, 0);
                    p.record_gather(0, t0.elapsed().as_nanos() as u64);
                }
                None => kernel(round, 0),
            }
            // Acquire pairs with every worker's release increment: once
            // all threads − 1 arrivals are visible, so are their chunks.
            let wait_t0 = profiler.map(|_| Instant::now());
            let mut spins = 0u32;
            while arrived.load(Ordering::Acquire) != threads - 1 {
                spin_wait(&mut spins);
            }
            if let (Some(p), Some(t0)) = (profiler, wait_t0) {
                p.record_barrier(0, t0.elapsed().as_nanos() as u64);
            }
            // Reset before publishing the phase: workers re-arm their
            // arrival only after observing the new phase value.
            arrived.store(0, Ordering::Relaxed);
            let decision = control(round);
            if let Some(p) = profiler {
                // After control so merge timing recorded inside the
                // control closure lands in this round's flush; workers'
                // handoff waits may land in the next round's, which
                // windowed series tolerate.
                p.flush_round();
            }
            match decision {
                ControlFlow::Continue(()) => {
                    phase_val += 2;
                    // Release publishes the control closure's writes
                    // (convergence flags, merged rows) to every worker.
                    phase.store(phase_val, Ordering::Release);
                    round += 1;
                }
                ControlFlow::Break(result) => {
                    phase.store(phase_val + 1, Ordering::Release);
                    break result;
                }
            }
        }
    })
}

/// An unchecked shared view of a mutable `f64` buffer, for kernels whose
/// workers write provably disjoint ranges.
///
/// Rust's borrow checker cannot express "each worker mutates its own
/// range of this buffer this round, and the roles of the read/write
/// buffers swap every round". `SharedSlice` erases the borrow and moves
/// the proof obligation to the call sites inside this crate (every use
/// documents why its access is disjoint); the round handoff in
/// [`run_rounds`] provides the cross-round happens-before edges.
pub(crate) struct SharedSlice {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: access discipline is enforced by the kernels (disjoint write
// ranges within a round) and run_rounds' phase handoff (ordering across
// rounds); the raw pointer itself is freely sendable.
unsafe impl Send for SharedSlice {}
unsafe impl Sync for SharedSlice {}

impl SharedSlice {
    /// Wraps `data`. The caller must keep the backing storage alive and
    /// unmoved for the wrapper's whole lifetime (guaranteed by scoping
    /// the wrapper inside the borrow in the solvers).
    pub(crate) fn new(data: &mut [f64]) -> SharedSlice {
        SharedSlice { ptr: data.as_mut_ptr(), len: data.len() }
    }

    /// The whole buffer, read-only.
    ///
    /// # Safety
    /// No concurrent writer may overlap the returned view during reads;
    /// the solvers guarantee this by only reading the round's read
    /// buffer, which no kernel writes that round.
    pub(crate) unsafe fn as_slice(&self) -> &[f64] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }

    /// Mutable view of `lo..hi`.
    ///
    /// # Safety
    /// Ranges handed to concurrent workers must be pairwise disjoint,
    /// and nothing may read the written range until after the round's
    /// handoff.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [f64] {
        debug_assert!(lo <= hi && hi <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_rounds_until_control_breaks() {
        // 4 workers × 5 rounds, each worker stamps (round, worker).
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let rounds = run_rounds(
            4,
            |_round, worker| {
                hits[worker].fetch_add(1, Ordering::Relaxed);
            },
            |round| {
                if round + 1 == 5 {
                    ControlFlow::Break(round + 1)
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(rounds, 5);
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 5);
        }
    }

    #[test]
    fn control_sees_all_chunks_of_the_round() {
        // Workers add their chunk sums; control checks the total is
        // complete every round (the arrival handoff is a real barrier).
        let total = AtomicUsize::new(0);
        let ok = run_rounds(
            3,
            |_round, _worker| {
                total.fetch_add(1, Ordering::Relaxed);
            },
            |round| {
                let seen = total.load(Ordering::Relaxed);
                if seen != (round + 1) * 3 {
                    return ControlFlow::Break(false);
                }
                if round == 9 {
                    ControlFlow::Break(true)
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert!(ok);
    }

    #[test]
    fn workers_do_not_run_ahead_of_control() {
        // A worker must not start round r+1 before control finished
        // round r: control records the per-round totals it observed;
        // each must be exactly one round's worth of increments.
        let total = AtomicUsize::new(0);
        let mut observed = Vec::new();
        let rounds = 50usize;
        run_rounds(
            4,
            |_round, _worker| {
                total.fetch_add(1, Ordering::Relaxed);
            },
            |round| {
                observed.push(total.load(Ordering::Relaxed));
                if round + 1 == rounds {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        let expected: Vec<usize> = (1..=rounds).map(|r| r * 4).collect();
        assert_eq!(observed, expected);
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut log = Vec::new();
        let out = run_rounds(
            1,
            |round, worker| {
                assert_eq!(worker, 0);
                let _ = round;
            },
            |round| {
                log.push(round);
                if round == 2 {
                    ControlFlow::Break("done")
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(out, "done");
        assert_eq!(log, vec![0, 1, 2]);
    }

    #[test]
    fn break_on_first_round_releases_workers() {
        let r = run_rounds(8, |_, _| {}, |_| ControlFlow::Break(42));
        assert_eq!(r, 42);
    }

    #[test]
    fn many_rounds_stay_in_lock_step() {
        // Stress the phase handoff across enough rounds to surface a
        // missed-wakeup or double-release bug as a count mismatch.
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        run_rounds(
            3,
            |_round, worker| {
                hits[worker].fetch_add(1, Ordering::Relaxed);
            },
            |round| if round == 999 { ControlFlow::Break(()) } else { ControlFlow::Continue(()) },
        );
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1000);
        }
    }

    #[test]
    fn shared_slice_round_trips() {
        let mut data = vec![1.0, 2.0, 3.0, 4.0];
        let shared = SharedSlice::new(&mut data);
        // SAFETY: single-threaded test, no aliasing reads during writes.
        unsafe {
            shared.range_mut(1, 3).copy_from_slice(&[9.0, 8.0]);
            assert_eq!(shared.as_slice(), &[1.0, 9.0, 8.0, 4.0]);
        }
        assert_eq!(data, vec![1.0, 9.0, 8.0, 4.0]);
    }
}
