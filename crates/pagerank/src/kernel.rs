//! Gather-kernel dispatch: scalar vs 4-wide unrolled inner loops.
//!
//! The hot loop of every pooled solver is the fused gather
//! `acc[j] += p[x]·coef[x]` over a row's in-edge sources. A strictly
//! sequential accumulation chains every add through one register, so the
//! ~4-cycle FP-add latency — not memory bandwidth — bounds throughput on
//! rows with many in-edges (which degree ordering concentrates at the
//! front of the node range). [`KernelKind::Unrolled4`] breaks the chain:
//! edges are consumed four at a time into **four independent register
//! accumulator banks** that are only combined once per row, giving the
//! out-of-order core four parallel dependency chains (the same trick a
//! hand-vectorized horizontal-sum kernel uses, expressed in portable
//! scalar code the autovectorizer can also lift to SIMD).
//!
//! Reproducibility rules:
//!
//! * the unrolled edge→bank assignment depends only on an edge's position
//!   within the row slice — never on the column count `K` — so a batched
//!   column stays bit-for-bit identical to the equivalent single-RHS
//!   solve, exactly as the scalar kernel guarantees;
//! * rows with fewer than [`UNROLL_CUTOFF`] (16) in-edges fall through
//!   to the scalar loop — their chains are already shorter than the
//!   FP-add pipeline — so on graphs whose maximum in-degree is below the
//!   cutoff the two kernels agree **bit-exactly** (the property-test
//!   suite pins this);
//! * for wider rows the two kernels differ only by re-association of the
//!   same f64 terms, bounded well below the solvers' 1e-12 comparison
//!   tolerance.
//!
//! Dispatch is runtime (one enum match per row piece, trivially
//! predicted), so a single binary can run either kernel — `--kernel
//! scalar` reproduces historical results while `Auto` takes the fast
//! path.

use spammass_graph::NodeId;

/// Which gather kernel the pooled solvers run. Selected via
/// [`PageRankConfig::kernel`](crate::PageRankConfig::kernel) and the CLI
/// `--kernel` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Let the engine choose; currently always the unrolled kernel.
    #[default]
    Auto,
    /// Strictly sequential per-row accumulation — the historical kernel,
    /// kept as the reproducibility baseline.
    Scalar,
    /// 4-wide manual unrolling with independent register accumulators.
    Unrolled4,
}

impl KernelKind {
    /// Canonical lowercase name (CLI value, telemetry field).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Auto => "auto",
            KernelKind::Scalar => "scalar",
            KernelKind::Unrolled4 => "unrolled4",
        }
    }

    /// Resolves `Auto` to the concrete kernel the engine will run.
    pub(crate) fn resolve(self) -> ResolvedKernel {
        match self {
            KernelKind::Scalar => ResolvedKernel::Scalar,
            KernelKind::Auto | KernelKind::Unrolled4 => ResolvedKernel::Unrolled4,
        }
    }
}

impl std::str::FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<KernelKind, String> {
        match s {
            "auto" => Ok(KernelKind::Auto),
            "scalar" => Ok(KernelKind::Scalar),
            "unrolled4" => Ok(KernelKind::Unrolled4),
            other => Err(format!("unknown kernel {other:?} (expected auto, scalar or unrolled4)")),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A concrete kernel choice after `Auto` resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolvedKernel {
    Scalar,
    Unrolled4,
}

impl ResolvedKernel {
    /// Name recorded in the `pagerank.pool.sizing` event.
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            ResolvedKernel::Scalar => "scalar",
            ResolvedKernel::Unrolled4 => "unrolled4",
        }
    }
}

/// Adds `Σ read[x·K+j]·coef[x]` over `srcs` into `acc`, dispatching on
/// `kind`. `read` is the interleaved `n×K` score matrix, `coef` the
/// per-source coefficient table `c/out(x)`.
#[inline(always)]
pub(crate) fn gather_row<const K: usize>(
    kind: ResolvedKernel,
    read: &[f64],
    coef: &[f64],
    srcs: &[NodeId],
    acc: &mut [f64; K],
) {
    match kind {
        ResolvedKernel::Scalar => gather_row_scalar(read, coef, srcs, acc),
        ResolvedKernel::Unrolled4 => gather_row_unrolled4(read, coef, srcs, acc),
    }
}

/// Sequential accumulation in edge order — the bit-exact baseline.
#[inline(always)]
pub(crate) fn gather_row_scalar<const K: usize>(
    read: &[f64],
    coef: &[f64],
    srcs: &[NodeId],
    acc: &mut [f64; K],
) {
    for s in srcs {
        let x = s.index();
        // SAFETY: CSR source ids are < node_count by graph construction;
        // callers size coef to node_count and read to node_count·K.
        unsafe {
            let w = *coef.get_unchecked(x);
            let row = read.get_unchecked(x * K..x * K + K);
            for j in 0..K {
                acc[j] += row[j] * w;
            }
        }
    }
}

/// Rows below this in-degree take the scalar loop: their accumulation
/// chain is already shorter than the FP-add pipeline, so bank setup and
/// the final combine would cost more than the broken chain saves. On
/// power-law hosts graphs this routes the long tail of body rows
/// through the cheap path while hub rows — where the serial chain
/// actually binds — get the banks.
const UNROLL_CUTOFF: usize = 16;

/// Four independent accumulator banks over chunks of four edges; the
/// trailing `len % 4` edges land in banks 0.. by position, and the banks
/// combine pairwise `(b0+b1)+(b2+b3)` into `acc`. Rows shorter than
/// [`UNROLL_CUTOFF`] edges run the scalar loop unchanged, so short-row
/// results are bit-exact with [`gather_row_scalar`]. The edge→bank
/// assignment and combine order are independent of `K`, which keeps
/// batched columns bit-identical to single-RHS solves.
#[inline(always)]
// `j` strides four banks and four read rows at once; an iterator over
// any single one of them would obscure the lockstep access pattern.
#[allow(clippy::needless_range_loop)]
pub(crate) fn gather_row_unrolled4<const K: usize>(
    read: &[f64],
    coef: &[f64],
    srcs: &[NodeId],
    acc: &mut [f64; K],
) {
    let len = srcs.len();
    if len < UNROLL_CUTOFF {
        gather_row_scalar(read, coef, srcs, acc);
        return;
    }
    let mut banks = [[0.0f64; K]; 4];
    let mut i = 0usize;
    while i + 4 <= len {
        // SAFETY: i+3 < len by the loop bound; source ids are <
        // node_count (CSR invariant), coef.len() == node_count and
        // read.len() == node_count·K.
        unsafe {
            let x0 = srcs.get_unchecked(i).index();
            let x1 = srcs.get_unchecked(i + 1).index();
            let x2 = srcs.get_unchecked(i + 2).index();
            let x3 = srcs.get_unchecked(i + 3).index();
            let w0 = *coef.get_unchecked(x0);
            let w1 = *coef.get_unchecked(x1);
            let w2 = *coef.get_unchecked(x2);
            let w3 = *coef.get_unchecked(x3);
            for j in 0..K {
                banks[0][j] += *read.get_unchecked(x0 * K + j) * w0;
                banks[1][j] += *read.get_unchecked(x1 * K + j) * w1;
                banks[2][j] += *read.get_unchecked(x2 * K + j) * w2;
                banks[3][j] += *read.get_unchecked(x3 * K + j) * w3;
            }
        }
        i += 4;
    }
    for (bank, s) in banks.iter_mut().zip(&srcs[i..]) {
        let x = s.index();
        let w = coef[x];
        let row = &read[x * K..x * K + K];
        for j in 0..K {
            bank[j] += row[j] * w;
        }
    }
    let [b0, b1, b2, b3] = banks;
    for j in 0..K {
        acc[j] += (b0[j] + b1[j]) + (b2[j] + b3[j]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srcs(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in [KernelKind::Auto, KernelKind::Scalar, KernelKind::Unrolled4] {
            assert_eq!(kind.as_str().parse::<KernelKind>().unwrap(), kind);
        }
        assert!("avx512".parse::<KernelKind>().is_err());
    }

    #[test]
    fn auto_resolves_to_unrolled() {
        assert_eq!(KernelKind::Auto.resolve(), ResolvedKernel::Unrolled4);
        assert_eq!(KernelKind::Scalar.resolve(), ResolvedKernel::Scalar);
    }

    #[test]
    fn short_rows_are_bit_exact_across_kernels() {
        let read = [0.125f64, 0.5, 0.0625, 0.25, 0.75];
        let coef = [0.1f64, 0.2, 0.3, 0.4, 0.5];
        for ids in [&[][..], &[2][..], &[0, 4][..], &[3, 1, 0][..]] {
            let s = srcs(ids);
            let mut a = [1.0f64];
            let mut b = [1.0f64];
            gather_row_scalar(&read, &coef, &s, &mut a);
            gather_row_unrolled4(&read, &coef, &s, &mut b);
            assert_eq!(a, b, "row {ids:?} must be bit-exact");
        }
    }

    #[test]
    fn long_rows_agree_within_reassociation_error() {
        let n = 37usize;
        let read: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let coef: Vec<f64> = (0..n).map(|i| 0.85 / (i as f64 + 2.0)).collect();
        let s = srcs(&(0..n as u32).collect::<Vec<_>>());
        let mut a = [0.5f64];
        let mut b = [0.5f64];
        gather_row_scalar(&read, &coef, &s, &mut a);
        gather_row_unrolled4(&read, &coef, &s, &mut b);
        assert!((a[0] - b[0]).abs() < 1e-14, "{} vs {}", a[0], b[0]);
    }

    #[test]
    fn bank_order_is_independent_of_column_count() {
        // Column 0 of a K=2 gather must equal the K=1 gather bit-for-bit:
        // duplicate every score row into two interleaved columns and
        // compare.
        let n = 23usize;
        let read1: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 / 7.0).collect();
        let read2: Vec<f64> = read1.iter().flat_map(|&v| [v, 2.0 * v]).collect();
        let coef: Vec<f64> = (0..n).map(|i| 0.85 / (i as f64 + 1.0)).collect();
        let s = srcs(&(0..n as u32).rev().collect::<Vec<_>>());
        let mut one = [0.0f64];
        let mut two = [0.0f64; 2];
        gather_row_unrolled4(&read1, &coef, &s, &mut one);
        gather_row_unrolled4(&read2, &coef, &s, &mut two);
        assert_eq!(one[0], two[0]);
    }
}
