//! Property-based invariants of linear PageRank.

use proptest::prelude::*;
use spammass_graph::{Graph, GraphBuilder, NodeId};
use spammass_pagerank::contribution::{contribution_of_node, contribution_of_set};
use spammass_pagerank::jacobi::solve_jacobi_dense;
use spammass_pagerank::{JumpVector, PageRankConfig};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=25).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..80).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (f, t) in edges {
                if f != t {
                    b.add_edge(NodeId(f), NodeId(t));
                }
            }
            b.build()
        })
    })
}

fn cfg() -> PageRankConfig {
    PageRankConfig::default().tolerance(1e-14).max_iterations(20_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Elementwise bounds: `(1−c)·v ≤ p` and `‖p‖ ≤ ‖v‖`.
    #[test]
    fn score_bounds(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let r = solve_jacobi_dense(&g, &v, &cfg()).unwrap();
        prop_assert!(r.converged);
        let c = 0.85;
        for (vi, si) in v.iter().zip(&r.scores) {
            prop_assert!(*si >= (1.0 - c) * vi - 1e-12);
        }
        let total: f64 = r.scores.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9, "norm {total}");
    }

    /// Mass conservation: the jump input equals the retained mass plus
    /// the mass lost at dangling nodes, iteration by iteration — verified
    /// at the fixed point: ‖p‖ = ‖v‖ − c·(dangling mass of p)... i.e.
    /// ‖p‖ = (1−c)‖v‖ + c(‖p‖ − dᵀp) rearranged.
    #[test]
    fn mass_balance_at_fixed_point(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let r = solve_jacobi_dense(&g, &v, &cfg()).unwrap();
        let norm_p: f64 = r.scores.iter().sum();
        let dangling: f64 = g.dangling_nodes().map(|x| r.scores[x.index()]).sum();
        let norm_v: f64 = v.iter().sum();
        // p = c·Tᵀp + (1−c)v  ⇒  ‖p‖ = c(‖p‖ − dᵀp) + (1−c)‖v‖.
        let lhs = norm_p;
        let rhs = 0.85 * (norm_p - dangling) + 0.15 * norm_v;
        prop_assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    /// A node with no inlinks scores exactly `(1−c)·v_x` (scaled: 1).
    #[test]
    fn no_inlink_nodes_score_baseline(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let r = solve_jacobi_dense(&g, &v, &cfg()).unwrap();
        for x in g.nodes() {
            if g.in_degree(x) == 0 {
                prop_assert!((r.scores[x.index()] - 0.15 * v[x.index()]).abs() < 1e-12);
            }
        }
    }

    /// Jacobi is a c-contraction: successive residuals shrink at least
    /// geometrically with factor c. The recorded history may be thinned
    /// (stride > 1), so compare across the iteration gap: between samples
    /// k iterations apart the residual must shrink by at least 0.85^k.
    #[test]
    fn residual_history_contracts(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let r = solve_jacobi_dense(&g, &v, &cfg()).unwrap();
        prop_assert_eq!(r.residual_history.observed(), r.iterations);
        prop_assert_eq!(r.residual_history.last(), Some(r.residual));
        for w in r.residual_history.series().windows(2) {
            let (i0, r0) = w[0];
            let (i1, r1) = w[1];
            let bound = 0.85f64.powi((i1 - i0) as i32) * r0 + 1e-15;
            prop_assert!(
                r1 <= bound,
                "residuals must contract: iter {} ({}) -> iter {} ({})",
                i0, r0, i1, r1
            );
        }
    }

    /// Set contribution equals the sum of member contributions for random
    /// subsets (Theorem 2 + linearity).
    #[test]
    fn set_contribution_additivity(g in arb_graph(), mask in proptest::collection::vec(any::<bool>(), 25)) {
        let n = g.node_count();
        let set: Vec<NodeId> = g.nodes().filter(|x| mask[x.index()]).collect();
        prop_assume!(!set.is_empty());
        let config = cfg();
        let q_set = contribution_of_set(&g, &set, &config).unwrap();
        let mut summed = vec![0.0f64; n];
        for &x in &set {
            let q = contribution_of_node(&g, x, 1.0 / n as f64, &config).unwrap();
            for (s, qy) in summed.iter_mut().zip(&q) {
                *s += qy;
            }
        }
        for i in 0..n {
            prop_assert!((q_set[i] - summed[i]).abs() < 1e-10);
        }
    }

    /// Damping sweep: as c → 0, scores approach the jump vector.
    #[test]
    fn damping_zero_limit(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let config = PageRankConfig::with_damping(1e-9).tolerance(1e-14).max_iterations(100);
        let r = solve_jacobi_dense(&g, &v, &config).unwrap();
        for (vi, si) in v.iter().zip(&r.scores) {
            prop_assert!((si - vi).abs() < 1e-6);
        }
    }
}
