//! Property-based invariants of linear PageRank.

use proptest::prelude::*;
use spammass_graph::{Graph, GraphBuilder, NodeId};
use spammass_pagerank::batch::{solve_batch, solve_batch_warm};
use spammass_pagerank::contribution::{contribution_of_node, contribution_of_set};
use spammass_pagerank::jacobi::{solve_jacobi_dense, solve_jacobi_dense_warm};
use spammass_pagerank::parallel::{solve_parallel_jacobi, solve_parallel_jacobi_dense_warm};
use spammass_pagerank::{EdgePartition, JumpVector, KernelKind, NodePartition, PageRankConfig};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=25).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..80).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (f, t) in edges {
                if f != t {
                    b.add_edge(NodeId(f), NodeId(t));
                }
            }
            b.build()
        })
    })
}

fn cfg() -> PageRankConfig {
    PageRankConfig::default().tolerance(1e-14).max_iterations(20_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Elementwise bounds: `(1−c)·v ≤ p` and `‖p‖ ≤ ‖v‖`.
    #[test]
    fn score_bounds(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let r = solve_jacobi_dense(&g, &v, &cfg()).unwrap();
        prop_assert!(r.converged);
        let c = 0.85;
        for (vi, si) in v.iter().zip(&r.scores) {
            prop_assert!(*si >= (1.0 - c) * vi - 1e-12);
        }
        let total: f64 = r.scores.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9, "norm {total}");
    }

    /// Mass conservation: the jump input equals the retained mass plus
    /// the mass lost at dangling nodes, iteration by iteration — verified
    /// at the fixed point: ‖p‖ = ‖v‖ − c·(dangling mass of p)... i.e.
    /// ‖p‖ = (1−c)‖v‖ + c(‖p‖ − dᵀp) rearranged.
    #[test]
    fn mass_balance_at_fixed_point(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let r = solve_jacobi_dense(&g, &v, &cfg()).unwrap();
        let norm_p: f64 = r.scores.iter().sum();
        let dangling: f64 = g.dangling_nodes().map(|x| r.scores[x.index()]).sum();
        let norm_v: f64 = v.iter().sum();
        // p = c·Tᵀp + (1−c)v  ⇒  ‖p‖ = c(‖p‖ − dᵀp) + (1−c)‖v‖.
        let lhs = norm_p;
        let rhs = 0.85 * (norm_p - dangling) + 0.15 * norm_v;
        prop_assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    /// A node with no inlinks scores exactly `(1−c)·v_x` (scaled: 1).
    #[test]
    fn no_inlink_nodes_score_baseline(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let r = solve_jacobi_dense(&g, &v, &cfg()).unwrap();
        for x in g.nodes() {
            if g.in_degree(x) == 0 {
                prop_assert!((r.scores[x.index()] - 0.15 * v[x.index()]).abs() < 1e-12);
            }
        }
    }

    /// Jacobi is a c-contraction: successive residuals shrink at least
    /// geometrically with factor c. The recorded history may be thinned
    /// (stride > 1), so compare across the iteration gap: between samples
    /// k iterations apart the residual must shrink by at least 0.85^k.
    #[test]
    fn residual_history_contracts(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let r = solve_jacobi_dense(&g, &v, &cfg()).unwrap();
        prop_assert_eq!(r.residual_history.observed(), r.iterations);
        prop_assert_eq!(r.residual_history.last(), Some(r.residual));
        for w in r.residual_history.series().windows(2) {
            let (i0, r0) = w[0];
            let (i1, r1) = w[1];
            let bound = 0.85f64.powi((i1 - i0) as i32) * r0 + 1e-15;
            prop_assert!(
                r1 <= bound,
                "residuals must contract: iter {} ({}) -> iter {} ({})",
                i0, r0, i1, r1
            );
        }
    }

    /// Set contribution equals the sum of member contributions for random
    /// subsets (Theorem 2 + linearity).
    #[test]
    fn set_contribution_additivity(g in arb_graph(), mask in proptest::collection::vec(any::<bool>(), 25)) {
        let n = g.node_count();
        let set: Vec<NodeId> = g.nodes().filter(|x| mask[x.index()]).collect();
        prop_assume!(!set.is_empty());
        let config = cfg();
        let q_set = contribution_of_set(&g, &set, &config).unwrap();
        let mut summed = vec![0.0f64; n];
        for &x in &set {
            let q = contribution_of_node(&g, x, 1.0 / n as f64, &config).unwrap();
            for (s, qy) in summed.iter_mut().zip(&q) {
                *s += qy;
            }
        }
        for i in 0..n {
            prop_assert!((q_set[i] - summed[i]).abs() < 1e-10);
        }
    }

    /// Damping sweep: as c → 0, scores approach the jump vector.
    #[test]
    fn damping_zero_limit(g in arb_graph()) {
        let n = g.node_count();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let config = PageRankConfig::with_damping(1e-9).tolerance(1e-14).max_iterations(100);
        let r = solve_jacobi_dense(&g, &v, &config).unwrap();
        for (vi, si) in v.iter().zip(&r.scores) {
            prop_assert!((si - vi).abs() < 1e-6);
        }
    }

    /// `solve_batch` matches k independent `solve_parallel_jacobi` runs
    /// to ≤ 1e-12 per node on arbitrary graphs with mixed jump shapes.
    #[test]
    fn batch_matches_independent_solves(g in arb_graph(), mask in proptest::collection::vec(any::<bool>(), 25)) {
        let n = g.node_count();
        let core: Vec<NodeId> = g.nodes().filter(|x| mask[x.index()]).collect();
        prop_assume!(!core.is_empty());
        let first = core[0];
        let jumps = vec![
            JumpVector::Uniform,
            JumpVector::core(core, n),
            JumpVector::SingleNode { node: first, mass: 1.0 / n as f64 },
        ];
        let config = cfg();
        let batch = solve_batch(&g, &jumps, &config).unwrap();
        prop_assert_eq!(batch.len(), jumps.len());
        for (jump, col) in jumps.iter().zip(&batch) {
            prop_assert!(col.converged);
            let solo = solve_parallel_jacobi(&g, jump, &config).unwrap();
            for i in 0..n {
                prop_assert!(
                    (solo.scores[i] - col.scores[i]).abs() <= 1e-12,
                    "node {}: {} vs {}", i, solo.scores[i], col.scores[i]
                );
            }
        }
    }

    /// Edge-balanced partitions cover `0..n` disjointly for arbitrary
    /// graphs and part counts, and every chunk's in-edge weight respects
    /// the contiguous-cut optimum `total/parts + w_max (+1 rounding)`.
    #[test]
    fn edge_balanced_partition_covers_and_bounds_skew(g in arb_graph(), parts in 1usize..=9) {
        let n = g.node_count();
        let p = NodePartition::edge_balanced(&g, parts);
        prop_assert_eq!(p.len(), parts);
        let mut next = 0usize;
        for r in p.ranges() {
            prop_assert_eq!(r.start, next); // contiguous ⇒ disjoint
            prop_assert!(r.end >= r.start);
            next = r.end;
        }
        prop_assert_eq!(next, n); // exhaustive
        let total = g.edge_count() + n;
        let w_max = g.nodes().map(|y| g.in_degree(y) + 1).max().unwrap_or(1);
        let edges = p.chunk_in_edges(&g);
        prop_assert_eq!(edges.iter().sum::<usize>(), g.edge_count());
        for (k, r) in p.ranges().enumerate() {
            let weight = edges[k] + r.len();
            prop_assert!(
                weight <= total / parts + w_max + 1,
                "chunk {} weight {} over bound ({} total, {} parts, {} w_max)",
                k, weight, total, parts, w_max
            );
        }
    }

    /// Warm starts land on the cold fixed point: the linear system has a
    /// unique solution and Jacobi contracts from any finite start, so a
    /// solve seeded with the *pre-delta* scores must agree with a cold
    /// solve of the perturbed graph to ≤ 1e-12 per node. Seeding with the
    /// exact fixed point can never take more sweeps than the cold solve.
    #[test]
    fn warm_start_converges_to_cold_fixed_point(g in arb_graph()) {
        let n = g.node_count();
        let config = cfg();
        let v = JumpVector::Uniform.materialize(n).unwrap();
        let before = solve_jacobi_dense(&g, &v, &config).unwrap();

        // Small delta: drop the lexicographically first edge (identity on
        // edgeless graphs, where warm == cold trivially).
        let first = g.edges().next();
        let perturbed = g.filter_edges(|f, t| Some((f, t)) != first);
        let cold = solve_jacobi_dense(&perturbed, &v, &config).unwrap();

        let warm = solve_jacobi_dense_warm(&perturbed, &v, Some(&before.scores), &config).unwrap();
        prop_assert!(warm.converged);
        for i in 0..n {
            prop_assert!(
                (warm.scores[i] - cold.scores[i]).abs() <= 1e-12,
                "node {}: warm {} vs cold {}", i, warm.scores[i], cold.scores[i]
            );
        }

        let settled =
            solve_jacobi_dense_warm(&perturbed, &v, Some(&cold.scores), &config).unwrap();
        prop_assert!(settled.iterations <= cold.iterations,
            "fixed-point seed took {} iterations vs cold {}", settled.iterations, cold.iterations);
        for i in 0..n {
            prop_assert!((settled.scores[i] - cold.scores[i]).abs() <= 1e-12);
        }
    }

    /// Warm starts behave identically across the pooled and batched
    /// solvers: seeding each column with its own cold fixed point
    /// reproduces the cold scores to ≤ 1e-12 without extra iterations.
    #[test]
    fn warm_start_batch_and_parallel_match_cold(g in arb_graph(), mask in proptest::collection::vec(any::<bool>(), 25)) {
        let n = g.node_count();
        let core: Vec<NodeId> = g.nodes().filter(|x| mask[x.index()]).collect();
        prop_assume!(!core.is_empty());
        let config = cfg();
        let jumps = vec![JumpVector::Uniform, JumpVector::core(core, n)];
        let cold = solve_batch(&g, &jumps, &config).unwrap();
        let seeds: Vec<Vec<f64>> = cold.iter().map(|r| r.scores.clone()).collect();

        let warm = solve_batch_warm(&g, &jumps, Some(&seeds), &config).unwrap();
        prop_assert_eq!(warm.len(), cold.len());
        for (c, w) in cold.iter().zip(&warm) {
            prop_assert!(w.converged);
            prop_assert!(w.iterations <= c.iterations,
                "warm column took {} iterations vs cold {}", w.iterations, c.iterations);
            for i in 0..n {
                prop_assert!((w.scores[i] - c.scores[i]).abs() <= 1e-12);
            }
        }

        let v = JumpVector::Uniform.materialize(n).unwrap();
        let warm_par =
            solve_parallel_jacobi_dense_warm(&g, &v, Some(&cold[0].scores), &config).unwrap();
        prop_assert!(warm_par.iterations <= cold[0].iterations);
        for i in 0..n {
            prop_assert!((warm_par.scores[i] - cold[0].scores[i]).abs() <= 1e-12);
        }
    }

    /// Edge-range partitions cut `0..m` into contiguous equal ranges and
    /// assign every destination row to exactly one worker interior **or**
    /// one merge entry, whose pieces tile the row's in-edges in worker
    /// order — for arbitrary graphs and part counts.
    #[test]
    fn edge_partition_owns_every_row_exactly_once(g in arb_graph(), parts in 1usize..=9) {
        let n = g.node_count();
        let m = g.edge_count();
        let p = EdgePartition::balanced(&g, parts);
        prop_assert_eq!(p.len(), parts);
        prop_assert_eq!(p.node_count(), n);
        // Edge ranges: contiguous, disjoint, exhaustive, equal to ±1.
        let mut next = 0usize;
        for w in 0..parts {
            let r = p.edge_range(w);
            prop_assert_eq!(r.start, next);
            next = r.end;
            let len = r.end - r.start;
            prop_assert!(len == m / parts || len == m.div_ceil(parts),
                "worker {} owns {} edges of {} over {} parts", w, len, m, parts);
        }
        prop_assert_eq!(next, m);
        // Row ownership: interior XOR merge entry, exactly once each.
        let mut owner = vec![0u32; n];
        for w in 0..parts {
            for y in p.interior(w) {
                owner[y] += 1;
            }
        }
        let offsets = g.in_offsets();
        for e in p.merge_entries() {
            owner[e.node] += 1;
            // The entry's pieces tile the row's in-edge range in order.
            let mut cursor = offsets[e.node] as usize;
            let mut last_w: Option<usize> = None;
            for &(w, slot) in &e.parts {
                prop_assert!(last_w.is_none_or(|lw| w > lw), "parts out of worker order");
                last_w = Some(w);
                let piece = p.pieces(w)[slot].as_ref().expect("merge entry names a live piece");
                prop_assert_eq!(piece.node, e.node);
                prop_assert_eq!(piece.edges.start, cursor);
                cursor = piece.edges.end;
            }
            prop_assert_eq!(cursor, offsets[e.node + 1] as usize,
                "pieces do not tile row {}", e.node);
        }
        for (y, &count) in owner.iter().enumerate() {
            prop_assert_eq!(count, 1u32, "row {} owned {} times", y, count);
        }
    }

    /// Pooled solvers are bit-for-bit deterministic across repeated runs.
    #[test]
    fn pooled_solves_are_deterministic(g in arb_graph()) {
        let config = cfg();
        let a = solve_parallel_jacobi(&g, &JumpVector::Uniform, &config).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &config).unwrap();
        prop_assert_eq!(&a.scores, &b.scores);
        prop_assert_eq!(a.iterations, b.iterations);
        let jumps = [JumpVector::Uniform];
        let x = solve_batch(&g, &jumps, &config).unwrap();
        let y = solve_batch(&g, &jumps, &config).unwrap();
        prop_assert_eq!(&x[0].scores, &y[0].scores);
        prop_assert_eq!(x[0].iterations, y[0].iterations);
    }
}

/// A reproducible random graph big enough to clear the pool's node floor
/// (16k rows per worker), so `.threads(k)` genuinely runs the
/// edge-parallel engine instead of the serial fallback.
fn pooled_random_graph(seed: u64) -> Graph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let (n, m) = (40_000u32, 120_000usize);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n as usize, m);
    for _ in 0..m {
        let f = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if f != t {
            b.add_edge(NodeId(f), NodeId(t));
        }
    }
    b.build()
}

/// Pooled config: an edge quota of one so the configured thread count
/// survives the auto-sizer on the 120k-edge test graphs.
fn pooled_cfg() -> PageRankConfig {
    PageRankConfig::default().tolerance(1e-12).max_iterations(20_000).edges_per_thread(1)
}

proptest! {
    // Each case runs several 40k-node pooled solves; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The unrolled (4-bank) kernel agrees with the scalar kernel to
    /// ≤ 1e-12 per node on random pooled graphs at any worker count.
    #[test]
    fn unrolled_kernel_matches_scalar_on_pooled_graphs(seed in 0u64..1 << 20, threads in 2usize..=4) {
        let g = pooled_random_graph(seed);
        let s = solve_parallel_jacobi(
            &g, &JumpVector::Uniform, &pooled_cfg().threads(threads).kernel(KernelKind::Scalar))
            .unwrap();
        let u = solve_parallel_jacobi(
            &g, &JumpVector::Uniform, &pooled_cfg().threads(threads).kernel(KernelKind::Unrolled4))
            .unwrap();
        for i in 0..g.node_count() {
            prop_assert!(
                (s.scores[i] - u.scores[i]).abs() <= 1e-12,
                "node {}: scalar {} vs unrolled {}", i, s.scores[i], u.scores[i]
            );
        }
    }

    /// The merge phase is deterministic: a fixed thread count reproduces
    /// scores bit-for-bit across runs, and different thread counts agree
    /// to ≤ 1e-12 (the cut moves the partial-sum association, not the
    /// fixed point).
    #[test]
    fn merge_is_deterministic_and_thread_count_invariant(
        seed in 0u64..1 << 20, t1 in 2usize..=4, t2 in 2usize..=4
    ) {
        let g = pooled_random_graph(seed);
        let cfg1 = pooled_cfg().threads(t1);
        let a = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg1).unwrap();
        let b = solve_parallel_jacobi(&g, &JumpVector::Uniform, &cfg1).unwrap();
        prop_assert_eq!(&a.scores, &b.scores);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        let c = solve_parallel_jacobi(&g, &JumpVector::Uniform, &pooled_cfg().threads(t2)).unwrap();
        for i in 0..g.node_count() {
            prop_assert!(
                (a.scores[i] - c.scores[i]).abs() <= 1e-12,
                "node {}: {}t {} vs {}t {}", i, t1, a.scores[i], t2, c.scores[i]
            );
        }
    }
}

/// Rows with fewer than four in-edges take the unrolled kernel's scalar
/// fallthrough, so on a graph whose maximum in-degree is three the two
/// kernels must agree bit-for-bit — same scores, same iteration count,
/// same residual.
#[test]
fn unrolled_kernel_is_bit_exact_on_low_degree_graphs() {
    let n = 40_000u32;
    let mut edges = Vec::with_capacity(3 * n as usize);
    for x in 0..n {
        for d in 1..=3 {
            edges.push((x, (x + d) % n));
        }
    }
    let g = GraphBuilder::from_edges(n as usize, &edges);
    assert!(g.nodes().map(|y| g.in_degree(y)).max().unwrap() < 4);
    let s = solve_parallel_jacobi(
        &g,
        &JumpVector::Uniform,
        &pooled_cfg().threads(3).kernel(KernelKind::Scalar),
    )
    .unwrap();
    let u = solve_parallel_jacobi(
        &g,
        &JumpVector::Uniform,
        &pooled_cfg().threads(3).kernel(KernelKind::Unrolled4),
    )
    .unwrap();
    assert_eq!(s.scores, u.scores);
    assert_eq!(s.iterations, u.iterations);
    assert_eq!(s.residual.to_bits(), u.residual.to_bits());
}

/// Preferential attachment via a repeated-endpoints trick: each new node
/// links to an endpoint sampled from the edge list (degree-proportional),
/// using a deterministic xorshift stream.
fn preferential_attachment_edges(n: u32) -> Vec<(u32, u32)> {
    let mut endpoints: Vec<u32> = vec![0, 1];
    let mut edges: Vec<(u32, u32)> = vec![(1, 0)];
    let mut state = 0x9E3779B97F4A7C15u64;
    for x in 2..n {
        for _ in 0..5 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let t = endpoints[(state as usize) % endpoints.len()];
            if t != x {
                edges.push((x, t));
                endpoints.push(t);
                endpoints.push(x);
            }
        }
    }
    edges
}

/// Skew bound on a larger power-law graph (preferential attachment),
/// where equal-node chunks would be badly imbalanced: the edge-balanced
/// cut must keep every chunk within the contiguous-cut optimum, and far
/// below the skew of the uniform cut's worst chunk.
#[test]
fn edge_balanced_beats_uniform_on_power_law_graph() {
    let n = 20_000u32;
    let edges = preferential_attachment_edges(n);
    let g = GraphBuilder::from_edges(n as usize, &edges);
    let parts = 8;
    let total = g.edge_count() + g.node_count();
    let w_max = g.nodes().map(|y| g.in_degree(y) + 1).max().unwrap();

    let balanced = NodePartition::edge_balanced(&g, parts);
    let balanced_worst = balanced
        .chunk_in_edges(&g)
        .iter()
        .zip(balanced.ranges())
        .map(|(e, r)| e + r.len())
        .max()
        .unwrap();
    assert!(
        balanced_worst <= total / parts + w_max + 1,
        "edge-balanced worst chunk {balanced_worst} over bound"
    );

    let uniform = NodePartition::uniform(g.node_count(), parts);
    let uniform_worst = uniform
        .chunk_in_edges(&g)
        .iter()
        .zip(uniform.ranges())
        .map(|(e, r)| e + r.len())
        .max()
        .unwrap();
    // Preferential attachment concentrates in-edges on early nodes, so
    // the uniform cut's first chunk is far heavier than the balanced
    // bound — the imbalance the new partitioner exists to fix.
    assert!(
        uniform_worst > balanced_worst,
        "uniform worst {uniform_worst} should exceed balanced worst {balanced_worst}"
    );
}

/// The incremental-update payoff, pinned deterministically: after a ~1%
/// edge delta on a 20k-node power-law graph, a solve warm-started from
/// the pre-delta fixed point must reach the *same* fixed point as a cold
/// solve (≤ 1e-12 per node) in **strictly fewer** iterations — the warm
/// iterate starts O(‖δ‖) from the answer instead of O(1).
#[test]
fn warm_start_saves_iterations_after_small_delta() {
    let n = 20_000u32;
    let edges = preferential_attachment_edges(n);
    let g = GraphBuilder::from_edges(n as usize, &edges);
    let config = cfg();
    let v = JumpVector::Uniform.materialize(g.node_count()).unwrap();
    let before = solve_jacobi_dense(&g, &v, &config).unwrap();

    // ~1% delta: drop every 100th edge of the sorted edge stream.
    let mut seen = 0usize;
    let perturbed = g.filter_edges(|_, _| {
        seen += 1;
        !seen.is_multiple_of(100)
    });
    assert!(perturbed.edge_count() < g.edge_count());

    let cold = solve_jacobi_dense(&perturbed, &v, &config).unwrap();
    let warm = solve_jacobi_dense_warm(&perturbed, &v, Some(&before.scores), &config).unwrap();
    assert!(
        warm.iterations < cold.iterations,
        "warm solve took {} iterations, cold took {}",
        warm.iterations,
        cold.iterations
    );
    for i in 0..g.node_count() {
        assert!(
            (warm.scores[i] - cold.scores[i]).abs() <= 1e-12,
            "node {}: warm {} vs cold {}",
            i,
            warm.scores[i],
            cold.scores[i]
        );
    }

    // The pooled warm path saves the same iterations on the same delta.
    let warm_par =
        solve_parallel_jacobi_dense_warm(&perturbed, &v, Some(&before.scores), &config).unwrap();
    assert!(warm_par.iterations < cold.iterations);
    for i in 0..g.node_count() {
        assert!((warm_par.scores[i] - cold.scores[i]).abs() <= 1e-12);
    }
}
