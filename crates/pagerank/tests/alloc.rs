//! Allocation accounting for the pooled solvers.
//!
//! The fused parallel kernel and the batched solver hoist every buffer
//! (score ping-pong pair, coefficient table, partition, per-chunk
//! residual slots, scratch, residual-history sample storage) out of the
//! iteration loop, so after setup the sweep loop performs **zero heap
//! allocations**. This harness pins that with a counting global
//! allocator: two solves differing only in iteration count must allocate
//! exactly the same number of times — any per-iteration allocation would
//! scale with the count and break the equality.

use spammass_graph::{GraphBuilder, NodeId};
use spammass_pagerank::{
    batch::solve_batch, parallel::solve_parallel_jacobi, JumpVector, PageRankConfig, PageRankError,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (usize, T) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// A graph big enough to engage the threaded path (n ≥ 2·MIN_CHUNK).
fn test_graph() -> spammass_graph::Graph {
    let n: u32 = 40_000;
    let mut b = GraphBuilder::with_capacity(n as usize, 3 * n as usize);
    // Deterministic pseudo-random edges without pulling in a RNG (keeps
    // allocation behavior identical across runs).
    let mut state = 0x2545F4914F6CDD1Du64;
    for _ in 0..(3 * n) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let f = (state >> 32) as u32 % n;
        let t = state as u32 % n;
        if f != t {
            b.add_edge(NodeId(f), NodeId(t));
        }
    }
    b.build()
}

/// Runs a capped solve and returns its allocation count. The cap makes
/// the iteration count exact (tolerance is unreachably tight), so the
/// only difference between two calls is how many sweeps run.
fn capped_solve_allocations(graph: &spammass_graph::Graph, iterations: usize) -> usize {
    let config = PageRankConfig::default().threads(2).max_iterations(iterations).tolerance(1e-300);
    let (allocations, result) =
        allocations_during(|| solve_parallel_jacobi(graph, &JumpVector::Uniform, &config));
    assert!(
        matches!(result, Err(PageRankError::DidNotConverge { iterations: i, .. }) if i == iterations),
        "solve must run exactly {iterations} sweeps"
    );
    allocations
}

fn capped_batch_allocations(graph: &spammass_graph::Graph, iterations: usize) -> usize {
    let config = PageRankConfig::default().threads(2).max_iterations(iterations).tolerance(1e-300);
    let jumps = [
        JumpVector::Uniform,
        JumpVector::core((0..1000).map(NodeId).collect(), graph.node_count()),
    ];
    let (allocations, result) = allocations_during(|| solve_batch(graph, &jumps, &config));
    assert!(result.is_err(), "capped batch must not converge");
    allocations
}

#[test]
fn parallel_solver_does_not_allocate_per_iteration() {
    let graph = test_graph();
    // Warm up: first run pays one-time costs (thread-local telemetry
    // probes, lazy runtime state).
    let _ = capped_solve_allocations(&graph, 4);
    let short = capped_solve_allocations(&graph, 8);
    let long = capped_solve_allocations(&graph, 64);
    assert_eq!(
        short, long,
        "allocation count must not scale with iterations: {short} for 8 sweeps vs {long} for 64"
    );
}

#[test]
fn batch_solver_does_not_allocate_per_iteration() {
    let graph = test_graph();
    let _ = capped_batch_allocations(&graph, 4);
    let short = capped_batch_allocations(&graph, 8);
    let long = capped_batch_allocations(&graph, 64);
    assert_eq!(
        short, long,
        "allocation count must not scale with iterations: {short} for 8 sweeps vs {long} for 64"
    );
}
