//! Worker-pool profiler against the live process-global registry.
//!
//! Enabling the global registry is irreversible for the process, so this
//! lives in its own integration-test binary (cargo runs each `tests/`
//! file as a separate process) rather than in the crate's unit tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spammass_graph::GraphBuilder;
use spammass_obs::registry;
use spammass_obs::{names, MetricSnapshot};
use spammass_pagerank::{solve_batch, JumpVector, PageRankConfig};

fn random_graph(n: usize, m: usize, seed: u64) -> spammass_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let f = rng.gen_range(0..n as u32);
        let t = rng.gen_range(0..n as u32);
        if f != t {
            b.add_edge(spammass_graph::NodeId(f), spammass_graph::NodeId(t));
        }
    }
    b.build()
}

#[test]
fn profiled_solve_populates_per_worker_series() {
    registry::enable_global();
    let g = random_graph(40_000, 120_000, 97);
    // Drop the edge quota so two real workers run, and solve two columns
    // so the batched kernel is the one profiled.
    let config = PageRankConfig::default().threads(2).edges_per_thread(1);
    let vs = vec![JumpVector::Uniform, JumpVector::Uniform];
    solve_batch(&g, &vs, &config).expect("batched solve converges");

    let snap = registry::global().snapshot();
    for worker in 0..2 {
        for kind in ["gather_ns", "barrier_wait_ns"] {
            let name = names::worker_series(worker, kind);
            match snap.get(&name) {
                Some(MetricSnapshot::Histogram(h)) => {
                    assert!(h.count > 0, "{name} has no samples");
                }
                other => panic!("{name}: expected histogram, got {other:?}"),
            }
        }
        let eps = names::worker_series(worker, "edges_per_s");
        match snap.get(&eps) {
            Some(MetricSnapshot::Gauge { value, .. }) => {
                assert!(*value > 0.0, "{eps} = {value}");
            }
            other => panic!("{eps}: expected set gauge, got {other:?}"),
        }
    }
    match snap.get(names::PAGERANK_POOL_SWEEPS) {
        Some(MetricSnapshot::Counter { total, .. }) => {
            assert!(*total >= 1.0, "no sweeps counted: {total}");
        }
        other => panic!("sweeps: expected counter, got {other:?}"),
    }
    match snap.get(names::PAGERANK_PARTITION_IMBALANCE) {
        Some(MetricSnapshot::Gauge { value, .. }) => {
            assert!(*value >= 1.0, "imbalance below perfect split: {value}");
        }
        other => panic!("imbalance: expected set gauge, got {other:?}"),
    }
    match snap.get(names::PAGERANK_PARTITION_CHUNKS) {
        Some(MetricSnapshot::Gauge { value, .. }) => assert_eq!(*value, 2.0),
        other => panic!("chunks: expected set gauge, got {other:?}"),
    }
    // The facade tees into the registry too: the sizing gauge arrives
    // through the plain obs::gauge call.
    assert!(snap.get(names::PAGERANK_POOL_THREADS).is_some());
}
