//! End-to-end tests of the live observability plane: the process-global
//! registry + flight recorder, the exposition server's HTTP surface, and
//! crash dumps.
//!
//! These live in an integration test (their own process) on purpose:
//! enabling the global registry and flight recorder is irreversible, so
//! unit tests — which share a process — must never flip the switches.
//! Everything here runs inside ONE #[test] so the enable order and the
//! server lifecycle stay deterministic.

use spammass_obs as obs;
use spammass_obs::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Minimal HTTP/1.1 GET over a raw socket; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

#[test]
fn live_plane_round_trips() {
    // ---- enable the globals (irreversible; done once, up front) ----
    assert!(!obs::registry::is_live());
    assert!(!obs::flight::is_enabled());
    obs::registry::enable_global();
    obs::flight::enable_global();
    assert!(obs::registry::is_live());
    assert!(obs::flight::is_enabled());

    // The facade now tees into the registry and ring with NO collector
    // installed — the live plane must not depend on --trace.
    obs::counter("lp.hits", 3.0);
    obs::gauge("lp.ratio", 0.25);
    for v in 1..=100u32 {
        obs::observe("lp.lat_ns", f64::from(v));
    }
    obs::event("lp.note", vec![("k".to_string(), Json::str("v"))]);

    let reg = obs::registry::live().expect("registry is live");
    let snap = reg.snapshot();
    match snap.get("lp.hits") {
        Some(obs::MetricSnapshot::Counter { total, .. }) => assert_eq!(*total, 3.0),
        other => panic!("lp.hits: {other:?}"),
    }
    let events = obs::flight::global().events();
    assert!(
        events.iter().any(|e| e.kind == "message" && e.name == "lp.note"),
        "facade event missing from the flight ring: {events:?}"
    );

    // Spans land in the ring as start/end pairs.
    {
        let mut s = obs::span("lp.stage");
        s.record("items", 7.0);
    }
    let events = obs::flight::global().events();
    assert!(events.iter().any(|e| e.kind == "span_start" && e.name == "lp.stage"), "{events:?}");
    assert!(events.iter().any(|e| e.kind == "span_end" && e.name == "lp.stage"), "{events:?}");

    // ---- server: bind ephemeral, advertise, serve all routes ----
    let server = obs::MetricsServer::start("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.local_addr();
    assert_eq!(obs::export::serving_addr(), Some(addr), "bound address is advertised");

    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("spammass_lp_hits 3.0"), "{body}");
    assert!(body.contains("spammass_lp_ratio 0.25"), "{body}");
    assert!(body.contains("# TYPE spammass_lp_lat_ns summary"), "{body}");
    assert!(body.contains("spammass_lp_lat_ns{quantile=\"0.5\"}"), "{body}");

    let (status, body) = http_get(addr, "/snapshot");
    assert!(status.contains("200"), "{status}");
    let doc = Json::parse(&body).expect("snapshot parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(obs::export::SNAPSHOT_SCHEMA));
    let metrics = doc.get("metrics").expect("metrics object");
    assert_eq!(
        metrics.get("lp.hits").and_then(|m| m.get("kind")).and_then(Json::as_str),
        Some("counter")
    );
    assert_eq!(
        metrics.get("lp.lat_ns").and_then(|m| m.get("count")).and_then(Json::as_f64),
        Some(100.0)
    );

    let (status, body) = http_get(addr, "/flight");
    assert!(status.contains("200"), "{status}");
    let doc = Json::parse(&body).expect("flight parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(obs::flight::SCHEMA));
    let ring = doc.get("events").and_then(Json::as_arr).expect("events array");
    assert!(ring.iter().any(|e| e.get("name").and_then(Json::as_str) == Some("lp.note")), "{body}");

    // Unknown routes 404, non-GET 405; neither kills the accept loop.
    let (status, _) = http_get(addr, "/nope");
    assert!(status.contains("404"), "{status}");
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    // Scrapes themselves are counted (each GET above incremented it).
    let (_, body) = http_get(addr, "/metrics");
    let scrapes = body
        .lines()
        .find(|l| l.starts_with("spammass_obs_export_scrapes "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .expect("scrape counter exported");
    assert!(scrapes >= 4.0, "scrapes = {scrapes}");

    // ---- shutdown: drop stops the thread and clears the advert ----
    drop(server);
    assert_eq!(obs::export::serving_addr(), None, "drop clears the advertised address");

    // ---- crash dump (on-demand path; the panic-hook path is pinned in
    // the CLI's flight_crash test) ----
    let dir = std::env::temp_dir().join("spammass-obs-live-plane");
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("dump.json");
    obs::flight::write_crash_dump(&dump, Some(("boom", Some("here.rs:1:1")))).unwrap();
    let doc = Json::parse(&std::fs::read_to_string(&dump).unwrap()).expect("dump parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(obs::flight::SCHEMA));
    assert_eq!(
        doc.get("panic").and_then(|p| p.get("message")).and_then(Json::as_str),
        Some("boom")
    );
    // Registry is live, so the dump embeds a metrics snapshot.
    assert_eq!(
        doc.get("metrics").and_then(|m| m.get("schema")).and_then(Json::as_str),
        Some(obs::export::SNAPSHOT_SCHEMA)
    );
    let ring = doc.get("events").and_then(Json::as_arr).expect("dump carries the ring");
    assert!(!ring.is_empty());
}
