//! The collector: sink fan-out plus the metrics registry, installed
//! per-thread with RAII scoping.
//!
//! Telemetry is **opt-in and thread-scoped**: library code calls the
//! facade functions ([`crate::counter`], [`crate::span`], …)
//! unconditionally, and they no-op — a thread-local lookup and a branch —
//! unless a [`Collector`] is installed on the current thread. This keeps
//! instrumented hot paths free of configuration plumbing, keeps default
//! CLI output byte-stable, and keeps parallel test runs isolated (each
//! test installs its own collector on its own thread).
//!
//! Scoping is a stack: nested installs shadow the outer collector and
//! restore it when the inner [`ScopeGuard`] drops. Worker threads spawned
//! by an instrumented computation do not inherit the collector; spans and
//! metrics are emitted from the orchestrating thread, which is where the
//! pipeline stages of this system run.

use crate::metrics::{Histogram, Metric};
use crate::sink::{Event, Sink};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A telemetry collector: an epoch for relative timestamps, a set of
/// sinks receiving every event, and the metrics registry. Cheap to clone
/// (shared interior).
#[derive(Clone)]
pub struct Collector {
    inner: Arc<Inner>,
}

struct Inner {
    epoch: Instant,
    sinks: Vec<Arc<dyn Sink>>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").field("sinks", &self.inner.sinks.len()).finish()
    }
}

/// Builder for a [`Collector`].
#[derive(Default)]
pub struct CollectorBuilder {
    sinks: Vec<Arc<dyn Sink>>,
}

impl CollectorBuilder {
    /// Attaches a sink; every event is delivered to every sink in
    /// attachment order.
    #[must_use]
    pub fn sink(mut self, sink: Arc<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Finishes the collector; its epoch (timestamp zero) is now.
    pub fn build(self) -> Collector {
        Collector {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                sinks: self.sinks,
                metrics: Mutex::new(BTreeMap::new()),
            }),
        }
    }
}

impl Collector {
    /// Starts building a collector.
    pub fn builder() -> CollectorBuilder {
        CollectorBuilder::default()
    }

    /// Installs this collector on the current thread until the returned
    /// guard drops. Nested installs shadow the outer collector.
    #[must_use = "telemetry is only active while the guard is alive"]
    pub fn install(&self) -> ScopeGuard {
        let prev_len = CURRENT.with(|c| {
            let mut stack = c.borrow_mut();
            stack.push(self.clone());
            stack.len() - 1
        });
        ScopeGuard { prev_len, _not_send: PhantomData }
    }

    /// Nanoseconds elapsed since the collector's epoch.
    pub(crate) fn elapsed_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Fans an event out to every sink.
    pub(crate) fn emit(&self, event: &Event) {
        for sink in &self.inner.sinks {
            sink.on_event(event);
        }
    }

    /// Adds to a counter, creating it at zero first; returns the new
    /// total. Updates against a different metric kind are ignored (the
    /// first registration wins) and return NaN.
    pub(crate) fn counter_add(&self, name: &str, delta: f64) -> f64 {
        let mut metrics = self.inner.metrics.lock().expect("metrics lock");
        match metrics.entry(name.to_string()).or_insert(Metric::Counter(0.0)) {
            Metric::Counter(total) => {
                *total += delta;
                *total
            }
            _ => f64::NAN,
        }
    }

    /// Sets a gauge. Kind mismatches are ignored.
    pub(crate) fn gauge_set(&self, name: &str, value: f64) {
        let mut metrics = self.inner.metrics.lock().expect("metrics lock");
        if let Metric::Gauge(slot) = metrics.entry(name.to_string()).or_insert(Metric::Gauge(value))
        {
            *slot = value;
        }
    }

    /// Records a histogram sample. Kind mismatches are ignored.
    pub(crate) fn histogram_record(&self, name: &str, value: f64) {
        let mut metrics = self.inner.metrics.lock().expect("metrics lock");
        if let Metric::Histogram(h) =
            metrics.entry(name.to_string()).or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            h.record(value);
        }
    }

    /// A snapshot of every registered metric, sorted by name.
    pub fn metrics_snapshot(&self) -> Vec<(String, Metric)> {
        let metrics = self.inner.metrics.lock().expect("metrics lock");
        metrics.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Collector>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls the collector when dropped (restoring any shadowed one).
/// Deliberately `!Send`: the guard must drop on the thread that installed.
pub struct ScopeGuard {
    prev_len: usize,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().truncate(self.prev_len));
    }
}

/// Runs `f` against the innermost installed collector, if any.
pub(crate) fn with_current<R>(f: impl FnOnce(&Collector) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().last().cloned()).map(|collector| f(&collector))
}

/// Whether a collector is installed on the current thread. Use to skip
/// building expensive telemetry payloads (e.g. per-node histogram loops)
/// when nobody is listening.
pub fn is_enabled() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Recorder;

    #[test]
    fn disabled_by_default() {
        assert!(!is_enabled());
        assert!(with_current(|_| ()).is_none());
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let outer = Collector::builder().build();
        let inner = Collector::builder().build();
        {
            let _g1 = outer.install();
            assert!(is_enabled());
            outer.counter_add("outer", 1.0);
            {
                let _g2 = inner.install();
                with_current(|c| c.counter_add("x", 1.0)).unwrap();
            }
            // Inner popped; updates land on outer again.
            with_current(|c| c.counter_add("outer", 1.0)).unwrap();
        }
        assert!(!is_enabled());
        assert_eq!(inner.metrics_snapshot().len(), 1);
        let outer_metrics = outer.metrics_snapshot();
        assert_eq!(outer_metrics.len(), 1);
        assert_eq!(outer_metrics[0].1, Metric::Counter(2.0));
    }

    #[test]
    fn kind_mismatch_is_ignored() {
        let c = Collector::builder().build();
        c.gauge_set("m", 5.0);
        assert!(c.counter_add("m", 1.0).is_nan());
        c.histogram_record("m", 1.0);
        assert_eq!(c.metrics_snapshot()[0].1, Metric::Gauge(5.0));
    }

    #[test]
    fn emit_reaches_all_sinks() {
        let r1 = Arc::new(Recorder::default());
        let r2 = Arc::new(Recorder::default());
        let c = Collector::builder().sink(r1.clone()).sink(r2.clone()).build();
        c.emit(&Event::Gauge { name: "g".into(), value: 1.0 });
        assert_eq!(r1.events().len(), 1);
        assert_eq!(r2.events().len(), 1);
    }
}
