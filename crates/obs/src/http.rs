//! Minimal HTTP/1.1 plumbing shared by the metrics exporter and the
//! query daemon (`spammass-serve`).
//!
//! The build environment is offline, so everything network-facing in
//! this workspace is hand-rolled on `std::net`. Two servers need the
//! same sliver of HTTP — parse a request line, drain headers, decide
//! keep-alive vs close, write a framed response — and that sliver lives
//! here so it is written, limited, and tested exactly once.
//!
//! Deliberately *not* implemented: request bodies, chunked transfer,
//! percent-decoding, multi-line headers. Every endpoint in this
//! workspace is a GET with a short query string; anything outside that
//! envelope is rejected with a typed error the caller can map onto a
//! `400`/`431` response.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest accepted request line, in bytes. Longer lines are rejected
/// as [`RequestError::TooLarge`] (HTTP 414 territory).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;

/// Cap on the total header section, in bytes. Past it the request is
/// rejected as [`RequestError::TooLarge`] (HTTP 431 territory).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parsed request: method, split target, and connection semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The path with any query string removed (`/score`).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order. A key
    /// with no `=` is kept with an empty value.
    pub query: Vec<(String, String)>,
    /// Whether the connection should be kept open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and a
    /// `Connection:` header overrides either way.
    pub keep_alive: bool,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection before sending a request line —
    /// the clean end of a keep-alive session, not a protocol error.
    Closed,
    /// The request violates the expected `METHOD PATH HTTP/x.y` shape.
    Malformed(String),
    /// Request line or header section exceeded the fixed limits.
    TooLarge(String),
    /// Transport failure (including read timeouts).
    Io(io::Error),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Closed => write!(f, "connection closed before a request"),
            RequestError::Malformed(m) => write!(f, "malformed request: {m}"),
            RequestError::TooLarge(m) => write!(f, "request too large: {m}"),
            RequestError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl RequestError {
    /// The `(status, message)` an HTTP server should answer with, or
    /// `None` when no response belongs on the wire (clean close, broken
    /// transport).
    pub fn response(&self) -> Option<(&'static str, String)> {
        match self {
            RequestError::Closed | RequestError::Io(_) => None,
            RequestError::Malformed(m) => Some(("400 Bad Request", format!("{m}\n"))),
            RequestError::TooLarge(m) => {
                Some(("431 Request Header Fields Too Large", format!("{m}\n")))
            }
        }
    }
}

/// Reads one `\n`-terminated line, refusing to buffer more than `max`
/// bytes. `Ok(None)` is a clean EOF before any byte arrived.
fn read_line_limited(
    reader: &mut impl BufRead,
    max: usize,
    what: &str,
) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(RequestError::TooLarge(format!("{what} exceeds {max} bytes")));
                }
            }
            Err(e) => return Err(RequestError::Io(e)),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| RequestError::Malformed(format!("{what} is not utf-8")))
}

/// Parses the query-string tail of a request target.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Reads and parses one request (line + headers) off `reader`.
///
/// Headers are drained but not retained except for `Connection:`, which
/// decides [`Request::keep_alive`]. The body, if any, is **not** read —
/// callers that accept only GET can treat any body as the next (broken)
/// request and close.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, RequestError> {
    let request_line = match read_line_limited(reader, MAX_REQUEST_LINE, "request line")? {
        None => return Err(RequestError::Closed),
        Some(line) => line,
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "request line {request_line:?} is not `METHOD PATH HTTP/x.y`"
            )))
        }
    };
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(RequestError::Malformed(format!("bad method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(RequestError::Malformed(format!("bad request target {target:?}")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(RequestError::Malformed(format!("bad http version {other:?}"))),
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    // Drain headers up to the blank line; only Connection: matters.
    let mut keep_alive = http11;
    let mut header_bytes = 0usize;
    loop {
        let line = match read_line_limited(reader, MAX_HEADER_BYTES, "header line")? {
            // EOF inside the header section: the request never finished.
            None => return Err(RequestError::Malformed("eof inside headers".into())),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        header_bytes += line.len() + 2;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(RequestError::TooLarge(format!(
                "header section exceeds {MAX_HEADER_BYTES} bytes"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!("header line {line:?} has no colon")));
        };
        if name.trim().eq_ignore_ascii_case("connection") {
            match value.trim().to_ascii_lowercase().as_str() {
                "close" => keep_alive = false,
                "keep-alive" => keep_alive = true,
                _ => {}
            }
        }
    }

    Ok(Request { method: method.to_string(), path, query, keep_alive })
}

/// Writes a complete `HTTP/1.1` response with `Content-Length` framing
/// and the matching `Connection:` header, then flushes.
pub fn write_response(
    writer: &mut impl Write,
    status: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len(),
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_plain_get() {
        let r = parse("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert!(r.query.is_empty());
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_query_strings() {
        let r = parse("GET /score?node=42&k=10&flag HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/score");
        assert_eq!(r.query_param("node"), Some("42"));
        assert_eq!(r.query_param("k"), Some("10"));
        assert_eq!(r.query_param("flag"), Some(""));
        assert_eq!(r.query_param("absent"), None);
    }

    #[test]
    fn malformed_request_lines_are_typed() {
        for raw in [
            "GARBAGE\r\n\r\n",                          // one token
            "GET /x\r\n\r\n",                           // missing version
            "GET /x HTTP/1.1 extra\r\n\r\n",            // trailing token
            "GET /x FTP/1.0\r\n\r\n",                   // not http
            "GET /x HTTP/2.0\r\n\r\n",                  // unsupported version
            "get /x HTTP/1.1\r\n\r\n",                  // lowercase method
            "GET noslash HTTP/1.1\r\n\r\n",             // target without /
            "GET /x HTTP/1.1\r\nno colon here\r\n\r\n", // broken header
            "GET /x HTTP/1.1\r\nHost: x\r\n",           // eof inside headers
        ] {
            let err = parse(raw).unwrap_err();
            assert!(matches!(err, RequestError::Malformed(_)), "{raw:?} -> {err}");
            let (status, _) = err.response().expect("malformed requests get a response");
            assert!(status.starts_with("400"), "{raw:?} -> {status}");
        }
    }

    #[test]
    fn oversized_request_line_and_headers_are_rejected() {
        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        let err = parse(&long_path).unwrap_err();
        assert!(matches!(err, RequestError::TooLarge(_)), "{err}");

        let mut many_headers = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..2048 {
            many_headers.push_str(&format!("X-Padding-{i}: {}\r\n", "b".repeat(64)));
        }
        many_headers.push_str("\r\n");
        let err = parse(&many_headers).unwrap_err();
        assert!(matches!(err, RequestError::TooLarge(_)), "{err}");
        let (status, _) = err.response().unwrap();
        assert!(status.starts_with("431"), "{status}");

        // One single header line longer than the whole budget.
        let giant = format!("GET /x HTTP/1.1\r\nX-Giant: {}\r\n\r\n", "c".repeat(MAX_HEADER_BYTES));
        assert!(matches!(parse(&giant).unwrap_err(), RequestError::TooLarge(_)));
    }

    #[test]
    fn keep_alive_vs_close_semantics() {
        // HTTP/1.1: keep-alive unless told to close.
        assert!(parse("GET / HTTP/1.1\r\n\r\n").unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap().keep_alive);
        // HTTP/1.0: close unless told to keep alive.
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().keep_alive);
        // Unknown Connection values leave the version default in place.
        assert!(parse("GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n").unwrap().keep_alive);
    }

    #[test]
    fn clean_eof_is_closed_not_an_error_response() {
        let err = parse("").unwrap_err();
        assert!(matches!(err, RequestError::Closed));
        assert!(err.response().is_none());
    }

    #[test]
    fn sequential_requests_on_one_reader() {
        let raw =
            "GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b?n=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let first = read_request(&mut reader).unwrap();
        assert_eq!(first.path, "/a");
        assert!(first.keep_alive);
        let second = read_request(&mut reader).unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.query_param("n"), Some("1"));
        assert!(!second.keep_alive);
        assert!(matches!(read_request(&mut reader).unwrap_err(), RequestError::Closed));
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let r = parse("GET /x HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(r.path, "/x");
    }

    #[test]
    fn write_response_frames_and_labels() {
        let mut out = Vec::new();
        write_response(&mut out, "200 OK", "application/json", "{\"a\":1}\n", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 8\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"a\":1}\n"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, "404 Not Found", "text/plain", "nope\n", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }
}
