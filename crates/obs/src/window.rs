//! Sliding-window aggregation: the time-aware metric kinds behind the
//! live [`crate::registry::MetricsRegistry`].
//!
//! Post-mortem metrics ([`crate::metrics`]) accumulate forever; a live
//! scrape instead wants "what happened recently". Every type here keeps a
//! ring of fixed-duration slots tagged with their absolute slot index:
//! writing rotates a slot lazily when its tag is stale, reading filters
//! to slots still inside the window, so neither side ever scans or
//! zeroes the whole ring on a timer.
//!
//! Time is passed in explicitly as nanoseconds since an arbitrary epoch
//! (the registry uses its construction instant). That keeps this module
//! deterministic under test — window rotation and expiry are exercised
//! with a synthetic clock, not sleeps.
//!
//! Windowed histograms keep, per slot, both the half-decade log buckets
//! of [`crate::metrics::Histogram`] *and* a bounded buffer of raw
//! samples. While no slot has overflowed its buffer, p50/p90/p99 are
//! **exact** (nearest-rank over the merged samples); past the cap the
//! extraction degrades to a log-bucket estimate and says so via
//! [`HistWindowSnapshot::is_exact`].

use crate::json::Json;
use crate::metrics::{bucket_lo, bucket_pos, BucketPos, BUCKETS};

/// Shape of a sliding window: `slots` ring slots of `slot_ns` each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Duration of one ring slot in nanoseconds.
    pub slot_ns: u64,
    /// Number of ring slots; the window covers `slots * slot_ns`.
    pub slots: usize,
}

impl WindowSpec {
    /// A window of `slots` slots of `slot_ns` nanoseconds each.
    pub const fn new(slot_ns: u64, slots: usize) -> Self {
        WindowSpec { slot_ns, slots }
    }

    /// Total window span in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.slot_ns * self.slots as u64
    }

    /// Absolute slot index for a timestamp.
    fn slot_of(&self, now_ns: u64) -> u64 {
        now_ns / self.slot_ns.max(1)
    }

    /// Whether a slot tagged `abs` is still inside the window at `now_ns`.
    fn in_window(&self, abs: u64, now_ns: u64) -> bool {
        abs + self.slots as u64 > self.slot_of(now_ns)
    }
}

impl Default for WindowSpec {
    /// 15 one-second slots: wide enough that a 5s scrape interval always
    /// overlaps, narrow enough to track a solve phase by phase.
    fn default() -> Self {
        WindowSpec::new(1_000_000_000, 15)
    }
}

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct CounterSlot {
    abs: u64,
    sum: f64,
}

/// A counter carrying both a lifetime total and a windowed sum.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    spec: WindowSpec,
    total: f64,
    ring: Vec<CounterSlot>,
}

impl WindowedCounter {
    /// An empty counter over `spec`.
    pub fn new(spec: WindowSpec) -> Self {
        WindowedCounter {
            spec,
            total: 0.0,
            ring: vec![CounterSlot { abs: u64::MAX, sum: 0.0 }; spec.slots.max(1)],
        }
    }

    /// Adds `delta` at time `now_ns`.
    pub fn add(&mut self, now_ns: u64, delta: f64) {
        self.total += delta;
        let abs = self.spec.slot_of(now_ns);
        let idx = (abs % self.ring.len() as u64) as usize;
        let slot = &mut self.ring[idx];
        if slot.abs != abs {
            *slot = CounterSlot { abs, sum: 0.0 };
        }
        slot.sum += delta;
    }

    /// Lifetime total.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Sum of deltas inside the window ending at `now_ns`.
    pub fn windowed(&self, now_ns: u64) -> f64 {
        self.ring
            .iter()
            .filter(|s| s.abs != u64::MAX && self.spec.in_window(s.abs, now_ns))
            .map(|s| s.sum)
            .sum()
    }

    /// Windowed increments per second. The denominator is the lesser of
    /// the window span and the process age, so young processes are not
    /// under-reported.
    pub fn rate_per_s(&self, now_ns: u64) -> f64 {
        let span_ns = self.spec.window_ns().min(now_ns).max(self.spec.slot_ns).max(1);
        self.windowed(now_ns) / (span_ns as f64 / 1e9)
    }
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

/// A last-write-wins gauge that remembers when it was last set.
#[derive(Debug, Clone, Copy)]
pub struct WindowedGauge {
    value: f64,
    updated_ns: u64,
    set: bool,
}

impl WindowedGauge {
    /// A gauge that has never been set.
    pub fn new() -> Self {
        WindowedGauge { value: 0.0, updated_ns: 0, set: false }
    }

    /// Sets the gauge at time `now_ns`.
    pub fn set(&mut self, now_ns: u64, value: f64) {
        self.value = value;
        self.updated_ns = now_ns;
        self.set = true;
    }

    /// The current value (`None` if never set).
    pub fn value(&self) -> Option<f64> {
        if self.set {
            Some(self.value)
        } else {
            None
        }
    }

    /// Nanoseconds since the last set (`None` if never set).
    pub fn age_ns(&self, now_ns: u64) -> Option<u64> {
        if self.set {
            Some(now_ns.saturating_sub(self.updated_ns))
        } else {
            None
        }
    }
}

impl Default for WindowedGauge {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Raw samples kept per slot before percentile extraction degrades to a
/// bucket estimate. 512 × 15 slots × 8 shards ≈ 60k f64 worst case —
/// bounded regardless of sample rate.
pub const SLOT_SAMPLE_CAP: usize = 512;

#[derive(Debug, Clone)]
struct HistSlot {
    abs: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    below: u64,
    above: u64,
    non_finite: u64,
    buckets: Vec<u64>,
    samples: Vec<f64>,
    overflowed: bool,
}

impl HistSlot {
    fn fresh(abs: u64) -> Self {
        HistSlot {
            abs,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            below: 0,
            above: 0,
            non_finite: 0,
            buckets: vec![0; BUCKETS],
            samples: Vec::new(),
            overflowed: false,
        }
    }
}

/// A sliding-window log-bucket histogram with bounded exact samples.
#[derive(Debug, Clone)]
pub struct WindowHistogram {
    spec: WindowSpec,
    sample_cap: usize,
    slots: Vec<HistSlot>,
}

impl WindowHistogram {
    /// An empty histogram over `spec` with the default sample cap.
    pub fn new(spec: WindowSpec) -> Self {
        Self::with_sample_cap(spec, SLOT_SAMPLE_CAP)
    }

    /// An empty histogram with an explicit per-slot sample cap (tests
    /// force the bucket-estimate path with a tiny cap).
    pub fn with_sample_cap(spec: WindowSpec, sample_cap: usize) -> Self {
        WindowHistogram {
            spec,
            sample_cap,
            slots: (0..spec.slots.max(1)).map(|_| HistSlot::fresh(u64::MAX)).collect(),
        }
    }

    /// Records one sample at time `now_ns`.
    pub fn record(&mut self, now_ns: u64, v: f64) {
        let abs = self.spec.slot_of(now_ns);
        let len = self.slots.len() as u64;
        let slot = &mut self.slots[(abs % len) as usize];
        if slot.abs != abs {
            *slot = HistSlot::fresh(abs);
        }
        if !v.is_finite() {
            slot.non_finite += 1;
            return;
        }
        slot.count += 1;
        slot.sum += v;
        slot.min = slot.min.min(v);
        slot.max = slot.max.max(v);
        match bucket_pos(v) {
            BucketPos::Below => slot.below += 1,
            BucketPos::Above => slot.above += 1,
            BucketPos::In(i) => slot.buckets[i] += 1,
        }
        if slot.samples.len() < self.sample_cap {
            slot.samples.push(v);
        } else {
            slot.overflowed = true;
        }
    }

    /// Summarizes the window ending at `now_ns`. Read-only: expired slots
    /// are skipped, not cleared.
    pub fn snapshot(&self, now_ns: u64) -> HistWindowSnapshot {
        let mut snap = HistWindowSnapshot::empty();
        for slot in &self.slots {
            if slot.abs == u64::MAX || !self.spec.in_window(slot.abs, now_ns) {
                continue;
            }
            snap.count += slot.count;
            snap.sum += slot.sum;
            snap.min = snap.min.min(slot.min);
            snap.max = snap.max.max(slot.max);
            snap.below += slot.below;
            snap.above += slot.above;
            snap.non_finite += slot.non_finite;
            for (acc, n) in snap.buckets.iter_mut().zip(&slot.buckets) {
                *acc += n;
            }
            snap.samples.extend_from_slice(&slot.samples);
            snap.exact &= !slot.overflowed;
        }
        snap.samples.sort_by(f64::total_cmp);
        snap
    }
}

/// The merged window view of one histogram (or of several per-thread
/// shards of the same histogram).
#[derive(Debug, Clone)]
pub struct HistWindowSnapshot {
    /// Finite samples in the window.
    pub count: u64,
    /// Sum of finite samples in the window.
    pub sum: f64,
    /// Samples below the bucket range (zero/negative included).
    pub below: u64,
    /// Samples at or above the top of the bucket range.
    pub above: u64,
    /// NaN/∞ samples (excluded from every other statistic).
    pub non_finite: u64,
    /// Whether percentiles are exact (no slot overflowed its buffer).
    pub exact: bool,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
    samples: Vec<f64>,
}

impl HistWindowSnapshot {
    fn empty() -> Self {
        HistWindowSnapshot {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            below: 0,
            above: 0,
            non_finite: 0,
            buckets: vec![0; BUCKETS],
            samples: Vec::new(),
            exact: true,
        }
    }

    /// Smallest finite sample in the window (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        if self.count > 0 {
            Some(self.min)
        } else {
            None
        }
    }

    /// Largest finite sample in the window (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        if self.count > 0 {
            Some(self.max)
        } else {
            None
        }
    }

    /// Mean of the window (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count > 0 {
            Some(self.sum / self.count as f64)
        } else {
            None
        }
    }

    /// Whether percentiles come from raw samples rather than buckets.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Folds another shard of the same metric into this snapshot.
    pub fn merge(mut self, other: HistWindowSnapshot) -> HistWindowSnapshot {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.below += other.below;
        self.above += other.above;
        self.non_finite += other.non_finite;
        for (acc, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *acc += n;
        }
        self.samples.extend_from_slice(&other.samples);
        self.samples.sort_by(f64::total_cmp);
        self.exact &= other.exact;
        self
    }

    /// The `q`-quantile (`0 < q <= 1`), nearest-rank. Exact over the raw
    /// samples while [`Self::is_exact`]; otherwise estimated as the
    /// geometric midpoint of the covering log bucket, clamped to the
    /// observed min/max (out-of-range ranks resolve to min/max exactly).
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if self.exact {
            return Some(self.samples[(rank - 1) as usize]);
        }
        let mut acc = self.below;
        if rank <= acc {
            return Some(self.min);
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            acc += n;
            if rank <= acc {
                let mid = (bucket_lo(i) * bucket_lo(i + 1)).sqrt();
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// JSON form: summary stats, the standard quantiles, and the
    /// populated buckets.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                Json::obj([
                    ("lo", Json::num(bucket_lo(i))),
                    ("hi", Json::num(bucket_lo(i + 1))),
                    ("count", Json::uint(n)),
                ])
            })
            .collect();
        Json::obj([
            ("count", Json::uint(self.count)),
            ("sum", Json::num(self.sum)),
            ("min", self.min().map(Json::num).unwrap_or(Json::Null)),
            ("max", self.max().map(Json::num).unwrap_or(Json::Null)),
            ("mean", self.mean().map(Json::num).unwrap_or(Json::Null)),
            ("p50", self.percentile(0.50).map(Json::num).unwrap_or(Json::Null)),
            ("p90", self.percentile(0.90).map(Json::num).unwrap_or(Json::Null)),
            ("p99", self.percentile(0.99).map(Json::num).unwrap_or(Json::Null)),
            ("exact", Json::Bool(self.exact)),
            ("below", Json::uint(self.below)),
            ("above", Json::uint(self.above)),
            ("non_finite", Json::uint(self.non_finite)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 10 slots of 1s: slot boundaries at whole seconds.
    fn spec() -> WindowSpec {
        WindowSpec::new(1_000_000_000, 10)
    }

    fn s(n: u64) -> u64 {
        n * 1_000_000_000
    }

    #[test]
    fn counter_tracks_total_and_window() {
        let mut c = WindowedCounter::new(spec());
        c.add(s(0), 5.0);
        c.add(s(1), 7.0);
        assert_eq!(c.total(), 12.0);
        assert_eq!(c.windowed(s(1)), 12.0);
        // 11s later the first two slots have expired; total is forever.
        c.add(s(12), 1.0);
        assert_eq!(c.windowed(s(12)), 1.0);
        assert_eq!(c.total(), 13.0);
    }

    #[test]
    fn counter_rate_uses_elapsed_for_young_processes() {
        let mut c = WindowedCounter::new(spec());
        c.add(s(1), 100.0);
        // Process is 2s old: denominator 2s, not the 10s window.
        assert!((c.rate_per_s(s(2)) - 50.0).abs() < 1e-9);
        // Once older than the window, the window span is the denominator.
        assert!((c.rate_per_s(s(10)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn counter_slot_reuse_does_not_resurrect_old_sums() {
        let mut c = WindowedCounter::new(spec());
        c.add(s(3), 40.0);
        // Same ring index, 10 slots later: must reset, not accumulate.
        c.add(s(13), 2.0);
        assert_eq!(c.windowed(s(13)), 2.0);
    }

    #[test]
    fn gauge_value_and_age() {
        let mut g = WindowedGauge::new();
        assert_eq!(g.value(), None);
        assert_eq!(g.age_ns(s(5)), None);
        g.set(s(2), 0.75);
        assert_eq!(g.value(), Some(0.75));
        assert_eq!(g.age_ns(s(5)), Some(s(3)));
        g.set(s(6), 0.5);
        assert_eq!(g.value(), Some(0.5));
        assert_eq!(g.age_ns(s(6)), Some(0));
    }

    #[test]
    fn histogram_exact_percentiles_on_known_distribution() {
        let mut h = WindowHistogram::new(spec());
        // 1..=100 spread across two in-window slots.
        for v in 1..=100u32 {
            h.record(s(u64::from(v % 2)), f64::from(v));
        }
        let snap = h.snapshot(s(2));
        assert!(snap.is_exact());
        assert_eq!(snap.count, 100);
        assert_eq!(snap.percentile(0.50), Some(50.0));
        assert_eq!(snap.percentile(0.90), Some(90.0));
        assert_eq!(snap.percentile(0.99), Some(99.0));
        assert_eq!(snap.percentile(1.0), Some(100.0));
        assert_eq!(snap.min(), Some(1.0));
        assert_eq!(snap.max(), Some(100.0));
        assert_eq!(snap.mean(), Some(50.5));
    }

    #[test]
    fn histogram_window_rotation_expires_old_slots() {
        let mut h = WindowHistogram::new(spec());
        h.record(s(0), 10.0);
        h.record(s(5), 20.0);
        // Both visible inside the window…
        assert_eq!(h.snapshot(s(5)).count, 2);
        // …at 10s the slot-0 sample has aged out (10 slots of 1s)…
        let later = h.snapshot(s(10));
        assert_eq!(later.count, 1);
        assert_eq!(later.percentile(0.5), Some(20.0));
        // …and far past the window everything is gone.
        assert_eq!(h.snapshot(s(30)).count, 0);
        assert_eq!(h.snapshot(s(30)).percentile(0.5), None);
    }

    #[test]
    fn histogram_slot_reuse_resets_state() {
        let mut h = WindowHistogram::new(spec());
        h.record(s(1), 100.0);
        h.record(s(11), 1.0); // same ring index, new epoch
        let snap = h.snapshot(s(11));
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max(), Some(1.0));
    }

    #[test]
    fn histogram_shard_merge_is_exact_across_threads() {
        let mut a = WindowHistogram::new(spec());
        let mut b = WindowHistogram::new(spec());
        for v in 1..=50u32 {
            a.record(s(1), f64::from(v));
        }
        for v in 51..=100u32 {
            b.record(s(1), f64::from(v));
        }
        let merged = a.snapshot(s(1)).merge(b.snapshot(s(1)));
        assert!(merged.is_exact());
        assert_eq!(merged.count, 100);
        assert_eq!(merged.percentile(0.50), Some(50.0));
        assert_eq!(merged.percentile(0.99), Some(99.0));
        assert_eq!(merged.min(), Some(1.0));
        assert_eq!(merged.max(), Some(100.0));
    }

    #[test]
    fn histogram_sample_overflow_degrades_to_bucket_estimate() {
        let mut h = WindowHistogram::with_sample_cap(spec(), 8);
        // 1000 samples in one slot, all in [100, 316) — one half-decade
        // bucket — so the estimate must land inside that bucket.
        for i in 0..1000 {
            h.record(s(1), 100.0 + f64::from(i % 200));
        }
        let snap = h.snapshot(s(1));
        assert!(!snap.is_exact());
        assert_eq!(snap.count, 1000);
        let p50 = snap.percentile(0.50).unwrap();
        assert!((100.0..316.3).contains(&p50), "bucket estimate {p50}");
        // Summary stats stay exact even when percentiles degrade.
        assert_eq!(snap.min(), Some(100.0));
        assert_eq!(snap.max(), Some(299.0));
        // Merging an exact shard with an overflowed one is not exact.
        let exact_shard = WindowHistogram::new(spec()).snapshot(s(1));
        assert!(exact_shard.is_exact());
        assert!(!exact_shard.merge(snap).is_exact());
    }

    #[test]
    fn histogram_out_of_range_saturates_overflow_buckets() {
        let mut h = WindowHistogram::with_sample_cap(spec(), 2);
        // Saturate the sample buffer so extraction uses buckets, with the
        // population split across below-range / in-range / above-range.
        for _ in 0..10 {
            h.record(s(1), -5.0); // below (negative relative mass)
        }
        for _ in 0..10 {
            h.record(s(1), 1.0);
        }
        for _ in 0..10 {
            h.record(s(1), 1e12); // above the 1e8 bucket ceiling
        }
        h.record(s(1), f64::NAN);
        let snap = h.snapshot(s(1));
        assert!(!snap.is_exact());
        assert_eq!(snap.below, 10);
        assert_eq!(snap.above, 10);
        assert_eq!(snap.non_finite, 1);
        assert_eq!(snap.count, 30);
        // Ranks inside the below population resolve to the observed min,
        // ranks past every bucket to the observed max.
        assert_eq!(snap.percentile(0.10), Some(-5.0));
        assert_eq!(snap.percentile(0.99), Some(1e12));
        // Mid-ranks land in the in-range bucket, clamped to min/max.
        let p50 = snap.percentile(0.50).unwrap();
        assert!((-5.0..=1e12).contains(&p50));
    }

    #[test]
    fn snapshot_json_shape() {
        let mut h = WindowHistogram::new(spec());
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(s(1), v);
        }
        let j = h.snapshot(s(1)).to_json();
        assert_eq!(j.get("count").and_then(Json::as_f64), Some(4.0));
        assert_eq!(j.get("exact"), Some(&Json::Bool(true)));
        assert_eq!(j.get("p50").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("p99").and_then(Json::as_f64), Some(4.0));
        assert!(j.get("buckets").and_then(Json::as_arr).is_some());
    }
}
