//! Metrics exposition: Prometheus text + JSON rendering and a
//! zero-dependency HTTP server.
//!
//! The build environment is offline, so the server is hand-rolled on
//! `std::net` via the shared [`crate::http`] plumbing: one listener
//! thread, blocking accepts, one short-lived connection per scrape
//! (`Connection: close`). That is exactly the traffic shape of a
//! Prometheus scrape loop, and it keeps the whole exposition path free
//! of async machinery.
//!
//! Read path: every request takes an epoch-consistent
//! [`crate::registry::RegistrySnapshot`] (one timestamp, short
//! per-metric locks) — a scrape can never block a solve for longer than
//! one metric's mutex.
//!
//! Routes: `/metrics` (Prometheus text, version 0.0.4), `/snapshot`
//! (JSON, schema [`SNAPSHOT_SCHEMA`]), `/flight` (the flight-recorder
//! ring, schema [`crate::flight::SCHEMA`]).

use crate::http::{read_request, write_response};
use crate::json::Json;
use crate::registry::{self, MetricSnapshot, RegistrySnapshot};
use std::fmt::Write as _;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Schema tag on `/snapshot` responses.
pub const SNAPSHOT_SCHEMA: &str = "spammass.metrics_snapshot/v1";

/// Maps a dotted metric name onto the Prometheus grammar:
/// `spammass_` prefix, dots to underscores, anything exotic to `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("spammass_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Renders a registry snapshot as Prometheus text format. Counters get a
/// companion `:rate_per_s` gauge (windowed); histograms render as
/// summaries with `quantile` labels plus windowed `_sum`/`_count`.
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# spammass live metrics; window covers {}ns", snap.window_ns);
    for (name, metric) in &snap.entries {
        let p = prometheus_name(name);
        match metric {
            MetricSnapshot::Counter { total, windowed, rate_per_s } => {
                let _ = writeln!(out, "# TYPE {p} counter");
                let _ = writeln!(out, "{p} {}", prom_num(*total));
                let _ = writeln!(out, "# TYPE {p}_window gauge");
                let _ = writeln!(out, "{p}_window {}", prom_num(*windowed));
                let _ = writeln!(out, "{p}_rate_per_s {}", prom_num(*rate_per_s));
            }
            MetricSnapshot::Gauge { value, age_ns } => {
                let _ = writeln!(out, "# TYPE {p} gauge");
                let _ = writeln!(out, "{p} {}", prom_num(*value));
                let _ = writeln!(out, "{p}_age_ns {}", prom_num(*age_ns as f64));
            }
            MetricSnapshot::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {p} summary");
                for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    let v = h.percentile(q).unwrap_or(f64::NAN);
                    let _ = writeln!(out, "{p}{{quantile=\"{label}\"}} {}", prom_num(v));
                }
                let _ = writeln!(out, "{p}_sum {}", prom_num(h.sum));
                let _ = writeln!(out, "{p}_count {}", h.count);
                let _ = writeln!(out, "{p}_exact {}", u8::from(h.is_exact()));
            }
        }
    }
    out
}

/// Renders a registry snapshot as the `/snapshot` JSON document.
pub fn snapshot_json(snap: &RegistrySnapshot) -> Json {
    let metrics: Vec<(String, Json)> = snap
        .entries
        .iter()
        .map(|(name, metric)| {
            let value = match metric {
                MetricSnapshot::Counter { total, windowed, rate_per_s } => Json::obj([
                    ("kind", Json::str("counter")),
                    ("total", Json::num(*total)),
                    ("windowed", Json::num(*windowed)),
                    ("rate_per_s", Json::num(*rate_per_s)),
                ]),
                MetricSnapshot::Gauge { value, age_ns } => Json::obj([
                    ("kind", Json::str("gauge")),
                    ("value", Json::num(*value)),
                    ("age_ns", Json::uint(*age_ns)),
                ]),
                MetricSnapshot::Histogram(h) => {
                    let mut fields = vec![("kind".to_string(), Json::str("histogram"))];
                    if let Json::Obj(rest) = h.to_json() {
                        fields.extend(rest);
                    }
                    Json::Obj(fields)
                }
            };
            (name.clone(), value)
        })
        .collect();
    Json::obj([
        ("schema", Json::str(SNAPSHOT_SCHEMA)),
        ("at_ns", Json::uint(snap.at_ns)),
        ("window_ns", Json::uint(snap.window_ns)),
        ("metrics", Json::Obj(metrics)),
    ])
}

// ---------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------

static SERVING: Mutex<Option<SocketAddr>> = Mutex::new(None);

/// The address the process's metrics server is bound to, if one is
/// running. Lets tests and siblings discover an ephemeral `:0` port.
pub fn serving_addr() -> Option<SocketAddr> {
    *SERVING.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running metrics exposition server. Dropping it shuts the listener
/// down (a self-connection unblocks the blocking accept).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, `:0` for ephemeral) and
    /// serves the global registry and flight recorder until dropped.
    pub fn start(addr: &str) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle =
            std::thread::Builder::new().name("spammass-metrics".to_string()).spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // Serve inline: scrapes are tiny and rare, and a
                        // single handler thread bounds resource use.
                        let _ = handle_connection(stream);
                    }
                }
            })?;
        *SERVING.lock().unwrap_or_else(|e| e.into_inner()) = Some(local);
        Ok(MetricsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop so the thread can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let mut serving = SERVING.lock().unwrap_or_else(|e| e.into_inner());
        if *serving == Some(self.addr) {
            *serving = None;
        }
    }
}

fn handle_connection(stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(e) => {
            // Malformed or oversized requests get a typed error page;
            // clean closes and transport failures get nothing.
            if let Some((status, message)) = e.response() {
                let out = reader.get_mut();
                write_response(out, status, "text/plain; charset=utf-8", &message, false)?;
            }
            return Ok(());
        }
    };

    let (status, content_type, body) = if request.method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "only GET is served\n".to_string())
    } else {
        match request.path.as_str() {
            "/metrics" => {
                registry::global().counter_add(crate::names::EXPORT_SCRAPES, 1.0);
                (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(&registry::global().snapshot()),
                )
            }
            "/snapshot" => {
                registry::global().counter_add(crate::names::EXPORT_SCRAPES, 1.0);
                let mut body = snapshot_json(&registry::global().snapshot()).render();
                body.push('\n');
                ("200 OK", "application/json", body)
            }
            "/flight" => {
                registry::global().counter_add(crate::names::EXPORT_SCRAPES, 1.0);
                let mut body = crate::flight::global().to_json().render();
                body.push('\n');
                ("200 OK", "application/json", body)
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "routes: /metrics /snapshot /flight\n".to_string(),
            ),
        }
    };
    // Scrapes are one-shot: always close, whatever the client asked.
    let mut out = reader.into_inner();
    write_response(&mut out, status, content_type, &body, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("pagerank.pool.threads"), "spammass_pagerank_pool_threads");
        assert_eq!(
            prometheus_name("pagerank.worker.0.gather_ns"),
            "spammass_pagerank_worker_0_gather_ns"
        );
    }

    #[test]
    fn prometheus_rendering_covers_all_kinds() {
        let r = MetricsRegistry::new();
        r.counter_add("a.hits", 5.0);
        r.gauge_set("a.ratio", 0.5);
        for v in 1..=100u32 {
            r.observe("a.ns", f64::from(v));
        }
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE spammass_a_hits counter"), "{text}");
        assert!(text.contains("spammass_a_hits 5.0"), "{text}");
        assert!(text.contains("spammass_a_hits_rate_per_s"), "{text}");
        assert!(text.contains("spammass_a_ratio 0.5"), "{text}");
        assert!(text.contains("# TYPE spammass_a_ns summary"), "{text}");
        assert!(text.contains("spammass_a_ns{quantile=\"0.5\"} 50.0"), "{text}");
        assert!(text.contains("spammass_a_ns{quantile=\"0.99\"} 99.0"), "{text}");
        assert!(text.contains("spammass_a_ns_count 100"), "{text}");
        assert!(text.contains("spammass_a_ns_exact 1"), "{text}");
    }

    #[test]
    fn snapshot_json_is_parseable_and_tagged() {
        let r = MetricsRegistry::new();
        r.counter_add("b.hits", 2.0);
        r.observe("b.ns", 42.0);
        let doc = snapshot_json(&r.snapshot()).render();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SNAPSHOT_SCHEMA));
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(
            metrics.get("b.hits").and_then(|m| m.get("kind")).and_then(Json::as_str),
            Some("counter")
        );
        assert_eq!(
            metrics.get("b.ns").and_then(|m| m.get("p50")).and_then(Json::as_f64),
            Some(42.0)
        );
    }

    // Server round-trips (bind, scrape, shutdown) are pinned in
    // tests/live_plane.rs: they touch the process-global registry, which
    // unit tests must not flip on.
}
