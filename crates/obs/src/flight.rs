//! The flight recorder: a fixed-size ring of recent structured events,
//! dumped on panic.
//!
//! Post-mortem telemetry vanishes exactly when it matters most — a
//! crash mid-solve leaves no run report. The flight recorder keeps the
//! last [`DEFAULT_CAPACITY`] events (facade messages, span open/close,
//! failpoint trips) in a bounded `VecDeque` behind one short mutex;
//! recording is a push + possible pop-front, never an allocation scan,
//! so it stays on even in production. A panic hook serializes the ring
//! (plus a registry snapshot, if the live plane is on) to a JSON crash
//! dump, and the exposition server serves the same ring at `/flight`.
//!
//! Like the registry, the recorder is process-global behind an atomic
//! enable flag: off by default, one relaxed load per facade call.

use crate::json::Json;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock};
use std::time::Instant;

/// Events retained in the ring. 512 comfortably covers the tail of a
/// solve (spans, sweep events, failpoint trips) in a few hundred KB.
pub const DEFAULT_CAPACITY: usize = 512;

/// Schema tag on crash dumps and `/flight` responses.
pub const SCHEMA: &str = "spammass.flight/v1";

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotone sequence number (never reused; gaps mean drops).
    pub seq: u64,
    /// Nanoseconds since the recorder's epoch.
    pub t_ns: u64,
    /// Event kind: `message`, `span_start`, `span_end`, `failpoint`,
    /// `panic`.
    pub kind: &'static str,
    /// Dotted event or span name.
    pub name: String,
    /// Structured payload.
    pub fields: Vec<(String, Json)>,
}

impl FlightEvent {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq".to_string(), Json::uint(self.seq)),
            ("t_ns".to_string(), Json::uint(self.t_ns)),
            ("kind".to_string(), Json::str(self.kind)),
            ("name".to_string(), Json::str(&self.name)),
        ];
        fields.extend(self.fields.iter().map(|(k, v)| (k.clone(), v.clone())));
        Json::Obj(fields)
    }
}

struct Ring {
    cap: usize,
    seq: u64,
    dropped: u64,
    events: VecDeque<FlightEvent>,
}

/// A bounded recorder of recent structured events.
pub struct FlightRecorder {
    epoch: Instant,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` events.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            epoch: Instant::now(),
            ring: Mutex::new(Ring { cap: cap.max(1), seq: 0, dropped: 0, events: VecDeque::new() }),
        }
    }

    /// Nanoseconds since the recorder's epoch.
    pub fn elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Appends one event, evicting the oldest past capacity.
    pub fn record(&self, kind: &'static str, name: &str, fields: Vec<(String, Json)>) {
        let t_ns = self.elapsed_ns();
        let mut ring = lock_unpoisoned(&self.ring);
        let seq = ring.seq;
        ring.seq += 1;
        if ring.events.len() == ring.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(FlightEvent { seq, t_ns, kind, name: name.to_string(), fields });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        lock_unpoisoned(&self.ring).events.iter().cloned().collect()
    }

    /// Events evicted so far (ring overflow, not an error).
    pub fn dropped(&self) -> u64 {
        lock_unpoisoned(&self.ring).dropped
    }

    /// JSON form of the ring: schema, drop count, events oldest-first.
    pub fn to_json(&self) -> Json {
        let ring = lock_unpoisoned(&self.ring);
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("dropped", Json::uint(ring.dropped)),
            ("events", Json::Arr(ring.events.iter().map(FlightEvent::to_json).collect())),
        ])
    }
}

// ---------------------------------------------------------------------
// Process-global instance
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global recorder (created on first use).
pub fn global() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| FlightRecorder::new(DEFAULT_CAPACITY))
}

/// Turns the recorder on: facade events and span open/close start
/// landing in the ring. Irreversible for the life of the process.
pub fn enable_global() {
    global();
    ENABLED.store(true, Ordering::Release);
}

/// Whether the global recorder is receiving events.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the global recorder's epoch (0 if never created).
pub fn elapsed_ns() -> u64 {
    GLOBAL.get().map(FlightRecorder::elapsed_ns).unwrap_or(0)
}

/// Records an event on the global recorder iff it is enabled. The
/// payload is only cloned on the enabled path.
pub fn note(kind: &'static str, name: &str, fields: &[(String, Json)]) {
    if is_enabled() {
        global().record(kind, name, fields.to_vec());
    }
}

// ---------------------------------------------------------------------
// Crash dumps
// ---------------------------------------------------------------------

static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
static HOOK: Once = Once::new();

/// Enables the global recorder and installs (once) a panic hook that
/// writes a crash dump to `path`. Later calls retarget the path. The
/// previous hook still runs afterwards, so default panic output is
/// preserved.
pub fn install_crash_hook(path: impl Into<PathBuf>) {
    enable_global();
    *lock_unpoisoned(&DUMP_PATH) = Some(path.into());
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_on_panic(info);
            prev(info);
        }));
    });
}

fn dump_on_panic(info: &std::panic::PanicHookInfo<'_>) {
    let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    let location = info.location().map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
    // The panic itself becomes the ring's final event, so the dump's
    // tail reads: …, the thing that tripped, the panic it caused.
    global().record(
        "panic",
        "panic",
        vec![
            ("message".to_string(), Json::str(&message)),
            ("location".to_string(), location.as_deref().map(Json::str).unwrap_or(Json::Null)),
        ],
    );
    let path = lock_unpoisoned(&DUMP_PATH).clone();
    if let Some(path) = path {
        // A failed dump must not double-panic; the previous hook still
        // prints the message either way.
        let _ = write_crash_dump(&path, Some((&message, location.as_deref())));
    }
}

/// Writes a crash dump (ring + live registry snapshot + optional panic
/// info) to `path`. Also callable on demand for "dump now" debugging.
pub fn write_crash_dump(path: &Path, panic: Option<(&str, Option<&str>)>) -> io::Result<()> {
    let mut fields = vec![("schema".to_string(), Json::str(SCHEMA))];
    match panic {
        Some((message, location)) => fields.push((
            "panic".to_string(),
            Json::obj([
                ("message", Json::str(message)),
                ("location", location.map(Json::str).unwrap_or(Json::Null)),
            ]),
        )),
        None => fields.push(("panic".to_string(), Json::Null)),
    }
    let ring = global().to_json();
    fields.push(("dropped".to_string(), ring.get("dropped").cloned().unwrap_or(Json::Null)));
    fields.push(("events".to_string(), ring.get("events").cloned().unwrap_or(Json::Arr(vec![]))));
    fields.push((
        "metrics".to_string(),
        match crate::registry::live() {
            Some(reg) => crate::export::snapshot_json(&reg.snapshot()),
            None => Json::Null,
        },
    ));
    let mut doc = Json::Obj(fields).render();
    doc.push('\n');
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record("message", &format!("e{i}"), vec![]);
        }
        let events = r.events();
        assert_eq!(events.len(), 3);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn timestamps_are_monotone() {
        let r = FlightRecorder::new(8);
        r.record("message", "a", vec![]);
        r.record("message", "b", vec![]);
        let events = r.events();
        assert!(events[0].t_ns <= events[1].t_ns);
    }

    #[test]
    fn ring_json_shape() {
        let r = FlightRecorder::new(8);
        r.record(
            "failpoint",
            "state.manifest.rename",
            vec![("action".to_string(), Json::str("panic"))],
        );
        let j = r.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let events = j.get("events").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("kind").and_then(Json::as_str), Some("failpoint"));
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("state.manifest.rename"));
        assert_eq!(events[0].get("action").and_then(Json::as_str), Some("panic"));
    }

    // Global enable/crash-hook behavior is pinned in tests/live_plane.rs
    // (integration tests run in their own process, so flipping the
    // process-global switches cannot leak into unit tests).
}
