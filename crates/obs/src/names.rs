//! Registry of well-known metric names emitted across the workspace.
//!
//! The facade takes free-form `&str` names, which keeps instrumentation
//! friction-free but invites drift: a dashboard watching
//! `delta.state.published` silently goes dark if a refactor renames the
//! counter. The durability counters introduced with the crash-safe
//! persistence layer are part of the operational contract (the fsck
//! runbook keys off them), so their names live here as constants —
//! one place to grep, one place a test can hold to the naming
//! convention (`subsystem.noun[.qualifier]`, lowercase, dot-separated).
//!
//! Emitting code is free to keep using literals for purely internal
//! spans; names listed here are the ones external tooling may depend
//! on.

/// Transient-I/O retries performed by the bounded retry helper
/// (`spammass_graph::retry`). Counter; one increment per retried
/// attempt, not per call.
pub const IO_RETRY: &str = "io.retry";

/// Bytes carried by journal batches a lenient read skipped — the
/// silently-dropped volume that PR 6 made visible. Counter.
pub const DELTA_JOURNAL_SKIPPED_BYTES: &str = "delta.journal.skipped_bytes";

/// Bytes durably appended to a journal file. Counter.
pub const DELTA_JOURNAL_APPENDED_BYTES: &str = "delta.journal.appended_bytes";

/// Snapshot generations published through the atomic manifest path.
/// Counter; one increment per successful `StateDir::save`.
pub const DELTA_STATE_PUBLISHED: &str = "delta.state.published";

/// Loads that deviated from the manifest's instruction and fell back to
/// another generation (or the legacy layout). Counter; nonzero means
/// "run fsck --repair".
pub const DELTA_STATE_RECOVERED: &str = "delta.state.recovered";

/// Best-effort generation prunes that failed (extra disk, not an
/// integrity problem). Counter.
pub const DELTA_STATE_PRUNE_FAILED: &str = "delta.state.prune_failed";

/// fsck invocations (check or repair). Counter.
pub const FSCK_RUNS: &str = "fsck.runs";

/// fsck runs whose verdict was unhealthy. Counter.
pub const FSCK_UNHEALTHY: &str = "fsck.unhealthy";

/// Repair actions applied by `fsck --repair`. Counter; incremented by
/// the number of actions per run.
pub const FSCK_REPAIRS: &str = "fsck.repairs";

/// Damaged snapshot generations moved under `quarantine/`. Counter.
pub const FSCK_GENERATIONS_QUARANTINED: &str = "fsck.generations_quarantined";

/// Bytes past a journal's trusted prefix found by a journal fsck.
/// Counter; zero on clean journals.
pub const FSCK_JOURNAL_QUARANTINED_BYTES: &str = "fsck.journal.quarantined_bytes";

/// Thread count the pool auto-sizer actually chose for a solve. Gauge;
/// compare against the configured `--threads` to spot quota collapse.
pub const PAGERANK_POOL_THREADS: &str = "pagerank.pool.threads";

/// Structured sizing event: node/edge counts, configured threads, host
/// parallelism, the `edges_per_thread` quota, and the chosen count.
/// Message event, emitted once per solve.
pub const PAGERANK_POOL_SIZING: &str = "pagerank.pool.sizing";

/// Completed power-iteration sweeps across the worker pool. Counter;
/// its windowed rate is the live sweeps/s of a running solve.
pub const PAGERANK_POOL_SWEEPS: &str = "pagerank.pool.sweeps";

/// Partition imbalance: the heaviest chunk's share of the edge-balanced
/// weight relative to a perfect split (1.0 = balanced). Gauge.
pub const PAGERANK_PARTITION_IMBALANCE: &str = "pagerank.partition.imbalance";

/// Number of chunks the node partition was cut into. Gauge.
pub const PAGERANK_PARTITION_CHUNKS: &str = "pagerank.partition.chunks";

/// Nanoseconds the control thread spent combining per-worker partial
/// accumulators for rows split across edge-range chunks. Windowed
/// histogram; one observation per sweep (zero when no row straddles a
/// cut).
pub const PAGERANK_MERGE_NS: &str = "pagerank.merge_ns";

/// Scrapes answered by the metrics exposition server. Counter.
pub const EXPORT_SCRAPES: &str = "obs.export.scrapes";

/// Requests answered by the spam-mass query daemon (any endpoint,
/// any status). Counter; its windowed rate is the daemon's live QPS.
pub const SERVE_REQUESTS: &str = "serve.requests";

/// Requests the query daemon rejected (bad method, unknown route,
/// malformed or oversized request, bad parameters). Counter.
pub const SERVE_ERRORS: &str = "serve.errors";

/// Snapshot swaps published to the daemon's readers (journal-driven
/// updates and externally published generations alike). Counter.
pub const SERVE_SWAPS: &str = "serve.swaps";

/// Wall time of one reload check that actually produced and swapped in
/// a new snapshot (journal read, warm update, publish, load). Windowed
/// histogram, nanoseconds.
pub const SERVE_RELOAD_NS: &str = "serve.reload_ns";

/// Per-endpoint request latency of the query daemon: `/score`.
/// Windowed histogram, nanoseconds.
pub const SERVE_SCORE_NS: &str = "serve.score.request_ns";

/// Per-endpoint request latency of the query daemon: `/batch`.
/// Windowed histogram, nanoseconds.
pub const SERVE_BATCH_NS: &str = "serve.batch.request_ns";

/// Per-endpoint request latency of the query daemon: `/topk`.
/// Windowed histogram, nanoseconds.
pub const SERVE_TOPK_NS: &str = "serve.topk.request_ns";

/// Per-endpoint request latency of the query daemon: `/explain`.
/// Windowed histogram, nanoseconds.
pub const SERVE_EXPLAIN_NS: &str = "serve.explain.request_ns";

/// Bytes of image sections used in place as views into the shared
/// buffer (the mmap fast path). Counter; one increment per image load.
pub const GRAPH_LOAD_ZERO_COPY_BYTES: &str = "graph.load.zero_copy_bytes";

/// Bytes of image sections materialized as owned copies (misalignment,
/// pre-v3 formats, CRC-failed rebuilds, or v4 decompression). Counter;
/// together with `graph.load.zero_copy_bytes` this is the resident cost
/// of a load.
pub const GRAPH_LOAD_COPIED_BYTES: &str = "graph.load.copied_bytes";

/// Compressed blocks decoded by a streamed (out-of-core) solve.
/// Counter; many decodes of the same block across sweeps all count.
pub const ESTIMATE_IO_BLOCKS_DECODED: &str = "estimate.io.blocks_decoded";

/// Encoded bytes read from a compressed image by a streamed solve.
/// Counter; the streamed path's total I/O volume.
pub const ESTIMATE_IO_DECODED_BYTES: &str = "estimate.io.decoded_bytes";

/// Per-worker profiler series name: `pagerank.worker.<w>.<kind>`, where
/// `kind` is `gather_ns` / `barrier_wait_ns` (windowed histograms) or
/// `edges_per_s` (gauge). Worker indices make these dynamic, so they
/// are built here rather than registered in [`ALL`].
pub fn worker_series(worker: usize, kind: &str) -> String {
    format!("pagerank.worker.{worker}.{kind}")
}

/// Every name in this registry, for exhaustive checks.
pub const ALL: &[&str] = &[
    IO_RETRY,
    DELTA_JOURNAL_SKIPPED_BYTES,
    DELTA_JOURNAL_APPENDED_BYTES,
    DELTA_STATE_PUBLISHED,
    DELTA_STATE_RECOVERED,
    DELTA_STATE_PRUNE_FAILED,
    FSCK_RUNS,
    FSCK_UNHEALTHY,
    FSCK_REPAIRS,
    FSCK_GENERATIONS_QUARANTINED,
    FSCK_JOURNAL_QUARANTINED_BYTES,
    PAGERANK_POOL_THREADS,
    PAGERANK_POOL_SIZING,
    PAGERANK_POOL_SWEEPS,
    PAGERANK_PARTITION_IMBALANCE,
    PAGERANK_PARTITION_CHUNKS,
    PAGERANK_MERGE_NS,
    GRAPH_LOAD_ZERO_COPY_BYTES,
    GRAPH_LOAD_COPIED_BYTES,
    ESTIMATE_IO_BLOCKS_DECODED,
    ESTIMATE_IO_DECODED_BYTES,
    EXPORT_SCRAPES,
    SERVE_REQUESTS,
    SERVE_ERRORS,
    SERVE_SWAPS,
    SERVE_RELOAD_NS,
    SERVE_SCORE_NS,
    SERVE_BATCH_NS,
    SERVE_TOPK_NS,
    SERVE_EXPLAIN_NS,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_the_convention_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate registered name {name:?}");
            assert!(!name.is_empty());
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "{name:?} violates the lowercase.dot_separated convention"
            );
            assert!(name.contains('.'), "{name:?} has no subsystem prefix");
            assert!(!name.starts_with('.') && !name.ends_with('.'), "{name:?}");
        }
    }

    #[test]
    fn worker_series_names_are_well_formed() {
        assert_eq!(worker_series(0, "gather_ns"), "pagerank.worker.0.gather_ns");
        assert_eq!(worker_series(3, "barrier_wait_ns"), "pagerank.worker.3.barrier_wait_ns");
        assert_eq!(worker_series(1, "edges_per_s"), "pagerank.worker.1.edges_per_s");
    }
}
