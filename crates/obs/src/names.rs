//! Registry of well-known metric names emitted across the workspace.
//!
//! The facade takes free-form `&str` names, which keeps instrumentation
//! friction-free but invites drift: a dashboard watching
//! `delta.state.published` silently goes dark if a refactor renames the
//! counter. The durability counters introduced with the crash-safe
//! persistence layer are part of the operational contract (the fsck
//! runbook keys off them), so their names live here as constants —
//! one place to grep, one place a test can hold to the naming
//! convention (`subsystem.noun[.qualifier]`, lowercase, dot-separated).
//!
//! Emitting code is free to keep using literals for purely internal
//! spans; names listed here are the ones external tooling may depend
//! on.

/// Transient-I/O retries performed by the bounded retry helper
/// (`spammass_graph::retry`). Counter; one increment per retried
/// attempt, not per call.
pub const IO_RETRY: &str = "io.retry";

/// Bytes carried by journal batches a lenient read skipped — the
/// silently-dropped volume that PR 6 made visible. Counter.
pub const DELTA_JOURNAL_SKIPPED_BYTES: &str = "delta.journal.skipped_bytes";

/// Bytes durably appended to a journal file. Counter.
pub const DELTA_JOURNAL_APPENDED_BYTES: &str = "delta.journal.appended_bytes";

/// Snapshot generations published through the atomic manifest path.
/// Counter; one increment per successful `StateDir::save`.
pub const DELTA_STATE_PUBLISHED: &str = "delta.state.published";

/// Loads that deviated from the manifest's instruction and fell back to
/// another generation (or the legacy layout). Counter; nonzero means
/// "run fsck --repair".
pub const DELTA_STATE_RECOVERED: &str = "delta.state.recovered";

/// Best-effort generation prunes that failed (extra disk, not an
/// integrity problem). Counter.
pub const DELTA_STATE_PRUNE_FAILED: &str = "delta.state.prune_failed";

/// fsck invocations (check or repair). Counter.
pub const FSCK_RUNS: &str = "fsck.runs";

/// fsck runs whose verdict was unhealthy. Counter.
pub const FSCK_UNHEALTHY: &str = "fsck.unhealthy";

/// Repair actions applied by `fsck --repair`. Counter; incremented by
/// the number of actions per run.
pub const FSCK_REPAIRS: &str = "fsck.repairs";

/// Damaged snapshot generations moved under `quarantine/`. Counter.
pub const FSCK_GENERATIONS_QUARANTINED: &str = "fsck.generations_quarantined";

/// Bytes past a journal's trusted prefix found by a journal fsck.
/// Counter; zero on clean journals.
pub const FSCK_JOURNAL_QUARANTINED_BYTES: &str = "fsck.journal.quarantined_bytes";

/// Every name in this registry, for exhaustive checks.
pub const ALL: &[&str] = &[
    IO_RETRY,
    DELTA_JOURNAL_SKIPPED_BYTES,
    DELTA_JOURNAL_APPENDED_BYTES,
    DELTA_STATE_PUBLISHED,
    DELTA_STATE_RECOVERED,
    DELTA_STATE_PRUNE_FAILED,
    FSCK_RUNS,
    FSCK_UNHEALTHY,
    FSCK_REPAIRS,
    FSCK_GENERATIONS_QUARANTINED,
    FSCK_JOURNAL_QUARANTINED_BYTES,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_the_convention_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate registered name {name:?}");
            assert!(!name.is_empty());
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "{name:?} violates the lowercase.dot_separated convention"
            );
            assert!(name.contains('.'), "{name:?} has no subsystem prefix");
            assert!(!name.starts_with('.') && !name.ends_with('.'), "{name:?}");
        }
    }
}
