//! Hierarchical timed spans.
//!
//! A span measures one named stage of the pipeline. Spans nest lexically:
//! the thread keeps a stack of open span names, and a new span's dotted
//! `path` is the concatenation of everything currently open. Dropping the
//! guard closes the span and emits a [`SpanRecord`] carrying wall-clock
//! duration and any counters recorded on the span.
//!
//! With no collector installed (and the global flight recorder off),
//! [`span`] returns an inert guard and the whole mechanism costs one
//! thread-local read plus one relaxed atomic load.
//!
//! Spans are **panic-safe**: closing happens in `Drop`, which also runs
//! during unwinding, so a panic mid-span still finalizes timing and
//! flushes the record to the collector and the flight recorder. Crash
//! dumps therefore carry a correct partial span tree — every span open
//! at the panic has its `span_start` in the ring, and every span the
//! unwind closes lands as a `span_end` before the process dies.

use crate::collector::{with_current, Collector};
use crate::json::Json;
use crate::sink::Event;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A closed span: timing plus per-span counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Leaf name, e.g. `"pagerank_core"`.
    pub name: String,
    /// Dotted path from the root, e.g. `"estimate.pagerank_core"`.
    pub path: String,
    /// Nesting depth (0 for a root span).
    pub depth: usize,
    /// Start time in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub elapsed_ns: u64,
    /// Counters recorded on the span, in recording order.
    pub counters: Vec<(String, f64)>,
}

impl SpanRecord {
    /// JSON form (without children; see [`crate::sink::SpanNode`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("path", Json::str(&self.path)),
            ("depth", Json::uint(self.depth as u64)),
            ("start_ns", Json::uint(self.start_ns)),
            ("elapsed_ns", Json::uint(self.elapsed_ns)),
            (
                "counters",
                Json::Obj(self.counters.iter().map(|(k, v)| (k.clone(), Json::num(*v))).collect()),
            ),
        ])
    }
}

/// An open span; closing (dropping) it emits the [`SpanRecord`].
#[must_use = "a span measures until it is dropped; binding it to _ closes it immediately"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    /// `None` when the span is live only because the flight recorder is
    /// on (no collector installed on this thread).
    collector: Option<Collector>,
    name: String,
    path: String,
    depth: usize,
    start: Instant,
    start_ns: u64,
    counters: Vec<(String, f64)>,
}

/// Opens a span named `name` under the innermost open span on this
/// thread. Inert (and allocation-free) when no collector is installed
/// and the global flight recorder is off.
pub fn span(name: &str) -> Span {
    let collector = with_current(Collector::clone);
    let flight_on = crate::flight::is_enabled();
    if collector.is_none() && !flight_on {
        return Span(None);
    }
    let (path, depth) = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let depth = stack.len();
        let path =
            if depth == 0 { name.to_string() } else { format!("{}.{}", stack.join("."), name) };
        stack.push(name.to_string());
        (path, depth)
    });
    // Timestamps are relative to the collector's epoch when one is
    // installed, else to the flight recorder's.
    let start_ns = match &collector {
        Some(c) => c.elapsed_ns(),
        None => crate::flight::elapsed_ns(),
    };
    if let Some(c) = &collector {
        c.emit(&Event::SpanStart { path: path.clone(), depth, start_ns });
    }
    if flight_on {
        crate::flight::note(
            "span_start",
            &path,
            &[("depth".to_string(), Json::uint(depth as u64))],
        );
    }
    Span(Some(ActiveSpan {
        collector,
        name: name.to_string(),
        path,
        depth,
        start: Instant::now(),
        start_ns,
        counters: Vec::new(),
    }))
}

impl Span {
    /// Whether this span is actually measuring (a collector was
    /// installed, or the flight recorder was on, when it opened).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Records (or accumulates into) a counter scoped to this span.
    pub fn record(&mut self, key: &str, value: f64) {
        if let Some(active) = &mut self.0 {
            if let Some(slot) = active.counters.iter_mut().find(|(k, _)| k == key) {
                slot.1 += value;
            } else {
                active.counters.push((key.to_string(), value));
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            // Unwind the name stack to this span's depth. Truncation (not
            // pop) keeps the stack sane even if an inner span outlived an
            // outer one — including during panic unwinding, where drops
            // run innermost-first and this finalizes each span's timing.
            STACK.with(|s| s.borrow_mut().truncate(active.depth));
            let record = SpanRecord {
                name: active.name,
                path: active.path,
                depth: active.depth,
                start_ns: active.start_ns,
                elapsed_ns: active.start.elapsed().as_nanos() as u64,
                counters: active.counters,
            };
            if crate::flight::is_enabled() {
                crate::flight::note(
                    "span_end",
                    &record.path,
                    &[
                        ("elapsed_ns".to_string(), Json::uint(record.elapsed_ns)),
                        ("depth".to_string(), Json::uint(record.depth as u64)),
                    ],
                );
            }
            if let Some(collector) = active.collector {
                collector.emit(&Event::SpanEnd(record));
            }
        }
    }
}

/// `span!("name")` — convenience macro mirroring [`span`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Recorder;
    use std::sync::Arc;

    #[test]
    fn inert_without_collector() {
        let mut s = span("nobody-listening");
        assert!(!s.is_active());
        s.record("k", 1.0);
        drop(s);
        STACK.with(|st| assert!(st.borrow().is_empty()));
    }

    #[test]
    fn paths_and_depths_nest() {
        let recorder = Arc::new(Recorder::default());
        let collector = Collector::builder().sink(recorder.clone()).build();
        let _g = collector.install();
        {
            let _a = span("a");
            {
                let _b = span("b");
                let _c = span("c");
            }
            let _d = span("d");
        }
        // Records arrive innermost-first (drop order).
        let spans = recorder.spans();
        let paths: Vec<&str> = spans.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["a.b.c", "a.b", "a.d", "a"]);
        let depths: Vec<usize> = spans.iter().map(|r| r.depth).collect();
        assert_eq!(depths, [2, 1, 1, 0]);
        assert_eq!(spans[0].name, "c");
    }

    #[test]
    fn timing_is_monotone_and_contains_children() {
        let recorder = Arc::new(Recorder::default());
        let collector = Collector::builder().sink(recorder.clone()).build();
        let _g = collector.install();
        {
            let _outer = span("outer");
            let _inner = span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let spans = recorder.spans();
        let inner = spans.iter().find(|r| r.name == "inner").unwrap();
        let outer = spans.iter().find(|r| r.name == "outer").unwrap();
        assert!(inner.elapsed_ns >= 2_000_000, "slept 2ms: {}", inner.elapsed_ns);
        // Parent starts no later and runs no shorter than the child.
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.elapsed_ns >= inner.elapsed_ns);
        // Start offsets are monotone with nesting order.
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn record_accumulates_per_key() {
        let recorder = Arc::new(Recorder::default());
        let collector = Collector::builder().sink(recorder.clone()).build();
        let _g = collector.install();
        {
            let mut s = span("s");
            s.record("edges", 3.0);
            s.record("edges", 4.0);
            s.record("lines", 1.0);
        }
        let spans = recorder.spans();
        assert_eq!(spans[0].counters, vec![("edges".into(), 7.0), ("lines".into(), 1.0)]);
    }

    #[test]
    fn spans_flush_during_panic_unwind() {
        let recorder = Arc::new(Recorder::default());
        let collector = Collector::builder().sink(recorder.clone()).build();
        let _g = collector.install();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut outer = span("solve");
            outer.record("sweeps", 3.0);
            let _inner = span("gather");
            std::thread::sleep(std::time::Duration::from_millis(1));
            panic!("injected mid-span");
        }));
        assert!(result.is_err());
        // Both spans finalized during unwind, innermost first, with
        // timing and per-span counters intact.
        let spans = recorder.spans();
        let paths: Vec<&str> = spans.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["solve.gather", "solve"]);
        assert!(spans[0].elapsed_ns >= 1_000_000, "timed through the unwind");
        assert_eq!(spans[1].counters, vec![("sweeps".to_string(), 3.0)]);
        // The thread-local name stack is clean: new spans nest at root.
        STACK.with(|st| assert!(st.borrow().is_empty()));
        {
            let _after = span("after");
            STACK.with(|st| assert_eq!(st.borrow().len(), 1));
        }
    }

    #[test]
    fn macro_form_works() {
        let recorder = Arc::new(Recorder::default());
        let collector = Collector::builder().sink(recorder.clone()).build();
        let _g = collector.install();
        {
            let _s = crate::span!("via-macro");
        }
        assert_eq!(recorder.spans()[0].name, "via-macro");
    }
}
