//! The process-global live metrics registry.
//!
//! The thread-local [`crate::Collector`] is the right shape for
//! post-mortem run reports, but a live scrape has two needs it cannot
//! serve: worker threads must be able to record without any collector
//! plumbing, and an HTTP handler on a foreign thread must be able to
//! read a consistent view without pausing a solve. The registry answers
//! both: one `OnceLock`'d instance per process, guarded by an atomic
//! fast path so the facade stays a single relaxed load when live
//! metrics are off.
//!
//! Concurrency model: the name → metric map is behind an `RwLock` taken
//! for writing only on first registration of a name; every update after
//! that takes one short per-metric `Mutex`. Histograms are additionally
//! sharded (thread-sticky shard choice) so parallel pool workers never
//! contend on one lock; shards merge at snapshot time. A snapshot
//! captures `now_ns` once and reads every metric against that instant —
//! epoch-consistent, and never blocking a writer for longer than one
//! metric's lock.

use crate::window::{
    HistWindowSnapshot, WindowHistogram, WindowSpec, WindowedCounter, WindowedGauge,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::Instant;

/// Histogram shards per metric. Sized for the pool's worker counts; a
/// worker's shard is sticky, so contention needs two workers hashing to
/// the same shard *and* recording simultaneously.
const SHARDS: usize = 8;

/// Locks a mutex, surviving poisoning: the registry must stay readable
/// from a panic hook even if the panicking thread held a metric lock.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

enum LiveMetric {
    Counter(Mutex<WindowedCounter>),
    Gauge(Mutex<WindowedGauge>),
    Histogram(Vec<Mutex<WindowHistogram>>),
}

/// A process-wide metrics registry with sliding-window aggregation.
pub struct MetricsRegistry {
    epoch: Instant,
    spec: WindowSpec,
    metrics: RwLock<BTreeMap<String, Arc<LiveMetric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A registry with the default window (15 × 1s slots).
    pub fn new() -> Self {
        Self::with_spec(WindowSpec::default())
    }

    /// A registry with an explicit window shape.
    pub fn with_spec(spec: WindowSpec) -> Self {
        MetricsRegistry { epoch: Instant::now(), spec, metrics: RwLock::new(BTreeMap::new()) }
    }

    /// Nanoseconds since this registry was created.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The window shape snapshots report against.
    pub fn window_ns(&self) -> u64 {
        self.spec.window_ns()
    }

    fn metric(&self, name: &str, make: impl FnOnce() -> LiveMetric) -> Arc<LiveMetric> {
        {
            let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
            if let Some(m) = map.get(name) {
                return m.clone();
            }
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_insert_with(|| Arc::new(make())).clone()
    }

    /// Adds `delta` to the windowed counter `name`. Kind mismatches are
    /// ignored, like the collector: first registration wins.
    pub fn counter_add(&self, name: &str, delta: f64) {
        let now = self.now_ns();
        let metric =
            self.metric(name, || LiveMetric::Counter(Mutex::new(WindowedCounter::new(self.spec))));
        if let LiveMetric::Counter(c) = &*metric {
            lock_unpoisoned(c).add(now, delta);
        }
    }

    /// Sets the windowed gauge `name`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let now = self.now_ns();
        let metric = self.metric(name, || LiveMetric::Gauge(Mutex::new(WindowedGauge::new())));
        if let LiveMetric::Gauge(g) = &*metric {
            lock_unpoisoned(g).set(now, value);
        }
    }

    /// Records a sample into the windowed histogram `name` via this
    /// thread's shard.
    pub fn observe(&self, name: &str, value: f64) {
        let now = self.now_ns();
        let metric = self.metric(name, || {
            LiveMetric::Histogram(
                (0..SHARDS).map(|_| Mutex::new(WindowHistogram::new(self.spec))).collect(),
            )
        });
        if let LiveMetric::Histogram(shards) = &*metric {
            lock_unpoisoned(&shards[shard_index()]).record(now, value);
        }
    }

    /// An epoch-consistent snapshot of every metric: one timestamp, every
    /// window read against it, histogram shards merged. Sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let at_ns = self.now_ns();
        let entries: Vec<(String, Arc<LiveMetric>)> = {
            let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let entries = entries
            .into_iter()
            .map(|(name, metric)| {
                let snap = match &*metric {
                    LiveMetric::Counter(c) => {
                        let c = lock_unpoisoned(c);
                        MetricSnapshot::Counter {
                            total: c.total(),
                            windowed: c.windowed(at_ns),
                            rate_per_s: c.rate_per_s(at_ns),
                        }
                    }
                    LiveMetric::Gauge(g) => {
                        let g = lock_unpoisoned(g);
                        MetricSnapshot::Gauge {
                            value: g.value().unwrap_or(f64::NAN),
                            age_ns: g.age_ns(at_ns).unwrap_or(0),
                        }
                    }
                    LiveMetric::Histogram(shards) => MetricSnapshot::Histogram(
                        shards
                            .iter()
                            .map(|s| lock_unpoisoned(s).snapshot(at_ns))
                            .reduce(HistWindowSnapshot::merge)
                            .expect("at least one shard"),
                    ),
                };
                (name, snap)
            })
            .collect();
        RegistrySnapshot { at_ns, window_ns: self.spec.window_ns(), entries }
    }
}

/// One metric's view inside a [`RegistrySnapshot`].
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// A windowed counter.
    Counter {
        /// Lifetime total.
        total: f64,
        /// Sum of deltas inside the window.
        windowed: f64,
        /// Windowed increments per second.
        rate_per_s: f64,
    },
    /// A gauge.
    Gauge {
        /// Last value set.
        value: f64,
        /// Nanoseconds since the last set.
        age_ns: u64,
    },
    /// A windowed histogram, shards merged.
    Histogram(HistWindowSnapshot),
}

/// An epoch-consistent view of the whole registry.
pub struct RegistrySnapshot {
    /// Registry-relative timestamp the snapshot was taken at.
    pub at_ns: u64,
    /// Window span the aggregates cover.
    pub window_ns: u64,
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricSnapshot)>,
}

impl RegistrySnapshot {
    /// Looks up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }
}

/// Sticky per-thread histogram shard choice: threads round-robin over
/// shards at first use, so the pool's workers spread out deterministically.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

// ---------------------------------------------------------------------
// Process-global instance
// ---------------------------------------------------------------------

static LIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

/// The process-global registry (created on first use; recording into it
/// does nothing user-visible until [`enable_global`] flips the facade).
pub fn global() -> &'static Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// Turns the live plane on: after this, every facade `counter` /
/// `gauge` / `observe` call also lands in the global registry.
/// Irreversible for the life of the process (the exposition server and
/// crash dumps rely on it staying on).
pub fn enable_global() {
    global();
    LIVE.store(true, Ordering::Release);
}

/// Whether the global registry is receiving facade traffic.
pub fn is_live() -> bool {
    LIVE.load(Ordering::Relaxed)
}

/// The global registry, only if enabled — the facade's fast path.
pub fn live() -> Option<&'static Arc<MetricsRegistry>> {
    if is_live() {
        Some(global())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_round_trip() {
        let r = MetricsRegistry::new();
        r.counter_add("a.count", 2.0);
        r.counter_add("a.count", 3.0);
        r.gauge_set("a.ratio", 0.5);
        for v in 1..=100u32 {
            r.observe("a.latency", f64::from(v));
        }
        let snap = r.snapshot();
        assert_eq!(snap.entries.len(), 3);
        match snap.get("a.count").unwrap() {
            MetricSnapshot::Counter { total, windowed, rate_per_s } => {
                assert_eq!(*total, 5.0);
                assert_eq!(*windowed, 5.0);
                assert!(*rate_per_s > 0.0);
            }
            _ => panic!("expected counter"),
        }
        match snap.get("a.ratio").unwrap() {
            MetricSnapshot::Gauge { value, .. } => assert_eq!(*value, 0.5),
            _ => panic!("expected gauge"),
        }
        match snap.get("a.latency").unwrap() {
            MetricSnapshot::Histogram(h) => {
                assert_eq!(h.count, 100);
                assert!(h.is_exact());
                assert_eq!(h.percentile(0.5), Some(50.0));
            }
            _ => panic!("expected histogram"),
        }
    }

    #[test]
    fn kind_mismatch_is_ignored() {
        let r = MetricsRegistry::new();
        r.gauge_set("m", 5.0);
        r.counter_add("m", 1.0);
        r.observe("m", 1.0);
        match r.snapshot().get("m").unwrap() {
            MetricSnapshot::Gauge { value, .. } => assert_eq!(*value, 5.0),
            _ => panic!("first registration must win"),
        }
    }

    #[test]
    fn histogram_shards_merge_across_threads() {
        let r = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for v in 0..25u32 {
                        r.observe("x.dist", f64::from(t * 25 + v + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        match r.snapshot().get("x.dist").unwrap() {
            MetricSnapshot::Histogram(h) => {
                assert_eq!(h.count, 100);
                assert!(h.is_exact());
                assert_eq!(h.percentile(0.5), Some(50.0));
                assert_eq!(h.max(), Some(100.0));
            }
            _ => panic!("expected histogram"),
        }
    }

    #[test]
    fn snapshot_is_sorted_and_lookup_works() {
        let r = MetricsRegistry::new();
        r.counter_add("z.last", 1.0);
        r.counter_add("a.first", 1.0);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert!(snap.get("missing").is_none());
    }
}
