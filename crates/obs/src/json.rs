//! Minimal JSON value type with a serializer and a strict parser.
//!
//! The build environment is offline, so the crate carries its own JSON
//! support instead of depending on `serde`. The subset is complete for
//! telemetry purposes: objects preserve insertion order (reports stay
//! diffable across runs), numbers are `f64` serialized via Rust's
//! shortest-round-trip formatting, and non-finite numbers degrade to
//! `null` (JSON has no representation for them), which keeps
//! `parse(render(v)) == v` for every value the telemetry layer produces.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Constructors normalize non-finite input to
    /// [`Json::Null`]; the parser never produces non-finite values.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys are not checked.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number, degrading NaN/∞ to `null`.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// An integer count (exact for values below 2⁵³, far beyond any
    /// telemetry counter in this system).
    pub fn uint(v: u64) -> Json {
        Json::num(v as f64)
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// An object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on an object (`None` for other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) if !v.is_finite() => out.push_str("null"),
            // `{:?}` is Rust's shortest representation that parses back to
            // the same f64 — exactly the round-trip property reports need.
            Json::Num(v) => {
                let _ = write!(out, "{v:?}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (exactly one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            // Surrogate pairs are not produced by our own
                            // serializer; reject them rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| format!("surrogate \\u escape at byte {start}"))?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
            .map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::num(1.5).render(), "1.5");
        assert_eq!(Json::uint(42).render(), "42.0");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
        assert_eq!(Json::num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn renders_structures_in_order() {
        let v =
            Json::obj([("b", Json::num(1.0)), ("a", Json::Arr(vec![Json::Null, Json::str("x")]))]);
        assert_eq!(v.render(), "{\"b\":1.0,\"a\":[null,\"x\"]}");
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e-3 , true ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Num(2.5e-3));
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_arbitrary_values() {
        let v = Json::obj([
            ("name", Json::str("pagerank.residual")),
            ("count", Json::uint(12345)),
            ("tiny", Json::num(3.17e-13)),
            ("neg", Json::num(-0.75)),
            ("nested", Json::obj([("empty_arr", Json::Arr(vec![])), ("t", Json::Bool(false))])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn parses_empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }
}
